//! # weak-stabilization
//!
//! A full reproduction of **“Weak vs. Self vs. Probabilistic
//! Stabilization”** (Stéphane Devismes, Sébastien Tixeuil, Masafumi
//! Yamashita; ICDCS 2008 / INRIA RR-6366) as a Rust workspace:
//!
//! * [`graph`] — topology substrate (rings, trees, ports, centers, `m_N`);
//! * [`core`] — the guarded-command kernel: configurations, local views,
//!   daemons, fairness, step semantics, the `Trans(A)` transformer, and
//!   the shared CSR exploration engine (full sweep, on-the-fly
//!   reachable-only BFS, symmetry-group quotients — ring rotation,
//!   ring dihedral, star/tree leaf permutations);
//! * [`algorithms`] — the paper's Algorithms 1–3, the center-based leader
//!   election, and classic baselines (Dijkstra's K-state ring, Herman's
//!   probabilistic ring, greedy coloring);
//! * [`checker`] — explicit-state verification of weak / self /
//!   probabilistic stabilization under unfair, weakly fair, strongly fair
//!   and Gouda-fair schedulers;
//! * [`markov`] — exact expected stabilization times via absorbing Markov
//!   chains (the quantitative study the paper lists as future work);
//! * [`sim`] — seeded Monte-Carlo simulation with confidence intervals.
//!
//! This facade crate re-exports all sub-crates under one name, hosts the
//! scenario-level [`study`] pipeline (one planned exploration driving
//! checker, Markov and Monte-Carlo, returning a serializable
//! [`StudyReport`](study::StudyReport)), the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! ## Quickstart
//!
//! The paper's weak-vs-self-vs-probabilistic comparison is **one
//! study** — one exploration, every verdict, a versioned JSON record:
//!
//! ```
//! use weak_stabilization::prelude::*;
//!
//! // Algorithm 1 of the paper on the ring of Figure 1 (N = 6, m_N = 4).
//! let ring = stab_graph::builders::ring(6);
//! let alg = stab_algorithms::token_ring::TokenCirculation::on_ring(&ring).unwrap();
//! let spec = alg.legitimacy();
//!
//! // It is weak-stabilizing but not self-stabilizing under the
//! // distributed strongly fair scheduler (Theorem 2 + Theorem 6).
//! let report = Study::of(&alg)
//!     .daemon(Daemon::Distributed)
//!     .spec(&spec)
//!     .verdicts(FairnessSet::ALL)
//!     .run()
//!     .unwrap();
//! let verdicts = report.verdicts.as_ref().unwrap();
//! assert!(verdicts.closure.holds);
//! assert!(verdicts.weak.holds);
//! assert!(!verdicts.self_under(Fairness::StronglyFair).unwrap().holds);
//! assert!(verdicts.self_under(Fairness::Gouda).unwrap().holds);
//! assert!(verdicts.probabilistic.holds);
//!
//! // The report serializes and parses back, bit for bit.
//! let text = report.to_json_string();
//! assert_eq!(StudyReport::from_json_str(&text).unwrap(), report);
//! ```
//!
//! The per-layer entry points (`stab_checker::analyze`,
//! `AbsorbingChain::build`, `stab_sim::montecarlo::estimate`) remain
//! available for single-stage work.

pub use stab_algorithms as algorithms;
pub use stab_checker as checker;
pub use stab_core as core;
pub use stab_graph as graph;
pub use stab_markov as markov;
pub use stab_sim as sim;

pub mod study;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::study::{McConfig, Outcome, StatusSection, Study, StudyReport};
    pub use stab_algorithms;
    pub use stab_checker;
    pub use stab_core::engine::{Budget, FaultPlan};
    pub use stab_core::{
        ActionId, ActionMask, Activation, Algorithm, Configuration, Daemon, Fairness, FairnessSet,
        Legitimacy, Outcomes, Trace, Transformed, View,
    };
    pub use stab_graph::{self, builders, Graph, NodeId, PortId};
    pub use stab_markov;
    pub use stab_sim;
}
