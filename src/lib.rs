//! # weak-stabilization
//!
//! A full reproduction of **“Weak vs. Self vs. Probabilistic
//! Stabilization”** (Stéphane Devismes, Sébastien Tixeuil, Masafumi
//! Yamashita; ICDCS 2008 / INRIA RR-6366) as a Rust workspace:
//!
//! * [`graph`] — topology substrate (rings, trees, ports, centers, `m_N`);
//! * [`core`] — the guarded-command kernel: configurations, local views,
//!   daemons, fairness, step semantics, the `Trans(A)` transformer, and
//!   the shared CSR exploration engine (full sweep, on-the-fly
//!   reachable-only BFS, symmetry-group quotients — ring rotation,
//!   ring dihedral, star/tree leaf permutations);
//! * [`algorithms`] — the paper's Algorithms 1–3, the center-based leader
//!   election, and classic baselines (Dijkstra's K-state ring, Herman's
//!   probabilistic ring, greedy coloring);
//! * [`checker`] — explicit-state verification of weak / self /
//!   probabilistic stabilization under unfair, weakly fair, strongly fair
//!   and Gouda-fair schedulers;
//! * [`markov`] — exact expected stabilization times via absorbing Markov
//!   chains (the quantitative study the paper lists as future work);
//! * [`sim`] — seeded Monte-Carlo simulation with confidence intervals.
//!
//! This facade crate re-exports all sub-crates under one name, and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! ## Quickstart
//!
//! ```
//! use weak_stabilization::prelude::*;
//!
//! // Algorithm 1 of the paper on the ring of Figure 1 (N = 6, m_N = 4).
//! let ring = stab_graph::builders::ring(6);
//! let alg = stab_algorithms::token_ring::TokenCirculation::on_ring(&ring).unwrap();
//! let spec = alg.legitimacy();
//!
//! // It is weak-stabilizing but not self-stabilizing under the
//! // distributed strongly fair scheduler (Theorem 2 + Theorem 6).
//! let report = stab_checker::analyze(&alg, Daemon::Distributed, &spec, 1 << 22).unwrap();
//! assert!(report.closure.holds());
//! assert!(report.weak.holds());
//! assert!(!report.self_under(Fairness::StronglyFair).holds());
//! assert!(report.self_under(Fairness::Gouda).holds());
//! assert!(report.probabilistic.holds());
//! ```

pub use stab_algorithms as algorithms;
pub use stab_checker as checker;
pub use stab_core as core;
pub use stab_graph as graph;
pub use stab_markov as markov;
pub use stab_sim as sim;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use stab_algorithms;
    pub use stab_checker;
    pub use stab_core::{
        ActionId, ActionMask, Activation, Algorithm, Configuration, Daemon, Fairness, Legitimacy,
        Outcomes, Trace, Transformed, View,
    };
    pub use stab_graph::{self, builders, Graph, NodeId, PortId};
    pub use stab_markov;
    pub use stab_sim;
}
