//! One planned exploration driving checker, Markov and Monte-Carlo: the
//! scenario-level entry point of the library.
//!
//! The paper's central contribution is a *comparison* — weak vs. self vs.
//! probabilistic stabilization of one algorithm under one scheduler — yet
//! running that comparison through the layer APIs takes three separate
//! calls (`stab_checker::analyze`, `AbsorbingChain::build`,
//! `stab_sim::montecarlo::estimate`), each re-exploring the same
//! `(algorithm, daemon)` space and each wanting hand-tuned
//! [`ExploreOptions`]. [`Study`] replaces that with one typed builder:
//!
//! ```
//! use weak_stabilization::study::Study;
//! use stab_algorithms::TokenCirculation;
//! use stab_core::{Daemon, Fairness, FairnessSet};
//! use stab_graph::builders;
//!
//! // Theorems 2 + 5/6 as ONE study: Algorithm 1 on the paper's ring.
//! let alg = TokenCirculation::on_ring(&builders::ring(5)).unwrap();
//! let spec = alg.legitimacy();
//! let report = Study::of(&alg)
//!     .daemon(Daemon::Distributed)
//!     .spec(&spec)
//!     .verdicts(FairnessSet::ALL)
//!     .run()
//!     .unwrap();
//! let verdicts = report.verdicts.as_ref().unwrap();
//! assert!(verdicts.weak.holds, "Theorem 2: weak-stabilizing");
//! assert!(
//!     !verdicts.self_under(Fairness::StronglyFair).unwrap().holds,
//!     "Theorem 6: not self-stabilizing even under strong fairness"
//! );
//! assert!(verdicts.self_under(Fairness::Gouda).unwrap().holds, "Theorem 5");
//! assert!(verdicts.probabilistic.holds, "Theorem 7");
//! // The report serializes; CI and bench bins consume the same object.
//! let text = report.to_json_string();
//! assert!(text.contains("study_report/v4"));
//! ```
//!
//! # What `run()` does
//!
//! 1. **Plan** — estimate the space from the algorithm's alphabet and
//!    topology, consult the engine's equivariance gate to pick the best
//!    sound symmetry quotient (or none), and pick the edge-store tier
//!    under a byte budget ([`stab_core::engine::Plan`]). Every decision
//!    is recorded in the report; [`Study::options`] overrides the
//!    planner wholesale, [`Study::byte_budget`] just moves the budget.
//! 2. **Explore once** — a single
//!    [`stab_core::engine::TransitionSystem`]
//!    materialises the space; the checker borrows it through
//!    [`ExploredSpace::from_transition_system`] and the Markov stage
//!    through [`AbsorbingChain::from_transition_system`]. No stage
//!    re-explores (pinned by `stab_core::engine::explore_count`).
//! 3. **Stages** — each chained stage ([`Study::verdicts`],
//!    [`Study::expected_times`], [`Study::monte_carlo`]) contributes a
//!    section to the [`StudyReport`]; unrequested stages cost nothing.
//!
//! The report is versioned (`study_report/v4`) and round-trips through
//! JSON bit-for-bit, so the bench binaries and CI validate exactly the
//! object users see.
//!
//! # Resilience
//!
//! Three builders make a study survive hostile environments (see the
//! engine's `resilience` module for the machinery):
//!
//! * [`Study::budget`] threads a [`Budget`] through exploration, the
//!   checker's Tarjan/verdict analyses and the Gauss–Seidel solver.
//!   Exhaustion does **not** fail the run: the starved stage records
//!   [`Outcome::Degraded`] in the report's [`StatusSection`], downstream
//!   stages that needed its output record [`Outcome::Skipped`], and
//!   `run()` still returns `Ok` — "the space was too big for the budget"
//!   is a finding, not a crash.
//! * [`Study::checkpoint`] persists exploration progress as a CRC-framed
//!   delta-frame chain, so a killed process loses at most one frame
//!   interval of work ([`TransitionSystem::resume`] rebuilds the system
//!   bit-for-bit).
//! * [`Study::faults`] injects deterministic kill-points and budget
//!   trips (test/bench harness; a triggered kill surfaces as the real
//!   [`CoreError::Interrupted`] a SIGKILL would leave behind).

mod json;
mod report;

pub use json::Json;
pub use report::{
    DecisionRecord, EstimateRecord, ExpectedSection, ExpectedTimes, FairnessVerdict, McSection,
    Outcome, PlanSection, SpaceSection, StatusSection, StudyReport, Timings, VerdictRecord,
    VerdictsSection, SCHEMA,
};

use std::path::PathBuf;
use std::time::Instant;

use stab_checker::{analyze_space_budgeted, ExploredSpace, Verdict};
use stab_core::engine::{
    Budget, ExploreMode, ExploreOptions, FaultPlan, Plan, PlanRequest, RunGuard, TransitionSystem,
};
use stab_core::{Algorithm, CoreError, DaemonSpec, FairnessSet, Legitimacy, SpaceIndexer};
use stab_markov::{AbsorbingChain, MarkovError};
use stab_sim::montecarlo::{estimate, BatchSettings};

/// Default configuration-space cap: the engine's u32 id width (larger
/// spaces cannot be fully explored anyway).
pub const DEFAULT_CAP: u64 = u32::MAX as u64;

/// Marker for a [`Study`] whose specification has not been supplied yet;
/// `run()` only exists after [`Study::spec`] replaces it.
#[derive(Debug, Clone, Copy)]
pub struct NoSpec;

/// Seeded Monte-Carlo stage configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McConfig {
    /// Number of runs.
    pub runs: u64,
    /// Per-run step budget; runs exceeding it count as failures.
    pub max_steps: u64,
    /// Base seed; the batch is deterministic in (config, algorithm).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        let b = BatchSettings::default();
        McConfig {
            runs: b.runs,
            max_steps: b.max_steps,
            seed: b.seed,
            threads: b.threads,
        }
    }
}

impl McConfig {
    fn settings(&self) -> BatchSettings {
        BatchSettings {
            runs: self.runs,
            max_steps: self.max_steps,
            seed: self.seed,
            threads: self.threads,
        }
    }
}

/// A planned, staged study of one `(algorithm, daemon, specification)`
/// triple — see the [module docs](self) for the full pipeline.
///
/// Built with [`Study::of`]; the `Sp` parameter is [`NoSpec`] until
/// [`Study::spec`] supplies a specification, which is what makes
/// [`Study::run`] available (the builder is *typed*: an unspecified study
/// does not compile into a run).
#[derive(Debug, Clone)]
pub struct Study<'a, A: Algorithm, Sp = NoSpec> {
    alg: &'a A,
    spec: Sp,
    daemon: DaemonSpec,
    cap: u64,
    verdicts: Option<FairnessSet>,
    expected: bool,
    chain_only: bool,
    cdf_horizon: Option<usize>,
    monte_carlo: Option<McConfig>,
    options: Option<ExploreOptions<A::State>>,
    plan_req: PlanRequest,
    budget: Budget,
    checkpoint: Option<(PathBuf, u64)>,
    faults: FaultPlan,
}

impl<'a, A: Algorithm> Study<'a, A, NoSpec> {
    /// Starts a study of `alg` (distributed daemon by default — the
    /// paper's weakest scheduling assumption).
    pub fn of(alg: &'a A) -> Self {
        Study {
            alg,
            spec: NoSpec,
            daemon: DaemonSpec::distributed(),
            cap: DEFAULT_CAP,
            verdicts: None,
            expected: false,
            chain_only: false,
            cdf_horizon: None,
            monte_carlo: None,
            options: None,
            plan_req: PlanRequest::default(),
            budget: Budget::unlimited(),
            checkpoint: None,
            faults: FaultPlan::none(),
        }
    }
}

impl<'a, A: Algorithm, Sp> Study<'a, A, Sp> {
    /// Selects the scheduler — any point of the daemon lattice; the
    /// paper's four daemons convert via `impl Into<DaemonSpec>`.
    #[must_use]
    pub fn daemon(mut self, daemon: impl Into<DaemonSpec>) -> Self {
        self.daemon = daemon.into();
        self
    }

    /// Supplies the legitimacy specification, making [`Study::run`]
    /// available.
    pub fn spec<L>(self, spec: &'a L) -> Study<'a, A, &'a L>
    where
        L: Legitimacy<A::State>,
    {
        Study {
            alg: self.alg,
            spec,
            daemon: self.daemon,
            cap: self.cap,
            verdicts: self.verdicts,
            expected: self.expected,
            chain_only: self.chain_only,
            cdf_horizon: self.cdf_horizon,
            monte_carlo: self.monte_carlo,
            options: self.options,
            plan_req: self.plan_req,
            budget: self.budget,
            checkpoint: self.checkpoint,
            faults: self.faults,
        }
    }

    /// Caps the configuration-space size (default: the u32 id width).
    #[must_use]
    pub fn cap(mut self, cap: u64) -> Self {
        self.cap = cap;
        self
    }

    /// Enables the checker stage: closure, weak and probabilistic
    /// convergence always, plus the self-stabilization verdict under each
    /// fairness assumption in `set`.
    #[must_use]
    pub fn verdicts(mut self, set: FairnessSet) -> Self {
        self.verdicts = Some(set);
        self
    }

    /// Enables the exact expected-stabilization-time stage (absorbing
    /// Markov chain over the shared exploration).
    #[must_use]
    pub fn expected_times(mut self) -> Self {
        self.expected = true;
        self
    }

    /// Also records the hitting-time CDF up to `horizon` steps (implies
    /// [`Study::expected_times`]).
    #[must_use]
    pub fn hitting_cdf(mut self, horizon: usize) -> Self {
        self.expected = true;
        self.cdf_horizon = Some(horizon);
        self
    }

    /// Builds the absorbing chain off the shared exploration — recording
    /// its `Q`-extraction cost in the report's `chain_build` timing —
    /// *without* solving for expected times. The bench smoke uses this to
    /// time the Markov stage on instances whose solves would dominate the
    /// wall clock; implied by (and subsumed under)
    /// [`Study::expected_times`].
    #[must_use]
    pub fn chain_build(mut self) -> Self {
        self.chain_only = true;
        self
    }

    /// Enables the seeded Monte-Carlo cross-check stage.
    #[must_use]
    pub fn monte_carlo(mut self, config: McConfig) -> Self {
        self.monte_carlo = Some(config);
        self
    }

    /// Replaces the auto-planner's choices wholesale with explicit engine
    /// options (the expert escape hatch). The plan section still records
    /// the estimates, with `planned = false`.
    #[must_use]
    pub fn options(mut self, options: ExploreOptions<A::State>) -> Self {
        self.options = Some(options);
        self
    }

    /// Moves the planner's flat-store byte budget (default
    /// [`stab_core::engine::DEFAULT_BYTE_BUDGET`]): estimated full-sweep
    /// flat stores above it select the compressed tier.
    #[must_use]
    pub fn byte_budget(mut self, bytes: u64) -> Self {
        self.plan_req = self.plan_req.with_byte_budget(bytes);
        self
    }

    /// Caps the run's resources (wall time, bytes, states). Exhaustion
    /// degrades the starved stage in the report's [`StatusSection`]
    /// instead of failing the run — see the [module docs](self).
    ///
    /// A limited budget (like a checkpoint or an active fault plan)
    /// routes exploration through the engine's sequential path, so
    /// budgeted runs trade the parallel sweep for interruptibility.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Writes a checkpoint frame into `dir` every `every_n_states`
    /// explored states; a killed run resumes via
    /// [`TransitionSystem::resume`] (or by re-running the study with the
    /// same directory — exploration restarts, but the frame chain is
    /// replaced atomically, never torn).
    #[must_use]
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>, every_n_states: u64) -> Self {
        self.checkpoint = Some((dir.into(), every_n_states));
        self
    }

    /// Installs a deterministic fault plan (kill after N checkpoint
    /// frames, budget trip at the k-th probe) — the test/bench harness
    /// for the resilience machinery.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn record(verdict: &Verdict) -> VerdictRecord {
    VerdictRecord {
        holds: verdict.holds(),
        witness: verdict.witness().map(|w| w.to_string()),
    }
}

impl<'a, A, L> Study<'a, A, &'a L>
where
    A: Algorithm + Sync,
    A::State: Sync,
    L: Legitimacy<A::State> + Sync,
{
    /// Plans, explores **once**, runs the requested stages against the
    /// shared exploration, and returns the structured report.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from planning and exploration (space cap,
    /// enabled-set enumeration, forced-quotient validation), including
    /// [`CoreError::Interrupted`] from an injected kill — a killed
    /// process has no report. Two failure families are *not* errors:
    ///
    /// * Markov-stage findings (absorption not almost sure, solver
    ///   divergence) are recorded in the report's
    ///   [`ExpectedSection::Unsolvable`], because "expected time is
    ///   infinite" is a finding, not a crash.
    /// * [`CoreError::BudgetExhausted`] from a [`Study::budget`] is
    ///   recorded as [`Outcome::Degraded`] for the starved stage in the
    ///   report's [`StatusSection`] ([`Outcome::Skipped`] for stages it
    ///   starved downstream), because a resource-capped run must exit
    ///   cleanly with whatever it finished.
    ///
    /// # Panics
    ///
    /// The Monte-Carlo stage inherits `stab_sim`'s panics: zero runs, or
    /// no run converging within its step budget.
    pub fn run(&self) -> Result<StudyReport, CoreError> {
        let total_start = Instant::now();
        let ix = SpaceIndexer::new(self.alg, self.cap)?;

        // ---- Stage 0: plan -------------------------------------------
        let plan_start = Instant::now();
        let req = match &self.options {
            None => self.plan_req.clone(),
            // Explicit options: the planner still estimates (the report
            // should say what the run was up against), but every choice
            // is forced from the supplied options.
            Some(o) => self
                .plan_req
                .clone()
                .with_quotient(o.quotient)
                .with_edge_store(o.edge_store),
        };
        let plan = Plan::compute(self.alg, &ix, self.daemon, self.spec, &req)?;
        let opts = match &self.options {
            Some(o) => o.clone(),
            None => plan.options(),
        };
        let mut decisions: Vec<DecisionRecord> = plan
            .decisions
            .iter()
            .map(|d| DecisionRecord {
                setting: d.setting.to_string(),
                choice: d.choice.clone(),
                auto: d.auto,
                reason: d.reason.clone(),
            })
            .collect();
        if self.options.is_some() {
            decisions.push(DecisionRecord {
                setting: "options".to_string(),
                choice: match &opts.mode {
                    ExploreMode::Full => "explicit-full".to_string(),
                    ExploreMode::Reachable { seeds } => {
                        format!("explicit-reachable({} seeds)", seeds.len())
                    }
                },
                auto: false,
                reason: "ExploreOptions supplied by caller; planner estimates are advisory"
                    .to_string(),
            });
        }
        let planned = self.options.is_none() && plan.fully_auto();
        let plan_section = PlanSection {
            planned,
            total_configs: plan.total_configs,
            sampled_rows: plan.sampled_rows,
            est_edges_per_config: plan.est_edges_per_config,
            est_full_edges: plan.est_full_edges,
            est_full_flat_bytes: plan.est_full_flat_bytes,
            est_analysis_flat_bytes: plan.est_analysis_flat_bytes,
            est_analysis_compressed_bytes: plan.est_analysis_compressed_bytes,
            byte_budget: plan.byte_budget,
            disk_byte_budget: plan.disk_byte_budget,
            quotient: opts.quotient.label().to_string(),
            group_order: plan.group_order,
            edge_store: opts.edge_store.label().to_string(),
            decisions,
        };
        let plan_ms = ms(plan_start);

        // ---- Stage 1: the one exploration ----------------------------
        let guard = RunGuard::new(self.budget.clone(), self.faults.clone());
        let opts = match &self.checkpoint {
            Some((dir, every)) => opts.with_checkpoint(dir, *every),
            None => opts,
        };
        let explore_start = Instant::now();
        let explored = match TransitionSystem::explore_guarded(
            self.alg,
            &ix,
            self.daemon,
            self.spec,
            &opts,
            &guard,
        ) {
            Ok(ts) => Ok(ts),
            Err(e @ CoreError::BudgetExhausted { .. }) => Err(e.to_string()),
            Err(e) => return Err(e),
        };
        let explore_ms = ms(explore_start);
        let (space_section, explore_outcome) = match &explored {
            Ok(ts) => (
                Some(SpaceSection {
                    configs: ts.n_configs() as u64,
                    represented: ts.represented_configs(),
                    group_order: ts.group_order(),
                    edges: ts.n_edges(),
                    edge_bytes: ts.edge_bytes(),
                    resident_bytes: ts.resident_edge_bytes(),
                    spilled_bytes: ts.spilled_edge_bytes(),
                    legitimate: ts.legit_count(),
                    deterministic: ts.deterministic(),
                }),
                Outcome::Complete,
            ),
            Err(reason) => (
                None,
                Outcome::Degraded {
                    reason: reason.clone(),
                },
            ),
        };

        let mut chain_build_ms = None;
        let mut verdicts_ms = None;
        let mut expected_solve_ms = None;
        let mut verdicts = None;
        let mut expected_times = None;
        // A degraded exploration starves everything that needed the
        // shared system; those stages stay `Skipped`.
        let mut chain_build_outcome = Outcome::Skipped;
        let mut verdicts_outcome = Outcome::Skipped;
        let mut expected_outcome = Outcome::Skipped;

        if let Ok(ts) = explored {
            // ---- Stage 2: Markov Q extraction (borrows the system) ---
            let chain = if self.expected || self.chain_only {
                let start = Instant::now();
                let chain = AbsorbingChain::from_transition_system(ix.clone(), self.daemon, &ts);
                chain_build_ms = Some(ms(start));
                chain_build_outcome = Outcome::Complete;
                Some(chain)
            } else {
                None
            };

            // ---- Stage 3: checker verdicts (adopts the system) -------
            let space = ExploredSpace::from_transition_system(ix, self.daemon, ts);
            if let Some(set) = self.verdicts {
                let start = Instant::now();
                match analyze_space_budgeted(
                    &space,
                    self.alg.name(),
                    self.spec.name(),
                    guard.budget(),
                ) {
                    Ok(report) => {
                        verdicts = Some(VerdictsSection {
                            closure: record(&report.closure),
                            weak: record(&report.weak),
                            probabilistic: record(&report.probabilistic),
                            self_stabilizing: set
                                .iter()
                                .map(|f| FairnessVerdict {
                                    fairness: f.name().to_string(),
                                    verdict: record(report.self_under(f)),
                                })
                                .collect(),
                        });
                        verdicts_outcome = Outcome::Complete;
                    }
                    Err(e @ CoreError::BudgetExhausted { .. }) => {
                        verdicts_outcome = Outcome::Degraded {
                            reason: e.to_string(),
                        };
                    }
                    Err(e) => return Err(e),
                }
                verdicts_ms = Some(ms(start));
            }

            // ---- Stage 4: exact expected times -----------------------
            if let Some(chain) = chain.filter(|_| self.expected) {
                let start = Instant::now();
                let budget = guard.budget();
                match (
                    chain.expected_steps_with(budget),
                    chain.absorption_probabilities_with(budget),
                ) {
                    (Ok(times), Ok(probs)) => {
                        let min_absorption = probs.into_iter().fold(1.0f64, f64::min);
                        expected_times = Some(ExpectedSection::Solved(ExpectedTimes {
                            n_transient: chain.n_transient() as u64,
                            worst_case: times.worst_case(),
                            average: times.average_weighted(
                                chain.transient_orbits(),
                                chain.represented_configs(),
                            ),
                            min_absorption,
                            cdf: self.cdf_horizon.map(|h| chain.hitting_cdf_uniform(h)),
                        }));
                        expected_outcome = Outcome::Complete;
                    }
                    (Err(MarkovError::Core(e @ CoreError::BudgetExhausted { .. })), _)
                    | (_, Err(MarkovError::Core(e @ CoreError::BudgetExhausted { .. }))) => {
                        expected_outcome = Outcome::Degraded {
                            reason: e.to_string(),
                        };
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        // "No finite expected time" is itself a result.
                        expected_times = Some(ExpectedSection::Unsolvable {
                            error: e.to_string(),
                        });
                        expected_outcome = Outcome::Complete;
                    }
                }
                expected_solve_ms = Some(ms(start));
            }
        }

        // ---- Stage 5: seeded Monte-Carlo (needs no exploration, so it
        // runs even when the explore stage degraded) -------------------
        let mut monte_carlo_ms = None;
        let monte_carlo = self.monte_carlo.as_ref().map(|config| {
            let start = Instant::now();
            let batch = estimate(self.alg, self.daemon, self.spec, &config.settings());
            let section = McSection {
                runs: batch.runs,
                failures: batch.failures,
                seed: config.seed,
                max_steps: config.max_steps,
                steps: EstimateRecord::from(&batch.steps),
                moves: EstimateRecord::from(&batch.moves),
                rounds: EstimateRecord::from(&batch.rounds),
            };
            monte_carlo_ms = Some(ms(start));
            section
        });

        Ok(StudyReport {
            algorithm: self.alg.name(),
            spec: self.spec.name(),
            daemon: self.daemon,
            plan: plan_section,
            status: StatusSection {
                plan: Outcome::Complete,
                explore: explore_outcome,
                verdicts: verdicts_outcome,
                chain_build: chain_build_outcome,
                expected_solve: expected_outcome,
                monte_carlo: if monte_carlo.is_some() {
                    Outcome::Complete
                } else {
                    Outcome::Skipped
                },
            },
            space: space_section,
            verdicts,
            expected_times,
            monte_carlo,
            timings_ms: Timings {
                plan: plan_ms,
                explore: explore_ms,
                verdicts: verdicts_ms,
                chain_build: chain_build_ms,
                expected_solve: expected_solve_ms,
                monte_carlo: monte_carlo_ms,
                total: ms(total_start),
            },
        })
    }
}
