//! The serializable record of one [`Study`](super::Study) run.
//!
//! [`StudyReport`] is versioned (`study_report/v4`) and round-trips
//! through its JSON form bit-for-bit — bench binaries, CI validators and
//! downstream consumers all read the same object users see in code.
//!
//! v2 added the [`StatusSection`]: one [`Outcome`] per stage, so a study
//! interrupted by an exhausted [`Budget`](stab_core::engine::Budget)
//! still produces a well-formed report — the starved stage reads
//! `Degraded` with the budget's rendered reason, stages that never ran
//! read `Skipped`, and `space` became optional because a degraded
//! exploration has no counters to report.
//!
//! v3 replaces the flat daemon name with a structured `daemon` object —
//! `{name, distribution: {kind, k, radius}, fairness, bound}` — so every
//! point of the daemon lattice ([`DaemonSpec`]) serializes, not just the
//! paper's four named daemons. `name` stays the legacy string for the
//! four legacy encodings, so readers keyed on it keep working.

use stab_core::{Boundedness, DaemonSpec, Distribution, Fairness};

use super::json::Json;

/// The schema tag every serialized report carries.
pub const SCHEMA: &str = "study_report/v4";

/// How one stage of a study ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The stage ran to completion.
    Complete,
    /// A budget probe tripped mid-stage: the stage's section is absent
    /// (or partial) and `reason` carries the rendered
    /// [`CoreError::BudgetExhausted`](stab_core::CoreError::BudgetExhausted).
    Degraded {
        /// The rendered exhaustion error.
        reason: String,
    },
    /// The stage never ran — not requested, or starved by an upstream
    /// degradation.
    Skipped,
}

impl Outcome {
    /// Whether this stage degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Outcome::Degraded { .. })
    }

    fn to_json(&self) -> Json {
        match self {
            Outcome::Complete => Json::Str("complete".to_string()),
            Outcome::Skipped => Json::Str("skipped".to_string()),
            Outcome::Degraded { reason } => obj(vec![("degraded", Json::Str(reason.clone()))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        if let Some(tag) = v.as_str() {
            return match tag {
                "complete" => Ok(Outcome::Complete),
                "skipped" => Ok(Outcome::Skipped),
                other => Err(format!("unknown stage outcome `{other}`")),
            };
        }
        v.get("degraded")
            .and_then(Json::as_str)
            .map(|reason| Outcome::Degraded {
                reason: reason.to_string(),
            })
            .ok_or_else(|| "stage outcome is not `complete`/`skipped`/{degraded}".to_string())
    }
}

/// Per-stage outcomes (same stage names as [`Timings`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusSection {
    /// Planning.
    pub plan: Outcome,
    /// The one shared exploration.
    pub explore: Outcome,
    /// Checker analyses.
    pub verdicts: Outcome,
    /// `Q`-row extraction.
    pub chain_build: Outcome,
    /// Hitting-time / absorption solves.
    pub expected_solve: Outcome,
    /// Monte-Carlo batch.
    pub monte_carlo: Outcome,
}

impl StatusSection {
    /// Whether any stage degraded.
    pub fn any_degraded(&self) -> bool {
        [
            &self.plan,
            &self.explore,
            &self.verdicts,
            &self.chain_build,
            &self.expected_solve,
            &self.monte_carlo,
        ]
        .into_iter()
        .any(Outcome::is_degraded)
    }
}

/// What the planner decided before exploring (mirrors
/// `stab_core::engine::Plan`, flattened to stable labels).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSection {
    /// Whether every decision was made by the auto-planner (false when
    /// options were forced or supplied wholesale).
    pub planned: bool,
    /// Full configuration-space size.
    pub total_configs: u64,
    /// Rows sampled for the edge estimate.
    pub sampled_rows: u64,
    /// Mean out-degree over the sample.
    pub est_edges_per_config: f64,
    /// Estimated full-sweep edge count.
    pub est_full_edges: u64,
    /// Estimated full-sweep flat-store bytes.
    pub est_full_flat_bytes: u64,
    /// Estimated analysis-time flat footprint (store + reverse CSR +
    /// Q mirror) — what the flat-tier decision actually compares.
    pub est_analysis_flat_bytes: u64,
    /// Estimated analysis-time compressed footprint.
    pub est_analysis_compressed_bytes: u64,
    /// The byte budget the flat-tier decision was made against.
    pub byte_budget: u64,
    /// The RAM ceiling the disk-tier decision was made against.
    pub disk_byte_budget: u64,
    /// Selected quotient label (`"none"` / `"ring-rotation"` /
    /// `"ring-dihedral"` / `"automorphism"`).
    pub quotient: String,
    /// Selected group order (1 without a quotient).
    pub group_order: u64,
    /// Selected edge-store label (`"flat"` / `"compressed"` / `"disk"`).
    pub edge_store: String,
    /// Every decision, with rationale.
    pub decisions: Vec<DecisionRecord>,
}

/// One planner decision (auto or forced), with its reason.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// The setting decided (`"quotient"` / `"edge_store"` / `"options"`).
    pub setting: String,
    /// The chosen value's label.
    pub choice: String,
    /// Whether the planner chose it.
    pub auto: bool,
    /// Rationale.
    pub reason: String,
}

/// Measured counters of the one shared exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSection {
    /// Explored configurations (orbit representatives in a quotient).
    pub configs: u64,
    /// Concrete configurations represented (Σ orbit sizes).
    pub represented: u64,
    /// Group order of the quotient actually explored (1 outside).
    pub group_order: u64,
    /// Stored edges.
    pub edges: u64,
    /// Forward edge-store heap bytes.
    pub edge_bytes: u64,
    /// Forward edge-store bytes resident in RAM at the end of the run
    /// (equal to `edge_bytes` on the in-RAM tiers; offsets, probability
    /// table and cached chunks on the disk tier).
    pub resident_bytes: u64,
    /// Forward edge-store bytes spilled to chunk files (zero on the
    /// in-RAM tiers).
    pub spilled_bytes: u64,
    /// Legitimate explored configurations.
    pub legitimate: u64,
    /// Whether the determinism audit passed everywhere.
    pub deterministic: bool,
}

/// One property verdict: holds, or fails with a rendered witness.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictRecord {
    /// Whether the property holds.
    pub holds: bool,
    /// Rendered counterexample when it fails.
    pub witness: Option<String>,
}

/// The checker stage's output: closure, weak and probabilistic
/// convergence, plus the certain-convergence verdict per requested
/// fairness assumption.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictsSection {
    /// Strong closure of `L`.
    pub closure: VerdictRecord,
    /// Possible convergence (weak stabilization).
    pub weak: VerdictRecord,
    /// Probabilistic convergence under the randomized scheduler.
    pub probabilistic: VerdictRecord,
    /// Certain convergence per fairness assumption (weakest first; only
    /// the requested ones).
    pub self_stabilizing: Vec<FairnessVerdict>,
}

/// The self-stabilization verdict under one fairness assumption.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessVerdict {
    /// The assumption's stable name ([`Fairness::name`]).
    pub fairness: String,
    /// The verdict.
    pub verdict: VerdictRecord,
}

impl VerdictsSection {
    /// The verdict recorded for `fairness`, if it was requested.
    pub fn self_under(&self, fairness: Fairness) -> Option<&VerdictRecord> {
        self.self_stabilizing
            .iter()
            .find(|v| v.fairness == fairness.name())
            .map(|v| &v.verdict)
    }
}

/// The Markov stage's output: exact expected stabilization times off the
/// shared exploration's `Q` rows — or the typed reason they do not exist.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectedSection {
    /// Absorption is almost sure; the solves succeeded.
    Solved(ExpectedTimes),
    /// The chain does not absorb almost surely (or a solver failed):
    /// expected times are infinite/unavailable. The study still reports
    /// everything else.
    Unsolvable {
        /// The rendered error.
        error: String,
    },
}

impl ExpectedSection {
    /// The solved times, if absorption was almost sure.
    pub fn solved(&self) -> Option<&ExpectedTimes> {
        match self {
            ExpectedSection::Solved(t) => Some(t),
            ExpectedSection::Unsolvable { .. } => None,
        }
    }
}

/// Exact hitting-time summaries (and optionally the CDF).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedTimes {
    /// Transient states of the chain.
    pub n_transient: u64,
    /// Worst-case expected steps over initial configurations.
    pub worst_case: f64,
    /// Uniform-initial average (orbit-weighted on quotient chains, so it
    /// equals the full-space average exactly).
    pub average: f64,
    /// Minimum absorption probability over transient states (1 up to
    /// solver tolerance for probabilistically self-stabilizing systems).
    pub min_absorption: f64,
    /// `cdf[k] = P(stabilized within k steps)` from the uniform initial
    /// distribution, when a horizon was requested.
    pub cdf: Option<Vec<f64>>,
}

/// The Monte-Carlo stage's output (seeded, deterministic in its config).
#[derive(Debug, Clone, PartialEq)]
pub struct McSection {
    /// Total runs.
    pub runs: u64,
    /// Runs that did not converge within the budget.
    pub failures: u64,
    /// Base seed.
    pub seed: u64,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Steps-to-stabilization estimate.
    pub steps: EstimateRecord,
    /// Moves (total activations) estimate.
    pub moves: EstimateRecord,
    /// Rounds estimate.
    pub rounds: EstimateRecord,
}

/// A mean/spread estimate (mirrors `stab_sim::Estimate`).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRecord {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Sample size.
    pub n: u64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl From<&stab_sim::Estimate> for EstimateRecord {
    fn from(e: &stab_sim::Estimate) -> Self {
        EstimateRecord {
            mean: e.mean,
            std_dev: e.std_dev,
            std_err: e.std_err,
            n: e.n,
            min: e.min,
            max: e.max,
        }
    }
}

/// Wall-clock milliseconds per stage (`None` = stage not requested).
#[derive(Debug, Clone, PartialEq)]
pub struct Timings {
    /// Planning (estimation + gate consultations).
    pub plan: f64,
    /// The one shared exploration.
    pub explore: f64,
    /// Checker analyses.
    pub verdicts: Option<f64>,
    /// `Q`-row extraction from the shared system.
    pub chain_build: Option<f64>,
    /// Hitting-time / absorption solves (and the CDF evolution).
    pub expected_solve: Option<f64>,
    /// Monte-Carlo batch.
    pub monte_carlo: Option<f64>,
    /// End-to-end `run()`.
    pub total: f64,
}

/// The structured, versioned record of one `Study::run()`.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Specification name.
    pub spec: String,
    /// The scheduler studied — a daemon-lattice point; the paper's four
    /// daemons are the named legacy points.
    pub daemon: DaemonSpec,
    /// What was decided before exploring, and why.
    pub plan: PlanSection,
    /// How each stage ended (complete / degraded / skipped).
    pub status: StatusSection,
    /// Measured counters of the shared exploration (`None` when the
    /// exploration itself degraded).
    pub space: Option<SpaceSection>,
    /// Checker verdicts (when the stage was requested).
    pub verdicts: Option<VerdictsSection>,
    /// Exact expected times (when the stage was requested).
    pub expected_times: Option<ExpectedSection>,
    /// Monte-Carlo estimates (when the stage was requested).
    pub monte_carlo: Option<McSection>,
    /// Per-stage wall-clock times.
    pub timings_ms: Timings,
}

fn u(v: u64) -> Json {
    Json::UInt(v)
}

fn opt_f(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl StudyReport {
    /// The JSON tree of this report (schema [`SCHEMA`]).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("algorithm", Json::Str(self.algorithm.clone())),
            ("spec", Json::Str(self.spec.clone())),
            ("daemon", daemon_to_json(self.daemon)),
            ("plan", self.plan.to_json()),
            ("status", self.status.to_json()),
            (
                "space",
                self.space
                    .as_ref()
                    .map_or(Json::Null, SpaceSection::to_json),
            ),
            (
                "verdicts",
                self.verdicts
                    .as_ref()
                    .map_or(Json::Null, VerdictsSection::to_json),
            ),
            (
                "expected_times",
                self.expected_times
                    .as_ref()
                    .map_or(Json::Null, ExpectedSection::to_json),
            ),
            (
                "monte_carlo",
                self.monte_carlo
                    .as_ref()
                    .map_or(Json::Null, McSection::to_json),
            ),
            ("timings_ms", self.timings_ms.to_json()),
        ])
    }

    /// Renders the report as an indented JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parses a serialized report back.
    ///
    /// # Errors
    ///
    /// A rendered message on malformed JSON, a wrong/missing schema tag,
    /// or missing fields.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
        }
        let daemon = daemon_from_json(field(&v, "daemon")?)?;
        Ok(StudyReport {
            algorithm: str_field(&v, "algorithm")?.to_string(),
            spec: str_field(&v, "spec")?.to_string(),
            daemon,
            plan: PlanSection::from_json(field(&v, "plan")?)?,
            status: StatusSection::from_json(field(&v, "status")?)?,
            space: nullable(&v, "space", SpaceSection::from_json)?,
            verdicts: nullable(&v, "verdicts", VerdictsSection::from_json)?,
            expected_times: nullable(&v, "expected_times", ExpectedSection::from_json)?,
            monte_carlo: nullable(&v, "monte_carlo", McSection::from_json)?,
            timings_ms: Timings::from_json(field(&v, "timings_ms")?)?,
        })
    }
}

// ---- daemon (de)serialization ------------------------------------------

fn daemon_to_json(d: DaemonSpec) -> Json {
    let distribution = match d.distribution {
        Distribution::Synchronous => obj(vec![("kind", Json::Str("synchronous".to_string()))]),
        Distribution::KCentral { k, radius } => obj(vec![
            ("kind", Json::Str("k-central".to_string())),
            ("k", k.map_or(Json::Null, |k| u(u64::from(k)))),
            ("radius", u(u64::from(radius))),
        ]),
    };
    obj(vec![
        ("name", Json::Str(d.name())),
        ("distribution", distribution),
        ("fairness", Json::Str(d.fairness.name().to_string())),
        (
            "bound",
            match d.bound {
                Boundedness::Unbounded => Json::Null,
                Boundedness::EnabledBounded(b) => u(u64::from(b)),
            },
        ),
    ])
}

fn u32_field(v: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(u64_field(v, key)?).map_err(|_| format!("field `{key}` exceeds u32"))
}

fn daemon_from_json(v: &Json) -> Result<DaemonSpec, String> {
    let dist = field(v, "distribution")?;
    let distribution = match str_field(dist, "kind")? {
        "synchronous" => Distribution::Synchronous,
        "k-central" => {
            let k = match field(dist, "k")? {
                Json::Null => None,
                k => Some(
                    k.as_u64()
                        .and_then(|k| u32::try_from(k).ok())
                        .ok_or("daemon `k` is not an unsigned integer or null")?,
                ),
            };
            Distribution::KCentral {
                k,
                radius: u32_field(dist, "radius")?,
            }
        }
        other => return Err(format!("unknown distribution kind `{other}`")),
    };
    let fairness_name = str_field(v, "fairness")?;
    let fairness = Fairness::ALL
        .into_iter()
        .find(|f| f.name() == fairness_name)
        .ok_or_else(|| format!("unknown fairness `{fairness_name}`"))?;
    let bound = match field(v, "bound")? {
        Json::Null => Boundedness::Unbounded,
        b => Boundedness::EnabledBounded(
            b.as_u64()
                .and_then(|b| u32::try_from(b).ok())
                .ok_or("daemon `bound` is not an unsigned integer or null")?,
        ),
    };
    Ok(DaemonSpec {
        distribution,
        fairness,
        bound,
    })
}

// ---- field helpers -----------------------------------------------------

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a boolean"))
}

fn opt_f64_field(v: &Json, key: &str) -> Result<Option<f64>, String> {
    let member = field(v, key)?;
    if member.is_null() {
        return Ok(None);
    }
    member
        .as_f64()
        .map(Some)
        .ok_or_else(|| format!("field `{key}` is not a number or null"))
}

fn nullable<T>(
    v: &Json,
    key: &str,
    parse: impl FnOnce(&Json) -> Result<T, String>,
) -> Result<Option<T>, String> {
    let member = field(v, key)?;
    if member.is_null() {
        Ok(None)
    } else {
        parse(member).map(Some)
    }
}

// ---- per-section (de)serialization -------------------------------------

impl PlanSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("planned", Json::Bool(self.planned)),
            ("total_configs", u(self.total_configs)),
            ("sampled_rows", u(self.sampled_rows)),
            ("est_edges_per_config", Json::Num(self.est_edges_per_config)),
            ("est_full_edges", u(self.est_full_edges)),
            ("est_full_flat_bytes", u(self.est_full_flat_bytes)),
            ("est_analysis_flat_bytes", u(self.est_analysis_flat_bytes)),
            (
                "est_analysis_compressed_bytes",
                u(self.est_analysis_compressed_bytes),
            ),
            ("byte_budget", u(self.byte_budget)),
            ("disk_byte_budget", u(self.disk_byte_budget)),
            ("quotient", Json::Str(self.quotient.clone())),
            ("group_order", u(self.group_order)),
            ("edge_store", Json::Str(self.edge_store.clone())),
            (
                "decisions",
                Json::Arr(self.decisions.iter().map(DecisionRecord::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PlanSection {
            planned: bool_field(v, "planned")?,
            total_configs: u64_field(v, "total_configs")?,
            sampled_rows: u64_field(v, "sampled_rows")?,
            est_edges_per_config: f64_field(v, "est_edges_per_config")?,
            est_full_edges: u64_field(v, "est_full_edges")?,
            est_full_flat_bytes: u64_field(v, "est_full_flat_bytes")?,
            est_analysis_flat_bytes: u64_field(v, "est_analysis_flat_bytes")?,
            est_analysis_compressed_bytes: u64_field(v, "est_analysis_compressed_bytes")?,
            byte_budget: u64_field(v, "byte_budget")?,
            disk_byte_budget: u64_field(v, "disk_byte_budget")?,
            quotient: str_field(v, "quotient")?.to_string(),
            group_order: u64_field(v, "group_order")?,
            edge_store: str_field(v, "edge_store")?.to_string(),
            decisions: field(v, "decisions")?
                .as_arr()
                .ok_or("`decisions` is not an array")?
                .iter()
                .map(DecisionRecord::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl DecisionRecord {
    fn to_json(&self) -> Json {
        obj(vec![
            ("setting", Json::Str(self.setting.clone())),
            ("choice", Json::Str(self.choice.clone())),
            ("auto", Json::Bool(self.auto)),
            ("reason", Json::Str(self.reason.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(DecisionRecord {
            setting: str_field(v, "setting")?.to_string(),
            choice: str_field(v, "choice")?.to_string(),
            auto: bool_field(v, "auto")?,
            reason: str_field(v, "reason")?.to_string(),
        })
    }
}

impl StatusSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("plan", self.plan.to_json()),
            ("explore", self.explore.to_json()),
            ("verdicts", self.verdicts.to_json()),
            ("chain_build", self.chain_build.to_json()),
            ("expected_solve", self.expected_solve.to_json()),
            ("monte_carlo", self.monte_carlo.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(StatusSection {
            plan: Outcome::from_json(field(v, "plan")?)?,
            explore: Outcome::from_json(field(v, "explore")?)?,
            verdicts: Outcome::from_json(field(v, "verdicts")?)?,
            chain_build: Outcome::from_json(field(v, "chain_build")?)?,
            expected_solve: Outcome::from_json(field(v, "expected_solve")?)?,
            monte_carlo: Outcome::from_json(field(v, "monte_carlo")?)?,
        })
    }
}

impl SpaceSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("configs", u(self.configs)),
            ("represented", u(self.represented)),
            ("group_order", u(self.group_order)),
            ("edges", u(self.edges)),
            ("edge_bytes", u(self.edge_bytes)),
            ("resident_bytes", u(self.resident_bytes)),
            ("spilled_bytes", u(self.spilled_bytes)),
            ("legitimate", u(self.legitimate)),
            ("deterministic", Json::Bool(self.deterministic)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(SpaceSection {
            configs: u64_field(v, "configs")?,
            represented: u64_field(v, "represented")?,
            group_order: u64_field(v, "group_order")?,
            edges: u64_field(v, "edges")?,
            edge_bytes: u64_field(v, "edge_bytes")?,
            resident_bytes: u64_field(v, "resident_bytes")?,
            spilled_bytes: u64_field(v, "spilled_bytes")?,
            legitimate: u64_field(v, "legitimate")?,
            deterministic: bool_field(v, "deterministic")?,
        })
    }
}

impl VerdictRecord {
    fn to_json(&self) -> Json {
        obj(vec![
            ("holds", Json::Bool(self.holds)),
            (
                "witness",
                self.witness
                    .as_ref()
                    .map_or(Json::Null, |w| Json::Str(w.clone())),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let witness = field(v, "witness")?;
        Ok(VerdictRecord {
            holds: bool_field(v, "holds")?,
            witness: if witness.is_null() {
                None
            } else {
                Some(
                    witness
                        .as_str()
                        .ok_or("`witness` is not a string or null")?
                        .to_string(),
                )
            },
        })
    }
}

impl VerdictsSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("closure", self.closure.to_json()),
            ("weak", self.weak.to_json()),
            ("probabilistic", self.probabilistic.to_json()),
            (
                "self_stabilizing",
                Json::Arr(
                    self.self_stabilizing
                        .iter()
                        .map(|fv| {
                            obj(vec![
                                ("fairness", Json::Str(fv.fairness.clone())),
                                ("verdict", fv.verdict.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(VerdictsSection {
            closure: VerdictRecord::from_json(field(v, "closure")?)?,
            weak: VerdictRecord::from_json(field(v, "weak")?)?,
            probabilistic: VerdictRecord::from_json(field(v, "probabilistic")?)?,
            self_stabilizing: field(v, "self_stabilizing")?
                .as_arr()
                .ok_or("`self_stabilizing` is not an array")?
                .iter()
                .map(|fv| {
                    Ok(FairnessVerdict {
                        fairness: str_field(fv, "fairness")?.to_string(),
                        verdict: VerdictRecord::from_json(field(fv, "verdict")?)?,
                    })
                })
                .collect::<Result<_, String>>()?,
        })
    }
}

impl ExpectedSection {
    fn to_json(&self) -> Json {
        match self {
            ExpectedSection::Unsolvable { error } => obj(vec![("error", Json::Str(error.clone()))]),
            ExpectedSection::Solved(t) => obj(vec![
                ("n_transient", u(t.n_transient)),
                ("worst_case", Json::Num(t.worst_case)),
                ("average", Json::Num(t.average)),
                ("min_absorption", Json::Num(t.min_absorption)),
                (
                    "cdf",
                    t.cdf.as_ref().map_or(Json::Null, |cdf| {
                        Json::Arr(cdf.iter().map(|&p| Json::Num(p)).collect())
                    }),
                ),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        if let Some(error) = v.get("error") {
            return Ok(ExpectedSection::Unsolvable {
                error: error.as_str().ok_or("`error` is not a string")?.to_string(),
            });
        }
        let cdf = match field(v, "cdf")? {
            Json::Null => None,
            arr => Some(
                arr.as_arr()
                    .ok_or("`cdf` is not an array or null")?
                    .iter()
                    .map(|p| p.as_f64().ok_or("`cdf` entry is not a number".to_string()))
                    .collect::<Result<_, _>>()?,
            ),
        };
        Ok(ExpectedSection::Solved(ExpectedTimes {
            n_transient: u64_field(v, "n_transient")?,
            worst_case: f64_field(v, "worst_case")?,
            average: f64_field(v, "average")?,
            min_absorption: f64_field(v, "min_absorption")?,
            cdf,
        }))
    }
}

impl EstimateRecord {
    fn to_json(&self) -> Json {
        obj(vec![
            ("mean", Json::Num(self.mean)),
            ("std_dev", Json::Num(self.std_dev)),
            ("std_err", Json::Num(self.std_err)),
            ("n", u(self.n)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(EstimateRecord {
            mean: f64_field(v, "mean")?,
            std_dev: f64_field(v, "std_dev")?,
            std_err: f64_field(v, "std_err")?,
            n: u64_field(v, "n")?,
            min: f64_field(v, "min")?,
            max: f64_field(v, "max")?,
        })
    }
}

impl McSection {
    fn to_json(&self) -> Json {
        obj(vec![
            ("runs", u(self.runs)),
            ("failures", u(self.failures)),
            ("seed", u(self.seed)),
            ("max_steps", u(self.max_steps)),
            ("steps", self.steps.to_json()),
            ("moves", self.moves.to_json()),
            ("rounds", self.rounds.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(McSection {
            runs: u64_field(v, "runs")?,
            failures: u64_field(v, "failures")?,
            seed: u64_field(v, "seed")?,
            max_steps: u64_field(v, "max_steps")?,
            steps: EstimateRecord::from_json(field(v, "steps")?)?,
            moves: EstimateRecord::from_json(field(v, "moves")?)?,
            rounds: EstimateRecord::from_json(field(v, "rounds")?)?,
        })
    }
}

impl Timings {
    fn to_json(&self) -> Json {
        obj(vec![
            ("plan", Json::Num(self.plan)),
            ("explore", Json::Num(self.explore)),
            ("verdicts", opt_f(self.verdicts)),
            ("chain_build", opt_f(self.chain_build)),
            ("expected_solve", opt_f(self.expected_solve)),
            ("monte_carlo", opt_f(self.monte_carlo)),
            ("total", Json::Num(self.total)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Timings {
            plan: f64_field(v, "plan")?,
            explore: f64_field(v, "explore")?,
            verdicts: opt_f64_field(v, "verdicts")?,
            chain_build: opt_f64_field(v, "chain_build")?,
            expected_solve: opt_f64_field(v, "expected_solve")?,
            monte_carlo: opt_f64_field(v, "monte_carlo")?,
            total: f64_field(v, "total")?,
        })
    }
}
