//! A minimal self-contained JSON tree: enough for [`StudyReport`] to
//! serialize and parse itself without external dependencies (the build
//! container is offline; see the workspace vendoring rule).
//!
//! Numbers come in two exact flavours: non-negative integers are kept
//! as `u64` ([`Json::UInt`], rendered bare — counters, seeds and budgets
//! survive the full 64-bit range, where routing through `f64` would
//! round away anything past 2⁵³), and floats as `f64` ([`Json::Num`],
//! rendered with Rust's shortest round-trip formatting, integral values
//! keeping their `.0`). The two renderings are disjoint, so
//! `parse(render(v)) == v` for every (finite) value this crate
//! produces.
//!
//! [`StudyReport`]: super::StudyReport

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact across the full u64 range.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` on other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (integers convert, with
    /// `f64`'s usual precision past 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer — exact for
    /// [`Json::UInt`]; a [`Json::Num`] qualifies only when integral,
    /// non-negative and exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) => {
                const TWO_64: f64 = 18_446_744_073_709_551_616.0;
                (*v >= 0.0 && v.fract() == 0.0 && *v < TWO_64).then_some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders with two-space indentation and a trailing newline (the
    /// layout of the repo's committed benchmark records).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the first
    /// violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Rust's shortest round-trip float formatting; integral floats keep
/// their `.0` (e.g. `5.0`), so a rendered [`Json::Num`] can never be
/// mistaken for a [`Json::UInt`] on the way back in.
fn write_number(out: &mut String, v: f64) {
    let _ = write!(out, "{v:?}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // lint: cast-ok(char scalar values are at most 0x10FFFF, lossless into u32)
            c if (c as u32) < 0x20 => {
                // lint: cast-ok(char scalar values are at most 0x10FFFF, lossless into u32)
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by this
                        // crate's writer; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("unsupported \\u{hex} escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("bad number at byte {start}"))?;
    // Plain non-negative integer tokens stay exact u64; everything else
    // (signs, fractions, exponents) goes through f64.
    if text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_variant() {
        let v = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            ("int".into(), Json::UInt(42)),
            ("huge".into(), Json::UInt(u64::MAX)),
            ("neg".into(), Json::Num(-7.0)),
            ("whole".into(), Json::Num(9.0)),
            ("float".into(), Json::Num(8.030189376897871)),
            ("text".into(), Json::Str("⟨true, \"false\"⟩\n".into())),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(0.125), Json::Str("x".into()), Json::Null]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, v);
        // Rendering is a fixed point.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for v in [
            std::f64::consts::PI,
            1.0 / 3.0,
            4.0 / 3.0,
            1e-300,
            -2.2250738585072014e-308,
            123456789.000000001,
            6.0,
        ] {
            let text = Json::Num(v).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn accessors_and_errors() {
        let v = Json::parse(r#"{"a": [1, 2.5], "b": "s", "c": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        // Integers survive the full u64 range; 2^64 overflows to f64.
        let big = Json::parse("18446744073709551615").unwrap();
        assert_eq!(big.as_u64(), Some(u64::MAX));
        let over = Json::parse("18446744073709551616").unwrap();
        assert_eq!(over.as_u64(), None, "2^64 must not saturate");
        assert!(over.as_f64().is_some());
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
