//! Property-based tests for the graph substrate.
//!
//! Random trees are generated through Prüfer sequences, which makes the
//! sampling uniform over all labelled trees (Cayley). The properties mirror
//! the facts the paper relies on: Property 1 (tree centers), metric
//! inequalities, and the structural identities of ring orientations.

use proptest::prelude::*;
use stab_graph::{builders, metrics, ring, trees, Graph, NodeId};

/// Strategy: a Prüfer sequence for a tree on `n` nodes, 2 <= n <= 24.
fn pruefer_strategy() -> impl Strategy<Value = Vec<usize>> {
    (2usize..=24).prop_flat_map(|n| {
        proptest::collection::vec(0..n, n.saturating_sub(2)..=n.saturating_sub(2))
    })
}

proptest! {
    #[test]
    fn random_trees_are_trees(seq in pruefer_strategy()) {
        let g = trees::tree_from_pruefer(&seq);
        prop_assert!(g.is_tree());
        prop_assert_eq!(g.n(), seq.len() + 2);
        prop_assert_eq!(g.edge_count(), seq.len() + 1);
    }

    #[test]
    fn pruefer_round_trip(seq in pruefer_strategy()) {
        let g = trees::tree_from_pruefer(&seq);
        let seq2 = trees::pruefer_from_tree(&g);
        prop_assert_eq!(seq, seq2);
    }

    /// Property 1 of the paper: a tree has a unique center or two
    /// neighbouring centers; also the leaf-pruning and BFS computations
    /// agree.
    #[test]
    fn property1_tree_centers(seq in pruefer_strategy()) {
        let g = trees::tree_from_pruefer(&seq);
        let pruned = metrics::tree_centers(&g);
        let bfs = metrics::centers(&g);
        prop_assert_eq!(&pruned, &bfs);
        match pruned.len() {
            1 => {}
            2 => prop_assert!(g.are_adjacent(pruned[0], pruned[1])),
            k => prop_assert!(false, "a tree cannot have {} centers", k),
        }
    }

    /// Tree centers have eccentricity exactly ceil(D / 2).
    #[test]
    fn tree_radius_is_half_diameter(seq in pruefer_strategy()) {
        let g = trees::tree_from_pruefer(&seq);
        let d = metrics::diameter(&g);
        prop_assert_eq!(metrics::radius(&g), d.div_ceil(2));
    }

    /// Triangle inequality on BFS distances of random trees.
    #[test]
    fn triangle_inequality(seq in pruefer_strategy(), a in 0usize..24, b in 0usize..24, c in 0usize..24) {
        let g = trees::tree_from_pruefer(&seq);
        let n = g.n();
        let (a, b, c) = (NodeId::new(a % n), NodeId::new(b % n), NodeId::new(c % n));
        let dab = metrics::distance(&g, a, b);
        let dbc = metrics::distance(&g, b, c);
        let dac = metrics::distance(&g, a, c);
        prop_assert!(dac <= dab + dbc);
    }

    /// Distances are symmetric.
    #[test]
    fn distance_symmetric(seq in pruefer_strategy(), a in 0usize..24, b in 0usize..24) {
        let g = trees::tree_from_pruefer(&seq);
        let n = g.n();
        let (a, b) = (NodeId::new(a % n), NodeId::new(b % n));
        prop_assert_eq!(metrics::distance(&g, a, b), metrics::distance(&g, b, a));
    }

    /// Ring orientations: pred and succ are mutually inverse and the cycle
    /// order is a Hamiltonian traversal.
    #[test]
    fn ring_orientation_laws(n in 3usize..40) {
        let g = builders::ring(n);
        let o = ring::RingOrientation::canonical(&g).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(o.predecessor(&g, o.successor(&g, v)), v);
            prop_assert_eq!(o.successor(&g, o.predecessor(&g, v)), v);
        }
        let order = o.cycle_order(&g);
        let mut seen: Vec<usize> = order.iter().map(|v| v.index()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    /// m_N: no k in 2..m_N fails to divide N, and m_N does not divide N.
    #[test]
    fn smallest_non_divisor_is_minimal(n in 1u64..100_000) {
        let m = ring::smallest_non_divisor(n);
        prop_assert!(n % m != 0);
        for k in 2..m {
            prop_assert_eq!(n % k, 0);
        }
    }

    /// Handshake lemma on arbitrary graphs built from random edge sets.
    #[test]
    fn handshake_lemma(n in 1usize..12, edge_bits in proptest::collection::vec(any::<bool>(), 0..66)) {
        let mut edges = Vec::new();
        let mut k = 0usize;
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                if k >= edge_bits.len() { break 'outer; }
                if edge_bits[k] {
                    edges.push((a, b));
                }
                k += 1;
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }
}
