//! Distance-based graph metrics from §2 of the paper: distance, eccentricity,
//! diameter, radius and centers, plus Property 1 (a tree has a unique center
//! or two neighbouring centers).

use std::collections::VecDeque;

use crate::graph::Graph;
use crate::ids::NodeId;

/// BFS distances from `source` to every node; `usize::MAX` marks unreachable
/// nodes (cannot occur on the connected graphs of the paper, but the function
/// is total).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &u in g.neighbors(v) {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The distance `d(p, q)`: length of the shortest path.
///
/// # Panics
///
/// Panics if the nodes are not connected (the paper only considers connected
/// graphs) or out of range.
pub fn distance(g: &Graph, p: NodeId, q: NodeId) -> usize {
    let d = bfs_distances(g, p)[q.index()];
    assert!(d != usize::MAX, "{p} and {q} are not connected");
    d
}

/// Eccentricity `ec(p) = max_q d(p, q)`.
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn eccentricity(g: &Graph, p: NodeId) -> usize {
    let dist = bfs_distances(g, p);
    let mut e = 0usize;
    for d in dist {
        assert!(d != usize::MAX, "eccentricity requires a connected graph");
        e = e.max(d);
    }
    e
}

/// All eccentricities at once (one BFS per node).
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn eccentricities(g: &Graph) -> Vec<usize> {
    g.nodes().map(|v| eccentricity(g, v)).collect()
}

/// The diameter `D = max_p ec(p)`.
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn diameter(g: &Graph) -> usize {
    eccentricities(g).into_iter().max().unwrap_or(0)
}

/// The radius `min_p ec(p)`.
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn radius(g: &Graph) -> usize {
    eccentricities(g).into_iter().min().unwrap_or(0)
}

/// The centers of the graph: nodes of minimum eccentricity.
///
/// For trees, Property 1 of the paper guarantees this returns one node or two
/// neighbouring nodes — asserted by [`tree_centers`].
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn centers(g: &Graph) -> Vec<NodeId> {
    let ecc = eccentricities(g);
    let r = *ecc.iter().min().expect("graph is non-empty");
    g.nodes().filter(|v| ecc[v.index()] == r).collect()
}

/// Tree centers via iterative leaf pruning (linear time), validating
/// Property 1: the result has length 1, or length 2 with adjacent nodes.
///
/// This is independent of the BFS-based [`centers`] computation, so the two
/// cross-validate each other in tests.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn tree_centers(g: &Graph) -> Vec<NodeId> {
    assert!(g.is_tree(), "tree_centers requires a tree");
    let n = g.n();
    if n == 1 {
        return vec![NodeId::new(0)];
    }
    if n == 2 {
        return vec![NodeId::new(0), NodeId::new(1)];
    }
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut frontier: Vec<NodeId> = g.leaves();
    let mut remaining = n;
    while remaining > 2 {
        let mut next = Vec::new();
        for &leaf in &frontier {
            removed[leaf.index()] = true;
            remaining -= 1;
            for &u in g.neighbors(leaf) {
                if !removed[u.index()] {
                    degree[u.index()] -= 1;
                    if degree[u.index()] == 1 {
                        next.push(u);
                    }
                }
            }
        }
        frontier = next;
    }
    let result: Vec<NodeId> = g.nodes().filter(|v| !removed[v.index()]).collect();
    debug_assert!(
        result.len() == 1 || (result.len() == 2 && g.are_adjacent(result[0], result[1])),
        "Property 1 violated: {result:?}"
    );
    result
}

/// For every node of a tree, the center nearest to it (`NearestCenter(p)` in
/// the proof of Lemma 7) together with the distance to it.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn nearest_centers(g: &Graph) -> Vec<(NodeId, usize)> {
    let cs = tree_centers(g);
    let dists: Vec<Vec<usize>> = cs.iter().map(|&c| bfs_distances(g, c)).collect();
    g.nodes()
        .map(|v| {
            let mut best = (cs[0], dists[0][v.index()]);
            for (i, &c) in cs.iter().enumerate().skip(1) {
                if dists[i][v.index()] < best.1 {
                    best = (c, dists[i][v.index()]);
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn distances_on_path() {
        let g = builders::path(5);
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(4)), 4);
        assert_eq!(distance(&g, NodeId::new(2), NodeId::new(2)), 0);
        assert_eq!(bfs_distances(&g, NodeId::new(0)), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distances_on_ring() {
        let g = builders::ring(6);
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(3)), 3);
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(5)), 1);
    }

    #[test]
    fn eccentricity_diameter_radius_path() {
        let g = builders::path(5);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 4);
        assert_eq!(eccentricity(&g, NodeId::new(2)), 2);
        assert_eq!(diameter(&g), 4);
        assert_eq!(radius(&g), 2);
    }

    #[test]
    fn centers_of_odd_path_is_middle() {
        let g = builders::path(5);
        assert_eq!(centers(&g), vec![NodeId::new(2)]);
        assert_eq!(tree_centers(&g), vec![NodeId::new(2)]);
    }

    #[test]
    fn centers_of_even_path_are_two_adjacent() {
        let g = builders::path(6);
        let c = tree_centers(&g);
        assert_eq!(c, vec![NodeId::new(2), NodeId::new(3)]);
        assert!(g.are_adjacent(c[0], c[1]));
        assert_eq!(centers(&g), c);
    }

    #[test]
    fn centers_of_star_is_hub() {
        let g = builders::star(7);
        assert_eq!(tree_centers(&g), vec![NodeId::new(0)]);
    }

    #[test]
    fn centers_of_trivial_trees() {
        assert_eq!(tree_centers(&builders::path(1)), vec![NodeId::new(0)]);
        assert_eq!(
            tree_centers(&builders::path(2)),
            vec![NodeId::new(0), NodeId::new(1)]
        );
    }

    #[test]
    fn centers_of_figure2_tree() {
        // Eccentricities: the tree is P2—P3—P5—P6—P7 spine with P1 on P3,
        // P4 on P5, P8 on P6. BFS gives centers {P5} (index 4)... cross-check
        // the two independent computations instead of hand-deriving.
        let g = builders::figure2_tree();
        assert_eq!(centers(&g), tree_centers(&g));
    }

    #[test]
    fn ring_centers_are_all_nodes() {
        let g = builders::ring(5);
        assert_eq!(centers(&g).len(), 5);
    }

    #[test]
    fn nearest_centers_on_even_path() {
        let g = builders::path(4);
        let nc = nearest_centers(&g);
        // Centers are nodes 1 and 2.
        assert_eq!(nc[0], (NodeId::new(1), 1));
        assert_eq!(nc[1], (NodeId::new(1), 0));
        assert_eq!(nc[2], (NodeId::new(2), 0));
        assert_eq!(nc[3], (NodeId::new(2), 1));
    }

    #[test]
    fn radius_diameter_inequality() {
        // r <= D <= 2r on every connected graph.
        for g in [
            builders::path(7),
            builders::ring(8),
            builders::star(5),
            builders::binary_tree(10),
            builders::complete(4),
        ] {
            let r = radius(&g);
            let d = diameter(&g);
            assert!(r <= d && d <= 2 * r, "violated for {g:?}: r={r} d={d}");
        }
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn distance_unconnected_panics() {
        let g = Graph::from_edges(2, &[]).unwrap();
        let _ = distance(&g, NodeId::new(0), NodeId::new(1));
    }
}
