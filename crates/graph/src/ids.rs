//! Strongly-typed identifiers for nodes and local ports.
//!
//! Anonymous processes cannot address each other globally; in the paper each
//! process `p` distinguishes its neighbours only through local indexes stored
//! in `Neig_p = {0, …, Δ_p − 1}`. [`NodeId`] is the *analyst's* name for a
//! process (used by the simulator, checker and display code — never by
//! algorithm logic in a way that would break anonymity), while [`PortId`] is
//! the local index a process itself is allowed to use.

use std::fmt;

/// Global index of a process in a network, assigned by the analyst.
///
/// Algorithms in this workspace only receive `NodeId` as an opaque handle to
/// look up local information (degree, neighbour states by port); anonymous
/// algorithms must not branch on its numeric value.
///
/// ```
/// use stab_graph::NodeId;
/// let p = NodeId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "P3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

/// Local port index in `0..degree(p)`: the only neighbour-naming mechanism
/// available to an anonymous process.
///
/// ```
/// use stab_graph::PortId;
/// let q = PortId::new(1);
/// assert_eq!(q.index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(u16);

impl PortId {
    /// Creates a port identifier from a local index.
    #[inline]
    pub fn new(index: usize) -> Self {
        PortId(u16::try_from(index).expect("port index exceeds u16"))
    }

    /// Returns the local index of this port.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next port modulo `degree`, as used by Action `A2` of Algorithm 2
    /// (`Par_p ← (Par_p + 1) mod Δ_p`).
    #[inline]
    pub fn next_mod(self, degree: usize) -> PortId {
        debug_assert!(degree > 0, "next_mod on a node without neighbours");
        PortId::new((self.index() + 1) % degree)
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for PortId {
    fn from(index: usize) -> Self {
        PortId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 7, 4095] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn node_id_display_and_debug_match() {
        let p = NodeId::new(12);
        assert_eq!(format!("{p}"), "P12");
        assert_eq!(format!("{p:?}"), "P12");
    }

    #[test]
    fn node_id_ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::from(5));
    }

    #[test]
    fn port_id_round_trip() {
        for i in [0usize, 1, 3, 65000] {
            assert_eq!(PortId::new(i).index(), i);
        }
    }

    #[test]
    fn port_next_mod_wraps() {
        assert_eq!(PortId::new(0).next_mod(3), PortId::new(1));
        assert_eq!(PortId::new(2).next_mod(3), PortId::new(0));
        assert_eq!(PortId::new(0).next_mod(1), PortId::new(0));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
