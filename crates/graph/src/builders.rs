//! Constructors for the graph families used across the paper's examples and
//! the evaluation: rings, paths, stars, complete graphs, balanced trees,
//! caterpillars, random trees and exhaustive tree enumeration.

use rand::Rng;

use crate::graph::Graph;

/// The unidirectional-ring topology of §3.1 (`N >= 3` nodes `0..n` with node
/// `i` adjacent to `i±1 mod n`).
///
/// # Panics
///
/// Panics if `n < 3`; a simple graph has no 1- or 2-cycles.
///
/// ```
/// let g = stab_graph::builders::ring(6);
/// assert!(g.is_ring());
/// ```
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes, got {n}");
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("ring edges are valid by construction")
}

/// A path (chain) `0 − 1 − … − (n−1)`, the tree used in Theorem 3's
/// four-process impossibility argument and Figure 3.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "a path needs at least 1 node");
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges).expect("path edges are valid by construction")
}

/// A star: node 0 is the hub adjacent to all `n − 1` others.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "a star needs at least 1 node");
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges).expect("star edges are valid by construction")
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 1, "a complete graph needs at least 1 node");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    Graph::from_edges(n, &edges).expect("complete-graph edges are valid by construction")
}

/// A `rows × cols` grid (mesh) in row-major order: node `r·cols + c` is
/// adjacent to its horizontal and vertical neighbours. Grids are the
/// smallest topology whose automorphism group is neither trivial nor a
/// ring group — row/column reflections, plus the transpose when square —
/// so they exercise the engine's general automorphism quotient.
///
/// ```
/// let g = stab_graph::builders::grid(2, 3);
/// assert_eq!(g.n(), 6);
/// assert_eq!(g.edge_count(), 7);
/// ```
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "a grid needs positive dimensions");
    let mut edges = Vec::with_capacity(rows * (cols - 1) + (rows - 1) * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid edges are valid by construction")
}

/// The `(rows, cols)` dimensions of `g` when it is exactly a row-major
/// [`grid`] as the builder labels it, `None` otherwise. Detection is by
/// construction equality over the factor pairs of `n`, so it recognises
/// the builder's labelling (the engine's quotient planner needs exactly
/// that: reflection permutations are written against builder coordinates).
/// Degenerate `1 × n` grids report as paths here too.
///
/// ```
/// use stab_graph::builders;
/// assert_eq!(builders::grid_dims(&builders::grid(3, 4)), Some((3, 4)));
/// assert_eq!(builders::grid_dims(&builders::ring(6)), None);
/// ```
pub fn grid_dims(g: &Graph) -> Option<(usize, usize)> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    (1..=n)
        .filter(|&r| n.is_multiple_of(r))
        .map(|r| (r, n / r))
        .find(|&(r, c)| grid(r, c) == *g)
}

/// A balanced binary tree with `n` nodes filled level by level
/// (node `i` is adjacent to `2i + 1` and `2i + 2` when those exist).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n >= 1, "a binary tree needs at least 1 node");
    let mut edges = Vec::new();
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                edges.push((i, child));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("binary-tree edges are valid by construction")
}

/// A caterpillar: a spine path of `spine` nodes, with `legs` leaves attached
/// to every spine node. Caterpillars exercise high-degree internal nodes in
/// the tree algorithms.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "a caterpillar needs at least 1 spine node");
    let n = spine + spine * legs;
    let mut edges = Vec::new();
    for i in 1..spine {
        edges.push((i - 1, i));
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s, next));
            next += 1;
        }
    }
    Graph::from_edges(n, &edges).expect("caterpillar edges are valid by construction")
}

/// The 8-node tree of the paper's Figure 2, reconstructed from the narrative
/// constraints of §3.2 (which actions are enabled at which process in each of
/// the five depicted configurations, and the `(Par + 1) mod Δ` port
/// arithmetic of Action A2):
///
/// ```text
/// P7 — P2 — P3 — P5 — P6 — P8
///               / | \
///             P1 P4  (P6)
/// ```
///
/// Edges: P1–P5, P2–P3, P2–P7, P3–P5, P4–P5, P5–P6, P6–P8 (paper's `P{i}` is
/// node `i − 1`). With the initial configuration `Par`: P1↦P5, P2↦P7, P3↦P2,
/// P4↦P5, P5↦P1, P6↦P8, P7↦P2, P8↦P6, this is the unique tree for which the
/// figure's enabled-action labels hold exactly: A1 at {P1, P2, P7, P8},
/// A2 at {P3, P5, P6}, and P4 stable.
pub fn figure2_tree() -> Graph {
    Graph::from_edges(8, &[(0, 4), (1, 2), (1, 6), (2, 4), (3, 4), (4, 5), (5, 7)])
        .expect("figure 2 tree is valid by construction")
}

/// A uniformly random labelled tree on `n` nodes, drawn via a random Prüfer
/// sequence (uniform over the `n^(n−2)` labelled trees by Cayley's formula).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "a random tree needs at least 1 node");
    if n == 1 {
        return Graph::from_edges(1, &[]).expect("single node graph");
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("two node tree");
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    crate::trees::tree_from_pruefer(&seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;

    #[test]
    fn ring_shape() {
        for n in 3..10 {
            let g = ring(n);
            assert!(g.is_ring(), "ring({n}) must be a ring");
            assert_eq!(g.edge_count(), n);
            assert_eq!(metrics::diameter(&g), n / 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn ring_too_small_panics() {
        let _ = ring(2);
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert!(g.is_tree());
        assert_eq!(g.leaves().len(), 2);
        assert_eq!(metrics::diameter(&g), 4);
        assert!(path(1).is_tree());
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert!(g.is_tree());
        assert_eq!(g.max_degree(), 5);
        assert_eq!(metrics::diameter(&g), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(metrics::diameter(&g), 1);
        assert!(complete(1).is_tree());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(metrics::diameter(&g), 5);
        // Degenerate grids collapse to paths.
        assert!(grid(1, 5).is_tree());
        assert_eq!(metrics::diameter(&grid(1, 5)), 4);
        assert!(grid(3, 1).is_tree());
        // A single cell is a single node.
        assert_eq!(grid(1, 1).n(), 1);
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn grid_zero_dimension_panics() {
        let _ = grid(0, 3);
    }

    #[test]
    fn grid_dims_recognises_builder_grids_only() {
        assert_eq!(grid_dims(&grid(2, 3)), Some((2, 3)));
        assert_eq!(grid_dims(&grid(3, 3)), Some((3, 3)));
        assert_eq!(grid_dims(&path(4)), Some((1, 4)));
        assert_eq!(grid_dims(&grid(1, 1)), Some((1, 1)));
        // A 2×2 grid is labelled 0-1, 0-2, 1-3, 2-3 — the 4-cycle in a
        // different labelling than ring(4), so only the former matches.
        assert_eq!(grid_dims(&grid(2, 2)), Some((2, 2)));
        assert_eq!(grid_dims(&ring(4)), None);
        assert_eq!(grid_dims(&star(6)), None);
        assert_eq!(grid_dims(&binary_tree(6)), None);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert!(g.is_tree());
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.leaves().len(), 4);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(3, 2);
        assert!(g.is_tree());
        assert_eq!(g.n(), 9);
        // Spine interior node has 2 spine neighbours + 2 legs.
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn figure2_tree_matches_paper() {
        let g = figure2_tree();
        assert!(g.is_tree());
        assert_eq!(g.n(), 8);
        // P5 (index 4) is the hub of the figure with neighbours P1, P3, P4, P6.
        assert_eq!(g.degree(crate::NodeId::new(4)), 4);
        // Leaves are P1, P4, P7, P8 (indices 0, 3, 6, 7).
        let leaves: Vec<usize> = g.leaves().iter().map(|v| v.index()).collect();
        assert_eq!(leaves, vec![0, 3, 6, 7]);
        // Port arithmetic the trace relies on: P5's port 0 is P1, port 1 is P3.
        use crate::{NodeId, PortId};
        assert_eq!(g.neighbor(NodeId::new(4), PortId::new(0)), NodeId::new(0));
        assert_eq!(g.neighbor(NodeId::new(4), PortId::new(1)), NodeId::new(2));
        // Centers are P3 and P5 (adjacent), consistent with Property 1.
        assert_eq!(
            metrics::tree_centers(&g),
            vec![NodeId::new(2), NodeId::new(4)]
        );
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in 1..20 {
            let g = random_tree(n, &mut rng);
            assert!(g.is_tree(), "random_tree({n}) must be a tree");
            assert_eq!(g.n(), n);
        }
    }
}
