//! The undirected communication graph with per-node port numbering.

use crate::error::GraphError;
use crate::ids::{NodeId, PortId};

/// An undirected connected-or-not graph `G = (V, E)` with a *stable port
/// numbering*: each node sees its neighbours through local ports
/// `0..degree`, ordered by ascending neighbour index.
///
/// This is the communication structure of the paper's §2: processes share
/// registers with neighbours and can only distinguish them via local indexes.
/// The deterministic port order keeps executions reproducible and gives
/// anonymous algorithms exactly the information the model allows (degree and
/// port-local state), nothing more.
///
/// ```
/// use stab_graph::{Graph, NodeId, PortId};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// // Node 1's port 0 points at node 0, port 1 at node 2.
/// assert_eq!(g.neighbor(NodeId::new(1), PortId::new(1)), NodeId::new(2));
/// assert_eq!(g.port_of(NodeId::new(1), NodeId::new(2)), Some(PortId::new(1)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    /// `adj[v]` lists the neighbours of `v` in ascending index order;
    /// position within the list is the port number.
    adj: Vec<Vec<NodeId>>,
    /// Edge list with `a < b`, sorted, for iteration and equality.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph on `n` nodes from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if `n == 0`,
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] for edges `(v, v)` and
    /// [`GraphError::DuplicateEdge`] if an undirected edge appears twice.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut normalized: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a >= n {
                return Err(GraphError::NodeOutOfRange { node: a, n });
            }
            if b >= n {
                return Err(GraphError::NodeOutOfRange { node: b, n });
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            normalized.push((a.min(b), a.max(b)));
        }
        normalized.sort_unstable();
        for w in normalized.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge {
                    a: w[0].0,
                    b: w[0].1,
                });
            }
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(a, b) in &normalized {
            adj[a].push(NodeId::new(b));
            adj[b].push(NodeId::new(a));
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let edges = normalized
            .into_iter()
            .map(|(a, b)| (NodeId::new(a), NodeId::new(b)))
            .collect();
        Ok(Graph { adj, edges })
    }

    /// Number of nodes `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node identifiers `P0..P(n-1)`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n()).map(NodeId::new)
    }

    /// Iterator over the undirected edges, each reported once with the lower
    /// index first.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// Degree `Δ_v` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// The graph degree `Δ = max_v Δ_v`.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Neighbours of `v` in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// The neighbour of `v` reached through local `port`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `port` is out of range.
    #[inline]
    pub fn neighbor(&self, v: NodeId, port: PortId) -> NodeId {
        self.adj[v.index()][port.index()]
    }

    /// The local port of `v` that leads to `u`, or `None` if `u` is not a
    /// neighbour of `v`.
    pub fn port_of(&self, v: NodeId, u: NodeId) -> Option<PortId> {
        self.adj[v.index()].binary_search(&u).ok().map(PortId::new)
    }

    /// Whether `u` and `v` are neighbours.
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.port_of(u, v).is_some()
    }

    /// Whether the graph is connected (every graph in the paper is).
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return false;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n()
    }

    /// Whether the graph is a tree: connected and acyclic
    /// (`|E| = N − 1` and connected).
    pub fn is_tree(&self) -> bool {
        self.edge_count() + 1 == self.n() && self.is_connected()
    }

    /// Whether the graph is a ring: connected with every degree exactly 2.
    /// Rings require `N >= 3` (an edge is not a cycle in a simple graph).
    pub fn is_ring(&self) -> bool {
        self.n() >= 3 && self.nodes().all(|v| self.degree(v) == 2) && self.is_connected()
    }

    /// Leaves of the graph: nodes of degree 1 (the paper's tree leaves).
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.degree(v) == 1).collect()
    }

    /// Internal nodes: degree strictly greater than 1.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.degree(v) > 1).collect()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, edges=[", self.n())?;
        for (i, (a, b)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}-{b}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_validates_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 5)]).unwrap_err(),
            GraphError::NodeOutOfRange { node: 5, n: 2 }
        );
    }

    #[test]
    fn from_edges_rejects_duplicates_in_any_orientation() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]).unwrap_err(),
            GraphError::DuplicateEdge { a: 0, b: 1 }
        );
    }

    #[test]
    fn from_edges_rejects_empty() {
        assert_eq!(Graph::from_edges(0, &[]).unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn ports_are_sorted_by_neighbor_index() {
        let g = Graph::from_edges(4, &[(2, 0), (2, 3), (2, 1)]).unwrap();
        let v = NodeId::new(2);
        assert_eq!(
            g.neighbors(v),
            &[NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(g.neighbor(v, PortId::new(0)), NodeId::new(0));
        assert_eq!(g.neighbor(v, PortId::new(2)), NodeId::new(3));
        assert_eq!(g.port_of(v, NodeId::new(1)), Some(PortId::new(1)));
        assert_eq!(g.port_of(v, NodeId::new(2)), None);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = path4();
        for (a, b) in g.edges() {
            assert!(g.are_adjacent(a, b));
            assert!(g.are_adjacent(b, a));
            let pa = g.port_of(a, b).unwrap();
            let pb = g.port_of(b, a).unwrap();
            assert_eq!(g.neighbor(a, pa), b);
            assert_eq!(g.neighbor(b, pb), a);
        }
    }

    #[test]
    fn connectivity_detection() {
        assert!(path4().is_connected());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn tree_detection() {
        assert!(path4().is_tree());
        let cycle = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!cycle.is_tree());
        let forest = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!forest.is_tree());
        let single = Graph::from_edges(1, &[]).unwrap();
        assert!(single.is_tree());
    }

    #[test]
    fn ring_detection() {
        let cycle = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(cycle.is_ring());
        assert!(!path4().is_ring());
        // Two disjoint triangles: all degree 2 but not connected.
        let two = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        assert!(!two.is_ring());
    }

    #[test]
    fn leaves_and_internal_nodes_partition_tree() {
        let g = path4();
        assert_eq!(g.leaves(), vec![NodeId::new(0), NodeId::new(3)]);
        assert_eq!(g.internal_nodes(), vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn max_degree_of_star() {
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(star.max_degree(), 4);
    }

    #[test]
    fn debug_output_lists_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(format!("{g:?}"), "Graph(n=3, edges=[P0-P1, P1-P2])");
    }
}
