//! Graph substrate for the *Weak vs. Self vs. Probabilistic Stabilization*
//! reproduction.
//!
//! The paper (Devismes–Tixeuil–Yamashita, ICDCS 2008) models a distributed
//! system as an undirected connected graph of anonymous processes that can
//! only refer to their neighbours through *local port indexes*
//! `0..degree`. This crate provides:
//!
//! * [`Graph`] — an undirected graph with a stable port numbering per node,
//!   which is the only naming mechanism anonymous algorithms may use;
//! * [`builders`] — rings, paths, stars, caterpillars, complete graphs,
//!   balanced trees, random trees (Prüfer), and exhaustive enumeration of all
//!   labelled trees of a given size;
//! * [`metrics`] — BFS distances, eccentricity, diameter, radius and graph
//!   centers (Property 1 of the paper: a tree has one center or two adjacent
//!   centers);
//! * [`ring`] — ring orientations (the constant `Pred` pointers of §3.1),
//!   the rotation subgroup of a ring's automorphisms ([`RingRotations`],
//!   behind the engine's rotation quotient), and `m_N`, the smallest
//!   integer that does not divide `N`, which governs the counter domain of
//!   Algorithm 1.
//!
//! # Example
//!
//! ```
//! use stab_graph::{builders, metrics, ring};
//!
//! let g = builders::ring(6);
//! assert!(g.is_ring());
//! assert_eq!(metrics::diameter(&g), 3);
//! // Figure 1 of the paper: N = 6 so the counter domain is m_N = 4.
//! assert_eq!(ring::smallest_non_divisor(6), 4);
//! ```

pub mod builders;
pub mod error;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod ring;
pub mod trees;

pub use error::GraphError;
pub use graph::Graph;
pub use ids::{NodeId, PortId};
pub use ring::{RingOrientation, RingRotations};
