//! Ring orientation, ring rotations, and the counter modulus `m_N` of
//! Algorithm 1.
//!
//! §3.1 of the paper equips a ring with a *consistent direction* via constant
//! local pointers `Pred`: process `q` is the predecessor of `p` iff `p` is
//! not the predecessor of `q`. [`RingOrientation`] stores, for each node, the
//! local port leading to its predecessor (and successor), which is exactly
//! the constant input of Algorithm 1. [`RingRotations`] exposes the cyclic
//! rotation subgroup of the ring's automorphisms — the symmetry behind the
//! engine's rotation quotient.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{NodeId, PortId};

/// The smallest integer `>= 2` that does not divide `n`: the counter domain
/// bound `m_N` of Algorithm 1 (`dt_p ∈ [0 .. m_N − 1]`).
///
/// The memory requirement of Algorithm 1 is `log m_N` bits per process,
/// which \[3\] proves minimal for probabilistic self-stabilizing token
/// circulation under a distributed scheduler.
///
/// # Panics
///
/// Panics if `n == 0` (no ring has zero processes).
///
/// ```
/// use stab_graph::ring::smallest_non_divisor;
/// assert_eq!(smallest_non_divisor(6), 4); // Figure 1: N = 6, m_N = 4
/// assert_eq!(smallest_non_divisor(5), 2);
/// assert_eq!(smallest_non_divisor(12), 5);
/// ```
pub fn smallest_non_divisor(n: u64) -> u64 {
    assert!(n >= 1, "smallest_non_divisor requires n >= 1");
    let mut m = 2u64;
    while n.is_multiple_of(m) {
        m += 1;
    }
    m
}

/// A consistent direction on a ring graph: every node knows the local port of
/// its predecessor and successor.
///
/// ```
/// use stab_graph::{builders, RingOrientation, NodeId};
/// let g = builders::ring(5);
/// let o = RingOrientation::canonical(&g).unwrap();
/// // Following successors visits every node once and returns to the start.
/// let mut v = NodeId::new(0);
/// for _ in 0..5 { v = o.successor(&g, v); }
/// assert_eq!(v, NodeId::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingOrientation {
    /// `pred_port[v]` is the local port of `v` pointing at its predecessor.
    pred_port: Vec<PortId>,
    /// `succ_port[v]` is the local port of `v` pointing at its successor.
    succ_port: Vec<PortId>,
}

impl RingOrientation {
    /// Builds the canonical orientation of a ring graph where the successor
    /// of node 0 is its lowest-index neighbour, and the direction is then
    /// propagated consistently around the ring.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotARing`] if `g` is not a ring.
    pub fn canonical(g: &Graph) -> Result<Self, GraphError> {
        if !g.is_ring() {
            return Err(GraphError::NotARing);
        }
        let n = g.n();
        let mut order = Vec::with_capacity(n);
        let start = NodeId::new(0);
        let mut prev = start;
        let mut cur = g.neighbors(start)[0];
        order.push(start);
        while cur != start {
            order.push(cur);
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&u| u != prev)
                .expect("ring nodes have two distinct neighbours");
            prev = cur;
            cur = next;
        }
        Self::from_cycle_order(g, &order)
    }

    /// Builds an orientation from an explicit cyclic order of the nodes:
    /// `order[i + 1 mod n]` is the successor of `order[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotARing`] if `g` is not a ring or the order
    /// does not traverse its edges.
    pub fn from_cycle_order(g: &Graph, order: &[NodeId]) -> Result<Self, GraphError> {
        if !g.is_ring() || order.len() != g.n() {
            return Err(GraphError::NotARing);
        }
        let n = g.n();
        let mut pred_port = vec![PortId::new(0); n];
        let mut succ_port = vec![PortId::new(0); n];
        let mut seen = vec![false; n];
        for i in 0..n {
            let v = order[i];
            if seen[v.index()] {
                return Err(GraphError::NotARing);
            }
            seen[v.index()] = true;
            let succ = order[(i + 1) % n];
            let pred = order[(i + n - 1) % n];
            succ_port[v.index()] = g.port_of(v, succ).ok_or(GraphError::NotARing)?;
            pred_port[v.index()] = g.port_of(v, pred).ok_or(GraphError::NotARing)?;
        }
        Ok(RingOrientation {
            pred_port,
            succ_port,
        })
    }

    /// Number of nodes on the ring.
    pub fn n(&self) -> usize {
        self.pred_port.len()
    }

    /// The local port of `v` pointing at its predecessor (`Pred_v`).
    #[inline]
    pub fn pred_port(&self, v: NodeId) -> PortId {
        self.pred_port[v.index()]
    }

    /// The local port of `v` pointing at its successor.
    #[inline]
    pub fn succ_port(&self, v: NodeId) -> PortId {
        self.succ_port[v.index()]
    }

    /// The predecessor process of `v`.
    #[inline]
    pub fn predecessor(&self, g: &Graph, v: NodeId) -> NodeId {
        g.neighbor(v, self.pred_port(v))
    }

    /// The successor process of `v`.
    #[inline]
    pub fn successor(&self, g: &Graph, v: NodeId) -> NodeId {
        g.neighbor(v, self.succ_port(v))
    }

    /// Nodes in successor order starting from node 0 — useful for rendering
    /// Figure-1-style traces.
    pub fn cycle_order(&self, g: &Graph) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.n());
        let mut v = NodeId::new(0);
        for _ in 0..self.n() {
            order.push(v);
            v = self.successor(g, v);
        }
        order
    }
}

/// The cyclic rotation subgroup of a ring's automorphism group: the `N`
/// maps sending each node `k` successor hops around the canonical
/// orientation. Rotations are the symmetry that `stab-core`'s
/// ring-rotation quotient exploits — every rotation is a graph
/// automorphism, and for anonymous uniform ring algorithms it commutes
/// with the step semantics.
///
/// ```
/// use stab_graph::{builders, NodeId, RingRotations};
/// let rot = RingRotations::of(&builders::ring(5)).unwrap();
/// assert_eq!(rot.n(), 5);
/// // Rotating node 1 by two successor hops lands on node 3.
/// assert_eq!(rot.rotate(NodeId::new(1), 2), NodeId::new(3));
/// // Rotation 0 is the identity.
/// assert_eq!(rot.rotate(NodeId::new(4), 0), NodeId::new(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingRotations {
    /// Nodes in canonical successor order starting at node 0.
    order: Vec<NodeId>,
    /// `pos[v]` = position of node `v` in `order`.
    pos: Vec<usize>,
}

impl RingRotations {
    /// The rotation group of `g` under its canonical orientation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotARing`] if `g` is not a ring (this
    /// includes every graph with fewer than 3 nodes).
    pub fn of(g: &Graph) -> Result<Self, GraphError> {
        let orient = RingOrientation::canonical(g)?;
        let order = orient.cycle_order(g);
        let mut pos = vec![0usize; order.len()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        Ok(RingRotations { order, pos })
    }

    /// Ring size (and group order).
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// Nodes in canonical cycle order starting at node 0.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The position of `v` in the canonical cycle order.
    #[inline]
    pub fn position(&self, v: NodeId) -> usize {
        self.pos[v.index()]
    }

    /// The image of `v` under the rotation by `k` successor hops.
    #[inline]
    pub fn rotate(&self, v: NodeId, k: usize) -> NodeId {
        self.order[(self.pos[v.index()] + k) % self.order.len()]
    }

    /// The node permutation of the rotation by `k` (index `v` ↦ image of
    /// node `v`), suitable for `stab-checker`'s `Automorphism::new`.
    pub fn permutation(&self, k: usize) -> Vec<NodeId> {
        (0..self.order.len())
            .map(|v| self.rotate(NodeId::new(v), k))
            .collect()
    }

    /// The node permutation of the reflection fixing cycle position 0
    /// (position `j` ↦ position `(n − j) mod n`). Together with
    /// [`RingRotations::permutation`]`(1)` it generates the full dihedral
    /// automorphism group `D_N` of the ring — the symmetry behind the
    /// engine's `ring-dihedral` quotient.
    ///
    /// ```
    /// use stab_graph::{builders, NodeId, RingRotations};
    /// let rot = RingRotations::of(&builders::ring(5)).unwrap();
    /// let refl = rot.reflection();
    /// // Node 0 is fixed; its cycle neighbours swap.
    /// assert_eq!(refl[0], NodeId::new(0));
    /// assert_eq!(refl[1], NodeId::new(4));
    /// ```
    pub fn reflection(&self) -> Vec<NodeId> {
        let n = self.order.len();
        (0..n).map(|v| self.order[(n - self.pos[v]) % n]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn smallest_non_divisor_table() {
        // (N, m_N) pairs; note m_N = 2 for every odd N.
        let expected = [
            (1u64, 2u64),
            (2, 3),
            (3, 2),
            (4, 3),
            (5, 2),
            (6, 4),
            (7, 2),
            (8, 3),
            (9, 2),
            (10, 3),
            (12, 5),
            (24, 5),
            (60, 7),
            (420, 8),
            (840, 9),
        ];
        for (n, m) in expected {
            assert_eq!(smallest_non_divisor(n), m, "m_N for N={n}");
        }
    }

    #[test]
    fn smallest_non_divisor_never_divides() {
        for n in 1u64..500 {
            let m = smallest_non_divisor(n);
            assert!(n % m != 0);
            for k in 2..m {
                assert_eq!(n % k, 0, "all smaller values divide N");
            }
        }
    }

    #[test]
    fn canonical_orientation_is_consistent() {
        for n in [3usize, 4, 5, 6, 9] {
            let g = builders::ring(n);
            let o = RingOrientation::canonical(&g).unwrap();
            for v in g.nodes() {
                let s = o.successor(&g, v);
                let p = o.predecessor(&g, v);
                // Paper: q is the predecessor of p iff p is not the
                // predecessor of q — i.e. pred/succ are inverse relations.
                assert_eq!(o.predecessor(&g, s), v);
                assert_eq!(o.successor(&g, p), v);
                assert_ne!(s, p, "on rings with n >= 3 succ != pred");
            }
        }
    }

    #[test]
    fn cycle_order_visits_all_nodes() {
        let g = builders::ring(7);
        let o = RingOrientation::canonical(&g).unwrap();
        let order = o.cycle_order(&g);
        assert_eq!(order.len(), 7);
        let mut sorted: Vec<_> = order.iter().map(|v| v.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn orientation_rejects_non_ring() {
        let g = builders::path(4);
        assert_eq!(
            RingOrientation::canonical(&g).unwrap_err(),
            GraphError::NotARing
        );
    }

    #[test]
    fn from_cycle_order_rejects_bad_order() {
        let g = builders::ring(4);
        // Not a traversal of the ring's edges (0 and 2 are not adjacent).
        let bad = [
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(1),
            NodeId::new(3),
        ];
        assert!(RingOrientation::from_cycle_order(&g, &bad).is_err());
        // Repeated node.
        let dup = [
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(0),
            NodeId::new(3),
        ];
        assert!(RingOrientation::from_cycle_order(&g, &dup).is_err());
    }

    #[test]
    fn rotations_are_automorphisms() {
        for n in [3usize, 4, 6] {
            let g = builders::ring(n);
            let rot = RingRotations::of(&g).unwrap();
            for k in 0..n {
                let perm = rot.permutation(k);
                // Permutation: every node appears exactly once.
                let mut seen = vec![false; n];
                for v in &perm {
                    assert!(!seen[v.index()]);
                    seen[v.index()] = true;
                }
                // Adjacency preserved.
                for (u, v) in g.edges() {
                    assert!(
                        g.are_adjacent(perm[u.index()], perm[v.index()]),
                        "rotation {k} breaks edge ({u}, {v}) on ring({n})"
                    );
                }
            }
        }
    }

    #[test]
    fn rotations_compose_cyclically() {
        let g = builders::ring(7);
        let rot = RingRotations::of(&g).unwrap();
        for v in g.nodes() {
            assert_eq!(rot.rotate(v, 0), v, "identity");
            assert_eq!(rot.rotate(rot.rotate(v, 3), 4), v, "3 + 4 ≡ 0 (mod 7)");
            assert_eq!(rot.position(rot.rotate(v, 2)), (rot.position(v) + 2) % 7);
        }
    }

    #[test]
    fn reflection_is_an_involutive_automorphism() {
        for n in [3usize, 4, 5, 8] {
            let g = builders::ring(n);
            let rot = RingRotations::of(&g).unwrap();
            let refl = rot.reflection();
            // Involution: applying it twice is the identity.
            for v in g.nodes() {
                assert_eq!(refl[refl[v.index()].index()], v, "involution on ring({n})");
            }
            // Adjacency preserved.
            for (u, v) in g.edges() {
                assert!(
                    g.are_adjacent(refl[u.index()], refl[v.index()]),
                    "reflection breaks edge ({u}, {v}) on ring({n})"
                );
            }
            // Composing the reflection with all N rotations yields 2N
            // distinct dihedral elements (N >= 3).
            let mut seen = std::collections::HashSet::new();
            for k in 0..n {
                seen.insert(rot.permutation(k));
                let r = rot.permutation(k);
                let composed: Vec<NodeId> = (0..n).map(|v| r[refl[v].index()]).collect();
                seen.insert(composed);
            }
            assert_eq!(seen.len(), 2 * n, "dihedral order on ring({n})");
        }
    }

    #[test]
    fn rotations_reject_non_rings() {
        assert_eq!(
            RingRotations::of(&builders::path(4)).unwrap_err(),
            GraphError::NotARing
        );
        assert_eq!(
            RingRotations::of(&builders::star(5)).unwrap_err(),
            GraphError::NotARing
        );
        // Graphs below ring size (the N = 1 and N = 2 edge cases) are
        // rejected cleanly rather than treated as degenerate rings.
        assert_eq!(
            RingRotations::of(&builders::path(1)).unwrap_err(),
            GraphError::NotARing
        );
        assert_eq!(
            RingRotations::of(&builders::path(2)).unwrap_err(),
            GraphError::NotARing
        );
    }

    #[test]
    fn reversed_order_swaps_pred_and_succ() {
        let g = builders::ring(5);
        let o = RingOrientation::canonical(&g).unwrap();
        let mut rev = o.cycle_order(&g);
        rev.reverse();
        let o2 = RingOrientation::from_cycle_order(&g, &rev).unwrap();
        for v in g.nodes() {
            assert_eq!(o.successor(&g, v), o2.predecessor(&g, v));
        }
    }
}
