//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating graphs.
///
/// ```
/// use stab_graph::{Graph, GraphError};
/// // A self-loop is rejected: paper graphs have edges between *distinct* nodes.
/// let err = Graph::from_edges(2, &[(0, 0)]).unwrap_err();
/// assert!(matches!(err, GraphError::SelfLoop { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node index `>= n`.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// An edge connects a node to itself; the paper's edges are pairs of
    /// distinct nodes.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// The same undirected edge was given twice.
    DuplicateEdge {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
    },
    /// The graph must have at least one node.
    Empty,
    /// The operation requires a connected graph.
    NotConnected,
    /// The operation requires a tree (connected and acyclic).
    NotATree,
    /// The operation requires a ring (cycle graph).
    NotARing,
    /// The operation requires a path (chain graph).
    NotAPath,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge references node {node} but the graph has {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} is not allowed")
            }
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "duplicate edge between {a} and {b}")
            }
            GraphError::Empty => write!(f, "graph must contain at least one node"),
            GraphError::NotConnected => write!(f, "graph is not connected"),
            GraphError::NotATree => write!(f, "graph is not a tree"),
            GraphError::NotARing => write!(f, "graph is not a ring"),
            GraphError::NotAPath => write!(f, "graph is not a path"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (
                GraphError::NodeOutOfRange { node: 9, n: 4 },
                "edge references node 9 but the graph has 4 nodes",
            ),
            (
                GraphError::SelfLoop { node: 2 },
                "self-loop at node 2 is not allowed",
            ),
            (
                GraphError::DuplicateEdge { a: 1, b: 2 },
                "duplicate edge between 1 and 2",
            ),
            (GraphError::Empty, "graph must contain at least one node"),
            (GraphError::NotConnected, "graph is not connected"),
            (GraphError::NotATree, "graph is not a tree"),
            (GraphError::NotARing, "graph is not a ring"),
            (GraphError::NotAPath, "graph is not a path"),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
