//! Expected hitting times and hitting-time distributions.

use stab_core::engine::Budget;
use stab_core::{Configuration, LocalState};

use crate::chain::AbsorbingChain;
use crate::error::MarkovError;
use crate::linalg;

/// Above this many transient states the sparse Gauss–Seidel solver replaces
/// dense Gaussian elimination.
const DENSE_LIMIT: usize = 600;

/// Residual tolerance of the iterative solver.
const TOL: f64 = 1e-12;

/// Per-configuration expected stabilization times `t = (I − Q)⁻¹ 1`.
#[derive(Debug, Clone)]
pub struct HittingTimes {
    times: Vec<f64>,
}

impl HittingTimes {
    /// Expected steps from the transient state with the given index.
    pub fn of_transient(&self, idx: usize) -> f64 {
        self.times[idx]
    }

    /// The worst-case expected stabilization time over all configurations
    /// (legitimate ones contribute 0).
    pub fn worst_case(&self) -> f64 {
        self.times.iter().copied().fold(0.0, f64::max)
    }

    /// The transient index attaining the worst case, if any transient state
    /// exists.
    pub fn worst_index(&self) -> Option<usize> {
        (0..self.times.len()).max_by(|&i, &j| self.times[i].total_cmp(&self.times[j]))
    }

    /// The average expected stabilization time over a *uniformly random
    /// initial configuration* of the full space with `total` configurations
    /// (legitimate configurations count 0 steps).
    pub fn average_uniform(&self, total: u64) -> f64 {
        assert!(
            total as usize >= self.times.len(),
            "total below transient count"
        );
        self.times.iter().sum::<f64>() / total as f64
    }

    /// The weighted average `Σ wᵢ·tᵢ / total`: the uniform-initial average
    /// of a **quotient** chain, where transient state `i` stands for `wᵢ`
    /// concrete configurations
    /// ([`AbsorbingChain::transient_orbits`]) and `total` is the
    /// represented configuration count
    /// ([`AbsorbingChain::represented_configs`]). With unit weights this
    /// reduces to [`HittingTimes::average_uniform`].
    ///
    /// # Panics
    ///
    /// Panics if `weights` has the wrong length or `total` is below the
    /// total weight of the transient states.
    pub fn average_weighted(&self, weights: &[u64], total: u64) -> f64 {
        assert_eq!(weights.len(), self.times.len(), "weight length mismatch");
        let mass: u64 = weights.iter().sum();
        assert!(total >= mass, "total below total transient weight");
        self.times
            .iter()
            .zip(weights)
            .map(|(t, &w)| t * w as f64)
            .sum::<f64>()
            / total as f64
    }

    /// All transient expected times.
    pub fn as_slice(&self) -> &[f64] {
        &self.times
    }
}

impl<S: LocalState> AbsorbingChain<S> {
    /// Solves `(I − Q) x = b` by the size-appropriate solver: dense
    /// Gaussian elimination below [`DENSE_LIMIT`], budget-probed
    /// Gauss–Seidel above it. One entry probe of the `solver` stage covers
    /// the dense path (whose runtime is bounded by the limit).
    fn solve_fundamental(&self, b: Vec<f64>, budget: &Budget) -> Result<Vec<f64>, MarkovError> {
        let n = self.n_transient();
        debug_assert_eq!(b.len(), n);
        budget.probe("solver", 0, 0)?;
        if n <= DENSE_LIMIT {
            let mut a = vec![vec![0.0; n]; n];
            for (i, row) in a.iter_mut().enumerate() {
                row[i] = 1.0;
                for (j, q) in self.q().row_iter(i) {
                    row[j as usize] -= q;
                }
            }
            linalg::solve_dense(a, b)
        } else {
            linalg::gauss_seidel_budgeted(self.q(), &b, TOL, 1_000_000, budget)
        }
    }

    /// Solves `(I − Q) t = 1` for the expected stabilization times.
    ///
    /// # Errors
    ///
    /// [`MarkovError::NotAbsorbing`] if some configuration cannot reach
    /// `L` (infinite expected time); solver errors otherwise.
    pub fn expected_steps(&self) -> Result<HittingTimes, MarkovError> {
        self.expected_steps_with(&Budget::unlimited())
    }

    /// [`AbsorbingChain::expected_steps`] under a cooperative [`Budget`]:
    /// the iterative solver probes the `solver` stage each sweep, so an
    /// exhausted wall-clock budget surfaces as
    /// [`MarkovError::Core`]`(BudgetExhausted)` instead of iterating to
    /// the sweep cap.
    ///
    /// # Errors
    ///
    /// As [`AbsorbingChain::expected_steps`], plus the budget error above.
    pub fn expected_steps_with(&self, budget: &Budget) -> Result<HittingTimes, MarkovError> {
        self.almost_surely_absorbing()?;
        let n = self.n_transient();
        if n == 0 {
            return Ok(HittingTimes { times: Vec::new() });
        }
        let times = self.solve_fundamental(vec![1.0; n], budget)?;
        Ok(HittingTimes { times })
    }

    /// The expected stabilization time from a specific configuration
    /// (0 when legitimate).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` was not explored (possible in reachable mode) —
    /// its expected time is unknown, not 0; probe with
    /// [`AbsorbingChain::is_explored`] first.
    pub fn expected_from(&self, times: &HittingTimes, cfg: &Configuration<S>) -> f64 {
        match self.transient_index(cfg) {
            None => {
                assert!(
                    self.is_explored(cfg),
                    "configuration {cfg:?} was not explored; its expected time is unknown"
                );
                0.0
            }
            Some(i) => times.of_transient(i),
        }
    }

    /// Solves the reward equation `(I − Q) x = r` for an arbitrary
    /// per-step reward vector `r` over the transient states: `x(γ)` is the
    /// expected accumulated reward before absorption.
    ///
    /// # Errors
    ///
    /// [`MarkovError::NotAbsorbing`] when absorption is not almost sure;
    /// solver errors otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `reward` has the wrong length.
    pub fn expected_reward(&self, reward: &[f64]) -> Result<HittingTimes, MarkovError> {
        assert_eq!(reward.len(), self.n_transient(), "reward length mismatch");
        self.almost_surely_absorbing()?;
        if self.n_transient() == 0 {
            return Ok(HittingTimes { times: Vec::new() });
        }
        let times = self.solve_fundamental(reward.to_vec(), &Budget::unlimited())?;
        Ok(HittingTimes { times })
    }

    /// Exact expected number of process activations (*moves*) before
    /// stabilization: the reward solve with the per-step expected
    /// activation sizes. Under the central daemon this equals
    /// [`AbsorbingChain::expected_steps`]; under the synchronous daemon it
    /// counts total work.
    ///
    /// # Errors
    ///
    /// As for [`AbsorbingChain::expected_reward`].
    pub fn expected_moves(&self) -> Result<HittingTimes, MarkovError> {
        self.expected_reward(self.step_moves())
    }

    /// Absorption probabilities per transient state, `a = (I − Q)⁻¹ r`
    /// with `r` the one-step absorption vector. For probabilistically
    /// self-stabilizing systems this is the all-ones vector — a numeric
    /// re-verification of Theorems 8–9.
    ///
    /// # Errors
    ///
    /// Solver errors only; this does not require almost-sure absorption.
    pub fn absorption_probabilities(&self) -> Result<Vec<f64>, MarkovError> {
        self.absorption_probabilities_with(&Budget::unlimited())
    }

    /// [`AbsorbingChain::absorption_probabilities`] under a cooperative
    /// [`Budget`] (`solver`-stage probes, as
    /// [`AbsorbingChain::expected_steps_with`]).
    ///
    /// # Errors
    ///
    /// Solver errors, plus [`MarkovError::Core`]`(BudgetExhausted)` when a
    /// probe trips.
    pub fn absorption_probabilities_with(&self, budget: &Budget) -> Result<Vec<f64>, MarkovError> {
        if self.n_transient() == 0 {
            return Ok(Vec::new());
        }
        self.solve_fundamental(self.absorb().to_vec(), budget)
    }

    /// The CDF of the stabilization time from the uniform initial
    /// distribution over the *represented* configurations:
    /// `cdf[k] = P(stabilized within k steps)`, for `k = 0..=horizon`.
    ///
    /// On a full-sweep chain the represented set is the whole space (the
    /// PR 1 semantics); on a quotient chain every transient state carries
    /// its orbit's mass, so the CDF equals the full-space CDF exactly; on
    /// a reachable-mode chain the distribution is uniform over the
    /// explored (reached) configurations.
    pub fn hitting_cdf_uniform(&self, horizon: usize) -> Vec<f64> {
        let n = self.n_transient();
        let total = self.represented_configs() as f64;
        // Initially the legitimate mass is already absorbed; transient
        // state i starts with the mass of its whole orbit.
        let transient_mass: u64 = self.transient_orbits().iter().sum();
        let mut absorbed = (total - transient_mass as f64) / total;
        let mut mass: Vec<f64> = self
            .transient_orbits()
            .iter()
            .map(|&o| o as f64 / total)
            .collect();
        let mut cdf = Vec::with_capacity(horizon + 1);
        cdf.push(absorbed);
        for _ in 0..horizon {
            let mut next = vec![0.0; n];
            for (i, &m) in mass.iter().enumerate() {
                if m == 0.0 {
                    continue;
                }
                absorbed += m * self.absorb()[i];
                for (j, q) in self.q().row_iter(i) {
                    next[j as usize] += m * q;
                }
            }
            mass = next;
            cdf.push(absorbed);
        }
        cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stab_algorithms::{DijkstraRing, HermanRing, TokenCirculation, TwoProcessToggle};
    use stab_core::{Daemon, ProjectedLegitimacy, Transformed};
    use stab_graph::builders;

    /// Trans(Algorithm 3) under the synchronous daemon, solved by hand on
    /// the projection chain: from (F,F) both processes toss, giving (T,T)
    /// with ¼ (absorbed), a half-raised state with ½, and (F,F) again with
    /// ¼; from a half-raised state only one process is enabled, lowering
    /// with ½ back to (F,F) or staying. The equations
    /// `t_ff = 1 + ½·t_h + ¼·t_ff` and `t_h = 1 + ½·t_h + ½·t_ff`
    /// solve to `t_h = 2 + t_ff`, hence `t_ff = 8` and `t_h = 10`.
    #[test]
    fn transformed_toggle_exact_times() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Synchronous, &spec, 1 << 12).unwrap();
        let times = chain.expected_steps().unwrap();
        // From any coined configuration projecting to (F,F):
        let ff = Transformed::<TwoProcessToggle>::lift(
            &Configuration::from_vec(vec![false, false]),
            false,
        );
        let t = chain.expected_from(&times, &ff);
        assert!((t - 8.0).abs() < 1e-9, "expected 8, got {t}");
        let half = Transformed::<TwoProcessToggle>::lift(
            &Configuration::from_vec(vec![true, false]),
            false,
        );
        let th = chain.expected_from(&times, &half);
        assert!((th - 10.0).abs() < 1e-9, "expected 10, got {th}");
    }

    /// Theorems 8–9 numerically: absorption probability 1 under the
    /// synchronous and the distributed randomized scheduler. The *central*
    /// randomized scheduler is deliberately excluded — and asserted to
    /// fail — because Algorithm 3 needs a simultaneous move, which no
    /// central scheduler (randomized or not) can provide. This is exactly
    /// why the paper's transformer keeps synchronous steps possible.
    #[test]
    fn absorption_probabilities_are_one_for_transformed_systems() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        for daemon in [Daemon::Synchronous, Daemon::Distributed] {
            let chain = AbsorbingChain::build(&a, daemon, &spec, 1 << 12).unwrap();
            let probs = chain.absorption_probabilities().unwrap();
            for (i, p) in probs.iter().enumerate() {
                assert!(
                    (p - 1.0).abs() < 1e-9,
                    "absorption {p} from {} under {daemon}",
                    chain.render(i)
                );
            }
        }
        let central = AbsorbingChain::build(&a, Daemon::Central, &spec, 1 << 12).unwrap();
        let probs = central.absorption_probabilities().unwrap();
        assert!(
            probs.iter().any(|p| *p < 1e-9),
            "the central scheduler cannot converge Algorithm 3, even transformed"
        );
    }

    #[test]
    fn herman3_expected_times_are_finite_and_positive() {
        let a = HermanRing::on_ring(&builders::ring(3)).unwrap();
        let chain =
            AbsorbingChain::build(&a, Daemon::Synchronous, &a.legitimacy(), 1 << 12).unwrap();
        let times = chain.expected_steps().unwrap();
        // The two transient states are the uniform configurations, where
        // all three tokens coexist; each process flips a fair coin, and the
        // step absorbs unless the outcome is uniform again (prob 2/8):
        // t = 1 + (2/8)·t  =>  t = 4/3.
        for i in 0..chain.n_transient() {
            let t = times.of_transient(i);
            assert!((t - 4.0 / 3.0).abs() < 1e-9, "expected 4/3, got {t}");
        }
    }

    #[test]
    fn dijkstra_central_times_match_dense_and_sparse() {
        let a = DijkstraRing::on_ring(&builders::ring(4)).unwrap();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 20).unwrap();
        let times = chain.expected_steps().unwrap();
        // Cross-validate dense against Gauss–Seidel on the same rows.
        let n = chain.n_transient();
        let gs = linalg::gauss_seidel(chain.q(), &vec![1.0; n], 1e-12, 1_000_000).unwrap();
        for (i, g) in gs.iter().enumerate() {
            assert!((times.of_transient(i) - g).abs() < 1e-7);
        }
        assert!(times.worst_case() > 0.0);
        assert!(times.average_uniform(chain.n_configs()) <= times.worst_case());
    }

    #[test]
    fn token_ring_transformed_times_decrease_toward_legitimacy() {
        let base = TokenCirculation::on_ring(&builders::ring(3)).unwrap();
        let spec = ProjectedLegitimacy::new(base.legitimacy());
        let a = Transformed::new(TokenCirculation::on_ring(&builders::ring(3)).unwrap());
        let chain = AbsorbingChain::build(&a, Daemon::Distributed, &spec, 1 << 20).unwrap();
        let times = chain.expected_steps().unwrap();
        assert!(times.worst_case().is_finite());
        assert!(times.worst_case() > 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_approaches_one() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Synchronous, &spec, 1 << 12).unwrap();
        let cdf = chain.hitting_cdf_uniform(200);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "CDF must be monotone");
        }
        assert!(
            cdf[0] > 0.0,
            "legitimate initial mass is absorbed at time 0"
        );
        assert!(
            (cdf.last().unwrap() - 1.0).abs() < 1e-6,
            "mass absorbs eventually"
        );
    }

    #[test]
    fn budgeted_solves_degrade_or_match_unlimited() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Synchronous, &spec, 1 << 12).unwrap();
        let expired = Budget::unlimited().with_wall_time(std::time::Duration::ZERO);
        assert!(matches!(
            chain.expected_steps_with(&expired),
            Err(MarkovError::Core(stab_core::CoreError::BudgetExhausted {
                stage: "solver",
                ..
            }))
        ));
        assert!(matches!(
            chain.absorption_probabilities_with(&expired),
            Err(MarkovError::Core(_))
        ));
        // Unlimited budgets reproduce the plain results exactly.
        let plain = chain.expected_steps().unwrap();
        let budgeted = chain.expected_steps_with(&Budget::unlimited()).unwrap();
        assert_eq!(plain.as_slice(), budgeted.as_slice());
    }

    #[test]
    fn non_absorbing_chain_reports_error() {
        let a = TwoProcessToggle::new();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 12).unwrap();
        assert!(matches!(
            chain.expected_steps(),
            Err(MarkovError::NotAbsorbing { .. })
        ));
    }

    #[test]
    fn expected_moves_equal_steps_under_central_daemon() {
        // Central daemon: exactly one move per step, so the two solves
        // coincide state by state.
        let a = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 20).unwrap();
        let steps = chain.expected_steps().unwrap();
        let moves = chain.expected_moves().unwrap();
        for i in 0..chain.n_transient() {
            assert!((steps.of_transient(i) - moves.of_transient(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_moves_exceed_steps_under_synchronous_daemon() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Synchronous, &spec, 1 << 12).unwrap();
        let steps = chain.expected_steps().unwrap();
        let moves = chain.expected_moves().unwrap();
        for i in 0..chain.n_transient() {
            assert!(moves.of_transient(i) >= steps.of_transient(i) - 1e-9);
        }
        assert!(moves.worst_case() > steps.worst_case());
    }

    #[test]
    fn unit_reward_recovers_expected_steps() {
        let a = HermanRing::on_ring(&builders::ring(5)).unwrap();
        let chain =
            AbsorbingChain::build(&a, Daemon::Synchronous, &a.legitimacy(), 1 << 12).unwrap();
        let steps = chain.expected_steps().unwrap();
        let unit = chain
            .expected_reward(&vec![1.0; chain.n_transient()])
            .unwrap();
        for i in 0..chain.n_transient() {
            assert!((steps.of_transient(i) - unit.of_transient(i)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "reward length mismatch")]
    fn reward_length_checked() {
        let a = TwoProcessToggle::new();
        let chain =
            AbsorbingChain::build(&a, Daemon::Distributed, &a.legitimacy(), 1 << 12).unwrap();
        let _ = chain.expected_reward(&[1.0]);
    }

    #[test]
    fn worst_index_points_at_worst_case() {
        let a = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 20).unwrap();
        let times = chain.expected_steps().unwrap();
        let worst = times.worst_index().unwrap();
        assert!((times.of_transient(worst) - times.worst_case()).abs() < 1e-12);
    }
}
