//! Exact quantitative analysis of stabilizing systems: the "quantitative
//! study of weak-stabilization, evaluating the expected stabilization time
//! of transformed algorithms" that the paper's conclusion lists as future
//! work.
//!
//! Under a **randomized scheduler** (Definition 6) a finite system is a
//! Markov chain over its configurations. Lumping the legitimate set `L`
//! (closed, by the strong closure property) into one absorbing state yields
//! an absorbing chain whose fundamental-matrix equation
//!
//! ```text
//! (I − Q) t = 1
//! ```
//!
//! gives the exact expected stabilization time `t(γ)` from every
//! configuration `γ`. This crate builds the chain ([`AbsorbingChain`]),
//! solves the equation by dense Gaussian elimination or sparse Gauss–Seidel
//! ([`linalg`]), verifies almost-sure absorption (Theorems 7–9), and
//! computes hitting-time distributions.
//!
//! [`AbsorbingChain::build_with`] additionally builds the chain over the
//! engine's rotation quotient (the exact lumping by rotation orbits —
//! per-state times match the full space, and
//! [`HittingTimes::average_weighted`] recovers uniform-initial averages
//! from orbit weights) or over the reachable set of a designated initial
//! set only.
//!
//! # Example: expected stabilization time of `Trans(Algorithm 3)`
//!
//! ```
//! use stab_algorithms::TwoProcessToggle;
//! use stab_core::{Daemon, Transformed, ProjectedLegitimacy};
//! use stab_markov::AbsorbingChain;
//!
//! let alg = Transformed::new(TwoProcessToggle::new());
//! let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
//! // Theorem 8: under the synchronous scheduler the transformed system is
//! // probabilistically self-stabilizing — with finite expected time.
//! let chain = AbsorbingChain::build(&alg, Daemon::Synchronous, &spec, 1 << 20).unwrap();
//! let times = chain.expected_steps().unwrap();
//! assert!(times.worst_case() > 0.0);
//! assert!(times.worst_case().is_finite());
//! ```

pub mod chain;
pub mod error;
pub mod hitting;
pub mod linalg;
pub mod qstore;

pub use chain::AbsorbingChain;
pub use error::MarkovError;
pub use hitting::HittingTimes;
pub use qstore::{CompressedQ, QMatrix, QRows, QStorage};
