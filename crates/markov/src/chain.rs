//! Building the absorbing Markov chain of a stabilizing system under a
//! randomized scheduler.
//!
//! Since PR 1 the underlying exploration is the shared CSR engine
//! (`stab_core::engine::TransitionSystem`): every edge already carries its
//! Definition 6 probability, so the `Q` rows are read straight off the
//! engine output instead of re-running the step semantics with a decode +
//! encode per successor, and the almost-sure-absorption check is a
//! backward closure over the engine's precomputed reverse CSR.

use std::sync::OnceLock;

use stab_core::engine::{BitSet, Csr, TransitionSystem};
use stab_core::{Algorithm, Configuration, Daemon, Legitimacy, LocalState, SpaceIndexer};

use crate::error::MarkovError;

/// The sparse transient-to-transient matrix `Q` in CSR form: row `i` holds
/// `(j, Q_ij)` entries sorted by `j`.
pub type QMatrix = Csr<(u32, f64)>;

/// The absorbing chain: transient states are the illegitimate
/// configurations, the legitimate set `L` is lumped into one absorbing
/// state (sound because `L` is closed under the strong closure property).
///
/// Transition probabilities implement Definition 6: the scheduler draws an
/// activation *uniformly* among those the daemon allows, then the activated
/// processes' outcome distributions multiply.
#[derive(Debug)]
pub struct AbsorbingChain<S> {
    indexer: SpaceIndexer<S>,
    daemon: Daemon,
    /// Transient-state index per configuration id (`u32::MAX` = legitimate).
    transient_of: Vec<u32>,
    /// Configuration id per transient index.
    config_of: Vec<u64>,
    /// Sparse `Q` rows over transient indices, CSR-packed.
    q: QMatrix,
    /// One-step absorption probability per transient state.
    absorb: Vec<f64>,
    /// Expected number of process activations in one step from each
    /// transient state (the *moves* reward of the quantitative study).
    step_moves: Vec<f64>,
    /// Whether every transient state reaches absorption with probability 1:
    /// `Ok(())` or the first offending transient index. Computed lazily on
    /// the first [`AbsorbingChain::almost_surely_absorbing`] call by a
    /// backward closure over the inverted `Q` CSR.
    absorbing: OnceLock<Result<(), u32>>,
}

impl<S: LocalState> AbsorbingChain<S> {
    /// Builds the chain for `alg` under the randomized form of `daemon`,
    /// over the full configuration space.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`MarkovError::Core`]).
    pub fn build<A, L>(alg: &A, daemon: Daemon, spec: &L, cap: u64) -> Result<Self, MarkovError>
    where
        A: Algorithm<State = S> + Sync,
        L: Legitimacy<S> + Sync,
        S: Sync,
    {
        let indexer = SpaceIndexer::new(alg, cap)?;
        let ts = TransitionSystem::explore(alg, &indexer, daemon, spec)?;
        Ok(Self::from_transition_system(indexer, daemon, &ts))
    }

    /// Builds the chain from an already-explored transition system (the
    /// checker and the Markov study can share one exploration).
    pub fn from_transition_system(
        indexer: SpaceIndexer<S>,
        daemon: Daemon,
        ts: &TransitionSystem,
    ) -> Self {
        let total = ts.n_configs();
        let mut transient_of = vec![u32::MAX; total as usize];
        let mut config_of = Vec::new();
        for id in 0..total {
            if !ts.is_legit(id) {
                transient_of[id as usize] = config_of.len() as u32;
                config_of.push(id as u64);
            }
        }
        let n = config_of.len();
        let mut counts: Vec<u32> = Vec::with_capacity(n);
        let mut entries: Vec<(u32, f64)> = Vec::new();
        let mut absorb = Vec::with_capacity(n);
        let mut step_moves = Vec::with_capacity(n);
        let mut row: Vec<(u32, f64)> = Vec::new();
        for &id in &config_of {
            let edges = ts.edges(id as u32);
            if edges.is_empty() {
                // Terminal illegitimate configuration: stays put forever.
                counts.push(1);
                entries.push((transient_of[id as usize], 1.0));
                absorb.push(0.0);
                step_moves.push(0.0);
                continue;
            }
            row.clear();
            let mut absorbed = 0.0;
            let mut moves = 0.0;
            for e in edges {
                moves += e.prob * e.movers.count_ones() as f64;
                let t = transient_of[e.to as usize];
                if t == u32::MAX {
                    absorbed += e.prob;
                } else {
                    // Engine rows are sorted by successor, so equal
                    // targets (reached by different activations) are
                    // consecutive.
                    match row.last_mut() {
                        Some(last) if last.0 == t => last.1 += e.prob,
                        _ => row.push((t, e.prob)),
                    }
                }
            }
            counts.push(row.len() as u32);
            entries.extend_from_slice(&row);
            absorb.push(absorbed);
            step_moves.push(moves);
        }
        let q = QMatrix::from_counts(&counts, entries);
        AbsorbingChain {
            indexer,
            daemon,
            transient_of,
            config_of,
            q,
            absorb,
            step_moves,
            absorbing: OnceLock::new(),
        }
    }

    /// Number of transient (illegitimate) states.
    pub fn n_transient(&self) -> usize {
        self.config_of.len()
    }

    /// Total number of configurations (transient + legitimate).
    pub fn n_configs(&self) -> u64 {
        self.indexer.total()
    }

    /// The daemon the chain was built under.
    pub fn daemon(&self) -> Daemon {
        self.daemon
    }

    /// The sparse `Q` matrix (transient-to-transient probabilities).
    pub fn q(&self) -> &QMatrix {
        &self.q
    }

    /// One-step absorption probabilities.
    pub fn absorb(&self) -> &[f64] {
        &self.absorb
    }

    /// Expected process activations per step, per transient state
    /// (the reward vector of [`AbsorbingChain::expected_moves`]).
    pub fn step_moves(&self) -> &[f64] {
        &self.step_moves
    }

    /// The transient index of `cfg`, or `None` if it is legitimate.
    pub fn transient_index(&self, cfg: &Configuration<S>) -> Option<usize> {
        let t = self.transient_of[self.indexer.encode(cfg) as usize];
        (t != u32::MAX).then_some(t as usize)
    }

    /// Renders the configuration behind a transient index.
    pub fn render(&self, transient: usize) -> String {
        format!("{:?}", self.indexer.decode(self.config_of[transient]))
    }

    /// Verifies row stochasticity: every transient row plus its absorption
    /// mass sums to 1 (within `1e-9`).
    pub fn validate_stochastic(&self) -> bool {
        self.q.rows().zip(&self.absorb).all(|(row, a)| {
            let total: f64 = row.iter().map(|(_, p)| p).sum::<f64>() + a;
            (total - 1.0).abs() < 1e-9
        })
    }

    /// Whether every transient state reaches absorption with probability 1
    /// (backward closure of the absorbing state over the inverted `Q`
    /// CSR; every stored edge has positive probability) — the
    /// precondition for finite expected hitting times. Computed once,
    /// lazily; builds that never ask never pay for it.
    pub fn almost_surely_absorbing(&self) -> Result<(), MarkovError> {
        let outcome = self.absorbing.get_or_init(|| {
            let n = self.n_transient();
            let reverse = self.q.invert(|&(j, _)| j);
            let mut can = BitSet::new(n);
            let mut stack: Vec<u32> = Vec::new();
            for (i, &a) in self.absorb.iter().enumerate() {
                if a > 0.0 {
                    can.insert(i);
                    stack.push(i as u32);
                }
            }
            while let Some(i) = stack.pop() {
                for &p in reverse.row(i as usize) {
                    if !can.get(p as usize) {
                        can.insert(p as usize);
                        stack.push(p);
                    }
                }
            }
            match (0..n).find(|&i| !can.get(i)) {
                None => Ok(()),
                Some(t) => Err(t as u32),
            }
        });
        match *outcome {
            Ok(()) => Ok(()),
            Err(t) => Err(MarkovError::NotAbsorbing {
                config: self.render(t as usize),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stab_algorithms::{HermanRing, TokenCirculation, TwoProcessToggle};
    use stab_core::{ProjectedLegitimacy, Transformed};
    use stab_graph::builders;

    #[test]
    fn toggle_under_distributed_daemon() {
        let a = TwoProcessToggle::new();
        let chain =
            AbsorbingChain::build(&a, Daemon::Distributed, &a.legitimacy(), 1 << 12).unwrap();
        assert_eq!(chain.n_configs(), 4);
        assert_eq!(chain.n_transient(), 3);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
        // From (F,F): 3 equiprobable activations; only {P0,P1} absorbs.
        let ff = chain
            .transient_index(&Configuration::from_vec(vec![false, false]))
            .unwrap();
        assert!((chain.absorb()[ff] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn toggle_under_central_daemon_is_not_absorbing() {
        let a = TwoProcessToggle::new();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 12).unwrap();
        assert!(matches!(
            chain.almost_surely_absorbing(),
            Err(MarkovError::NotAbsorbing { .. })
        ));
    }

    #[test]
    fn transformed_toggle_under_synchronous_is_absorbing() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Synchronous, &spec, 1 << 12).unwrap();
        // 16 coined configurations, 4 of which project to (T,T).
        assert_eq!(chain.n_configs(), 16);
        assert_eq!(chain.n_transient(), 12);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok(), "Theorem 8");
    }

    #[test]
    fn herman_synchronous_chain() {
        let a = HermanRing::on_ring(&builders::ring(3)).unwrap();
        let chain =
            AbsorbingChain::build(&a, Daemon::Synchronous, &a.legitimacy(), 1 << 12).unwrap();
        assert_eq!(chain.n_configs(), 8);
        // Legitimate: exactly one token = 6 configurations (3 positions × 2
        // bit patterns each); transient: the two uniform configurations.
        assert_eq!(chain.n_transient(), 2);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
    }

    #[test]
    fn token_ring_under_central_daemon() {
        let a = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 20).unwrap();
        assert_eq!(chain.n_configs(), 81); // m=3, N=4
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
        // Legitimate configurations are not transient.
        let legit = a.legitimate_config(stab_graph::NodeId::new(0));
        assert!(chain.transient_index(&legit).is_none());
    }

    #[test]
    fn q_rows_are_sorted_and_positive() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Distributed, &spec, 1 << 12).unwrap();
        for row in chain.q().rows() {
            for w in row.windows(2) {
                assert!(w[0].0 < w[1].0, "strictly ascending column indices");
            }
            assert!(row.iter().all(|&(_, p)| p > 0.0));
        }
    }
}
