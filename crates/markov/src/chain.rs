//! Building the absorbing Markov chain of a stabilizing system under a
//! randomized scheduler.
//!
//! Since PR 1 the underlying exploration is the shared CSR engine
//! (`stab_core::engine::TransitionSystem`): every edge already carries its
//! Definition 6 probability, so the `Q` rows are read straight off the
//! engine output instead of re-running the step semantics with a decode +
//! encode per successor, and the almost-sure-absorption check is a
//! backward closure over the engine's precomputed reverse CSR.
//!
//! [`AbsorbingChain::build_with`] accepts the engine's exploration options:
//! over a **symmetry quotient** (ring rotations, ring dihedral, or leaf
//! permutations on stars and trees), the chain runs on one representative
//! per group orbit with folded edges summing their probabilities, so
//! per-state hitting times, absorption probabilities and CDFs coincide
//! with the full space (orbit weights recover uniform-initial averages);
//! in **reachable mode**, the chain covers exactly the configurations
//! reachable from the designated initial set.

use std::collections::HashMap;
use std::sync::OnceLock;

use stab_core::engine::ids;
use stab_core::engine::{
    BitSet, EdgeStoreKind, ExploreOptions, GroupCanonicalizer, TransitionSystem,
};
use stab_core::{Algorithm, Configuration, DaemonSpec, Legitimacy, LocalState, SpaceIndexer};

use crate::error::MarkovError;
use crate::qstore::{QStorage, QStorageBuilder};

/// The flat sparse transient-to-transient matrix `Q` in CSR form: row `i`
/// holds `(j, Q_ij)` entries sorted by `j` (re-exported from
/// [`crate::qstore`]; the chain itself holds a tier-selected
/// [`QStorage`]).
pub use crate::qstore::QMatrix;

/// The absorbing chain: transient states are the illegitimate
/// configurations, the legitimate set `L` is lumped into one absorbing
/// state (sound because `L` is closed under the strong closure property).
///
/// Transition probabilities implement Definition 6: the scheduler draws an
/// activation *uniformly* among those the daemon allows, then the activated
/// processes' outcome distributions multiply.
#[derive(Debug)]
pub struct AbsorbingChain<S> {
    indexer: SpaceIndexer<S>,
    daemon: DaemonSpec,
    /// Transient-state index per *explored* configuration id
    /// (`u32::MAX` = legitimate).
    transient_of: Vec<u32>,
    /// Full-space mixed-radix index per transient index.
    full_of: Vec<u64>,
    /// Concrete configurations per transient state (rotation-orbit sizes
    /// in a quotient chain, all 1 otherwise).
    orbit_of: Vec<u64>,
    /// Full index → explored id, for non-dense explorations.
    ids: IdMap,
    /// Canonicalizer of a quotient chain.
    canon: Option<GroupCanonicalizer>,
    /// Number of explored configurations (transient + legitimate).
    n_explored: u32,
    /// Concrete configurations represented by the explored ids.
    represented: u64,
    /// Sparse `Q` rows over transient indices, stored in the tier
    /// matching the exploration's edge store.
    q: QStorage,
    /// One-step absorption probability per transient state.
    absorb: Vec<f64>,
    /// Expected number of process activations in one step from each
    /// transient state (the *moves* reward of the quantitative study).
    step_moves: Vec<f64>,
    /// Whether every transient state reaches absorption with probability 1:
    /// `Ok(())` or the first offending transient index. Computed lazily on
    /// the first [`AbsorbingChain::almost_surely_absorbing`] call by a
    /// backward closure over the inverted `Q` CSR.
    absorbing: OnceLock<Result<(), u32>>,
}

/// Full-space index → explored id.
#[derive(Debug)]
enum IdMap {
    /// Explored id == full index (dense full sweep).
    Dense,
    /// Hash lookup (quotient or reachable exploration).
    Interned(HashMap<u64, u32>),
}

impl<S: LocalState> AbsorbingChain<S> {
    /// Builds the chain for `alg` under the randomized form of `daemon`,
    /// over the full configuration space.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`MarkovError::Core`]).
    pub fn build<A, L>(
        alg: &A,
        daemon: impl Into<DaemonSpec>,
        spec: &L,
        cap: u64,
    ) -> Result<Self, MarkovError>
    where
        A: Algorithm<State = S> + Sync,
        L: Legitimacy<S> + Sync,
        S: Sync,
    {
        Self::build_with(alg, daemon, spec, cap, &ExploreOptions::full())
    }

    /// Builds the chain with an explicit traversal mode / quotient (see
    /// [`stab_core::engine::ExploreOptions`] and the module docs).
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`MarkovError::Core`]), including
    /// quotient validation failures.
    ///
    /// ```
    /// use stab_algorithms::HermanRing;
    /// use stab_core::engine::ExploreOptions;
    /// use stab_core::Daemon;
    /// use stab_graph::builders;
    /// use stab_markov::AbsorbingChain;
    ///
    /// let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    /// let spec = alg.legitimacy();
    /// let opts = ExploreOptions::full().with_ring_quotient();
    /// let quotient =
    ///     AbsorbingChain::build_with(&alg, Daemon::Synchronous, &spec, 1 << 20, &opts).unwrap();
    /// // The lumped chain is exactly stochastic and absorbs almost surely.
    /// assert!(quotient.validate_stochastic());
    /// assert!(quotient.almost_surely_absorbing().is_ok());
    /// // 8 necklaces represent all 32 configurations of the 5-ring.
    /// assert_eq!(quotient.n_explored(), 8);
    /// assert_eq!(quotient.represented_configs(), 32);
    /// ```
    pub fn build_with<A, L>(
        alg: &A,
        daemon: impl Into<DaemonSpec>,
        spec: &L,
        cap: u64,
        opts: &ExploreOptions<S>,
    ) -> Result<Self, MarkovError>
    where
        A: Algorithm<State = S> + Sync,
        L: Legitimacy<S> + Sync,
        S: Sync,
    {
        let daemon = daemon.into();
        let indexer = SpaceIndexer::new(alg, cap)?;
        let ts = TransitionSystem::explore_with(alg, &indexer, daemon, spec, opts)?;
        Ok(Self::from_transition_system(indexer, daemon, &ts))
    }

    /// Builds the chain from an already-explored transition system — the
    /// sharing constructor of the facade's `Study` pipeline: the checker
    /// (via `ExploredSpace::from_transition_system`) and this chain read
    /// one exploration instead of each paying for their own. The system
    /// is only *borrowed*: every lookup structure the chain needs is
    /// copied out, so the caller can hand the system on to the checker
    /// afterwards.
    pub fn from_transition_system(
        indexer: SpaceIndexer<S>,
        daemon: impl Into<DaemonSpec>,
        ts: &TransitionSystem,
    ) -> Self {
        let daemon = daemon.into();
        let total = ts.n_configs();
        let dense = ts.traversal() == stab_core::engine::TraversalMode::Full
            && ts.quotient() == stab_core::engine::Quotient::None;
        let mut transient_of = vec![u32::MAX; total as usize];
        let mut full_of = Vec::new();
        let mut orbit_of = Vec::new();
        // The chain must outlive the transition system (`build_with` drops
        // it immediately after this call), so non-dense id lookup state is
        // copied out of `ts` rather than borrowed.
        let mut ids = if dense {
            IdMap::Dense
        } else {
            IdMap::Interned(HashMap::with_capacity(total as usize))
        };
        for id in 0..total {
            if let IdMap::Interned(map) = &mut ids {
                map.insert(ts.full_index_of(id), id);
            }
            if !ts.is_legit(id) {
                transient_of[id as usize] = ids::id_u32(full_of.len(), "transient ids fit u32");
                full_of.push(ts.full_index_of(id));
                orbit_of.push(ts.orbit_size(id));
            }
        }
        let n = full_of.len();
        // The Q store mirrors the exploration's edge-store tier, so a
        // compressed run keeps its memory profile through the chain.
        let mut builder = QStorageBuilder::new(ts.edge_store_kind());
        let mut absorb = Vec::with_capacity(n);
        let mut step_moves = Vec::with_capacity(n);
        let mut row: Vec<(u32, f64)> = Vec::new();
        for id in 0..total {
            if ts.is_legit(id) {
                continue;
            }
            if ts.edge_row_is_empty(id) {
                // Terminal illegitimate configuration: stays put forever.
                builder.push_row(&[(transient_of[id as usize], 1.0)]);
                absorb.push(0.0);
                step_moves.push(0.0);
                continue;
            }
            row.clear();
            let mut absorbed = 0.0;
            let mut moves = 0.0;
            for e in ts.edge_iter(id) {
                moves += e.prob * e.movers.count_ones() as f64;
                let t = transient_of[e.to as usize];
                if t == u32::MAX {
                    absorbed += e.prob;
                } else {
                    // Engine rows are sorted by successor, so equal
                    // targets (reached by different activations) are
                    // consecutive.
                    match row.last_mut() {
                        Some(last) if last.0 == t => last.1 += e.prob,
                        _ => row.push((t, e.prob)),
                    }
                }
            }
            builder.push_row(&row);
            absorb.push(absorbed);
            step_moves.push(moves);
        }
        let q = builder.finish();
        AbsorbingChain {
            indexer,
            daemon,
            transient_of,
            full_of,
            orbit_of,
            ids,
            canon: ts.canonicalizer().cloned(),
            n_explored: total,
            represented: ts.represented_configs(),
            q,
            absorb,
            step_moves,
            absorbing: OnceLock::new(),
        }
    }

    /// Number of transient (illegitimate) states.
    pub fn n_transient(&self) -> usize {
        self.full_of.len()
    }

    /// Size of the *full* configuration space the indexer spans (not the
    /// explored count — see [`AbsorbingChain::n_explored`] and
    /// [`AbsorbingChain::represented_configs`], which differ from this in
    /// quotient and reachable modes).
    pub fn n_configs(&self) -> u64 {
        self.indexer.total()
    }

    /// Number of explored states (transient + legitimate): orbit
    /// representatives in a quotient chain, reached configurations in a
    /// reachable-mode chain.
    pub fn n_explored(&self) -> u32 {
        self.n_explored
    }

    /// Concrete configurations represented by the explored states (the sum
    /// of orbit sizes).
    pub fn represented_configs(&self) -> u64 {
        self.represented
    }

    /// Concrete configurations per transient state: rotation-orbit sizes
    /// in a quotient chain, all 1 otherwise. Use as weights when averaging
    /// per-state quantities over a uniformly random concrete
    /// configuration.
    pub fn transient_orbits(&self) -> &[u64] {
        &self.orbit_of
    }

    /// The lattice point the chain was built under.
    pub fn daemon(&self) -> DaemonSpec {
        self.daemon
    }

    /// The sparse `Q` store (transient-to-transient probabilities), in
    /// whichever tier the exploration selected. Iterate rows with
    /// [`QStorage::row_iter`]; the solvers accept it directly through the
    /// [`crate::qstore::QRows`] trait.
    pub fn q(&self) -> &QStorage {
        &self.q
    }

    /// One-step absorption probabilities.
    pub fn absorb(&self) -> &[f64] {
        &self.absorb
    }

    /// Expected process activations per step, per transient state
    /// (the reward vector of [`AbsorbingChain::expected_moves`]).
    pub fn step_moves(&self) -> &[f64] {
        &self.step_moves
    }

    /// The explored id behind `cfg` (canonicalized in a quotient chain),
    /// or `None` when it was not reached (possible in reachable mode).
    fn explored_id(&self, cfg: &Configuration<S>) -> Option<u32> {
        let mut full = self.indexer.encode(cfg);
        if let Some(canon) = &self.canon {
            full = canon.canonical_owned(full);
        }
        match &self.ids {
            // lint: cast-ok(dense id maps only exist when the full space fits u32)
            IdMap::Dense => Some(full as u32),
            IdMap::Interned(map) => map.get(&full).copied(),
        }
    }

    /// Whether `cfg` (canonicalized in a quotient chain) was explored.
    /// Always true outside reachable mode.
    pub fn is_explored(&self, cfg: &Configuration<S>) -> bool {
        self.explored_id(cfg).is_some()
    }

    /// The transient index of `cfg`, or `None` if it is legitimate or (in
    /// reachable mode) was not explored — disambiguate the two with
    /// [`AbsorbingChain::is_explored`]. In a quotient chain, `cfg` is
    /// canonicalized first, so any orbit member resolves to its
    /// representative's transient state.
    pub fn transient_index(&self, cfg: &Configuration<S>) -> Option<usize> {
        let id = self.explored_id(cfg)?;
        let t = self.transient_of[id as usize];
        (t != u32::MAX).then_some(t as usize)
    }

    /// Renders the configuration behind a transient index (the orbit
    /// representative, in a quotient chain).
    pub fn render(&self, transient: usize) -> String {
        format!("{:?}", self.indexer.decode(self.full_of[transient]))
    }

    /// Verifies row stochasticity: every transient row plus its absorption
    /// mass sums to 1 (within `1e-9`).
    pub fn validate_stochastic(&self) -> bool {
        (0..self.q.n_rows()).all(|i| {
            let total: f64 = self.q.row_iter(i).map(|(_, p)| p).sum::<f64>() + self.absorb[i];
            (total - 1.0).abs() < 1e-9
        })
    }

    /// Whether every transient state reaches absorption with probability 1
    /// (backward closure of the absorbing mass; every stored edge has
    /// positive probability) — the precondition for finite expected
    /// hitting times. Computed once, lazily; builds that never ask never
    /// pay for it.
    ///
    /// The in-RAM tiers run a BFS over the inverted `Q` CSR; the disk
    /// tier never materialises the reverse at all — it iterates streaming
    /// forward fixpoint sweeps (mark a row once some successor is
    /// marked), rotating spill chunks through the pinned cache, so the
    /// resident set stays the cache plus one bitset.
    pub fn almost_surely_absorbing(&self) -> Result<(), MarkovError> {
        let outcome = self.absorbing.get_or_init(|| {
            let n = self.n_transient();
            let mut can = BitSet::new(n);
            if self.q.kind() == EdgeStoreKind::Disk {
                for (i, &a) in self.absorb.iter().enumerate() {
                    if a > 0.0 {
                        can.insert(i);
                    }
                }
                loop {
                    let mut changed = false;
                    for i in 0..n {
                        if !can.get(i) && self.q.row_iter(i).any(|(j, _)| can.get(j as usize)) {
                            can.insert(i);
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
            } else {
                let reverse = self.q.invert_targets();
                let mut stack: Vec<u32> = Vec::new();
                for (i, &a) in self.absorb.iter().enumerate() {
                    if a > 0.0 {
                        can.insert(i);
                        // lint: cast-ok(row indices are bounded by the u32 id width)
                        stack.push(i as u32);
                    }
                }
                while let Some(i) = stack.pop() {
                    for &p in reverse.row(i as usize) {
                        if !can.get(p as usize) {
                            can.insert(p as usize);
                            stack.push(p);
                        }
                    }
                }
            }
            match (0..n).find(|&i| !can.get(i)) {
                None => Ok(()),
                // lint: cast-ok(row indices are bounded by the u32 id width)
                Some(t) => Err(t as u32),
            }
        });
        match *outcome {
            Ok(()) => Ok(()),
            Err(t) => Err(MarkovError::NotAbsorbing {
                config: self.render(t as usize),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stab_algorithms::{HermanRing, TokenCirculation, TwoProcessToggle};
    use stab_core::{Daemon, ProjectedLegitimacy, Transformed};
    use stab_graph::builders;

    #[test]
    fn toggle_under_distributed_daemon() {
        let a = TwoProcessToggle::new();
        let chain =
            AbsorbingChain::build(&a, Daemon::Distributed, &a.legitimacy(), 1 << 12).unwrap();
        assert_eq!(chain.n_configs(), 4);
        assert_eq!(chain.n_transient(), 3);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
        // From (F,F): 3 equiprobable activations; only {P0,P1} absorbs.
        let ff = chain
            .transient_index(&Configuration::from_vec(vec![false, false]))
            .unwrap();
        assert!((chain.absorb()[ff] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn toggle_under_central_daemon_is_not_absorbing() {
        let a = TwoProcessToggle::new();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 12).unwrap();
        assert!(matches!(
            chain.almost_surely_absorbing(),
            Err(MarkovError::NotAbsorbing { .. })
        ));
    }

    #[test]
    fn transformed_toggle_under_synchronous_is_absorbing() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Synchronous, &spec, 1 << 12).unwrap();
        // 16 coined configurations, 4 of which project to (T,T).
        assert_eq!(chain.n_configs(), 16);
        assert_eq!(chain.n_transient(), 12);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok(), "Theorem 8");
    }

    #[test]
    fn herman_synchronous_chain() {
        let a = HermanRing::on_ring(&builders::ring(3)).unwrap();
        let chain =
            AbsorbingChain::build(&a, Daemon::Synchronous, &a.legitimacy(), 1 << 12).unwrap();
        assert_eq!(chain.n_configs(), 8);
        // Legitimate: exactly one token = 6 configurations (3 positions × 2
        // bit patterns each); transient: the two uniform configurations.
        assert_eq!(chain.n_transient(), 2);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
    }

    #[test]
    fn token_ring_under_central_daemon() {
        let a = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 20).unwrap();
        assert_eq!(chain.n_configs(), 81); // m=3, N=4
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
        // Legitimate configurations are not transient.
        let legit = a.legitimate_config(stab_graph::NodeId::new(0));
        assert!(chain.transient_index(&legit).is_none());
    }

    #[test]
    fn q_rows_are_sorted_and_positive() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Distributed, &spec, 1 << 12).unwrap();
        for i in 0..chain.q().n_rows() {
            let row = chain.q().row_vec(i);
            for w in row.windows(2) {
                assert!(w[0].0 < w[1].0, "strictly ascending column indices");
            }
            assert!(row.iter().all(|&(_, p)| p > 0.0));
        }
    }
}
