//! Building the absorbing Markov chain of a stabilizing system under a
//! randomized scheduler.

use std::collections::HashMap;

use stab_core::{semantics, Algorithm, Configuration, Daemon, Legitimacy, LocalState, SpaceIndexer};

use crate::error::MarkovError;

/// The absorbing chain: transient states are the illegitimate
/// configurations, the legitimate set `L` is lumped into one absorbing
/// state (sound because `L` is closed under the strong closure property).
///
/// Transition probabilities implement Definition 6: the scheduler draws an
/// activation *uniformly* among those the daemon allows, then the activated
/// processes' outcome distributions multiply.
#[derive(Debug)]
pub struct AbsorbingChain<S> {
    indexer: SpaceIndexer<S>,
    daemon: Daemon,
    /// Transient-state index per configuration id (`u32::MAX` = legitimate).
    transient_of: Vec<u32>,
    /// Configuration id per transient index.
    config_of: Vec<u64>,
    /// Sparse `Q` rows over transient indices.
    rows: Vec<Vec<(u32, f64)>>,
    /// One-step absorption probability per transient state.
    absorb: Vec<f64>,
    /// Expected number of process activations in one step from each
    /// transient state (the *moves* reward of the quantitative study).
    step_moves: Vec<f64>,
}

impl<S: LocalState> AbsorbingChain<S> {
    /// Builds the chain for `alg` under the randomized form of `daemon`,
    /// over the full configuration space.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`MarkovError::Core`]).
    pub fn build<A, L>(
        alg: &A,
        daemon: Daemon,
        spec: &L,
        cap: u64,
    ) -> Result<Self, MarkovError>
    where
        A: Algorithm<State = S>,
        L: Legitimacy<S>,
    {
        let indexer = SpaceIndexer::new(alg, cap)?;
        let total = indexer.total();
        let mut transient_of = vec![u32::MAX; total as usize];
        let mut config_of = Vec::new();
        for id in 0..total {
            let cfg = indexer.decode(id);
            if !spec.is_legitimate(&cfg) {
                transient_of[id as usize] = config_of.len() as u32;
                config_of.push(id);
            }
        }
        let mut rows = Vec::with_capacity(config_of.len());
        let mut absorb = Vec::with_capacity(config_of.len());
        let mut step_moves = Vec::with_capacity(config_of.len());
        for &id in &config_of {
            let cfg = indexer.decode(id);
            let steps = semantics::all_steps(alg, daemon, &cfg)?;
            let mut row: HashMap<u32, f64> = HashMap::new();
            let mut absorbed = 0.0;
            if steps.is_empty() {
                // Terminal illegitimate configuration: stays put forever.
                rows.push(vec![(transient_of[id as usize], 1.0)]);
                absorb.push(0.0);
                step_moves.push(0.0);
                continue;
            }
            let act_prob = 1.0 / steps.len() as f64;
            let mut moves = 0.0;
            for (activation, dist) in steps {
                moves += act_prob * activation.len() as f64;
                for (p, next) in dist {
                    let next_id = indexer.encode(&next);
                    let t = transient_of[next_id as usize];
                    if t == u32::MAX {
                        absorbed += act_prob * p;
                    } else {
                        *row.entry(t).or_insert(0.0) += act_prob * p;
                    }
                }
            }
            let mut row: Vec<(u32, f64)> = row.into_iter().collect();
            row.sort_unstable_by_key(|&(j, _)| j);
            rows.push(row);
            absorb.push(absorbed);
            step_moves.push(moves);
        }
        Ok(AbsorbingChain { indexer, daemon, transient_of, config_of, rows, absorb, step_moves })
    }

    /// Number of transient (illegitimate) states.
    pub fn n_transient(&self) -> usize {
        self.config_of.len()
    }

    /// Total number of configurations (transient + legitimate).
    pub fn n_configs(&self) -> u64 {
        self.indexer.total()
    }

    /// The daemon the chain was built under.
    pub fn daemon(&self) -> Daemon {
        self.daemon
    }

    /// The sparse `Q` rows (transient-to-transient probabilities).
    pub fn rows(&self) -> &[Vec<(u32, f64)>] {
        &self.rows
    }

    /// One-step absorption probabilities.
    pub fn absorb(&self) -> &[f64] {
        &self.absorb
    }

    /// Expected process activations per step, per transient state
    /// (the reward vector of [`AbsorbingChain::expected_moves`]).
    pub fn step_moves(&self) -> &[f64] {
        &self.step_moves
    }

    /// The transient index of `cfg`, or `None` if it is legitimate.
    pub fn transient_index(&self, cfg: &Configuration<S>) -> Option<usize> {
        let t = self.transient_of[self.indexer.encode(cfg) as usize];
        (t != u32::MAX).then_some(t as usize)
    }

    /// Renders the configuration behind a transient index.
    pub fn render(&self, transient: usize) -> String {
        format!("{:?}", self.indexer.decode(self.config_of[transient]))
    }

    /// Verifies row stochasticity: every transient row plus its absorption
    /// mass sums to 1 (within `1e-9`).
    pub fn validate_stochastic(&self) -> bool {
        self.rows.iter().zip(&self.absorb).all(|(row, a)| {
            let total: f64 = row.iter().map(|(_, p)| p).sum::<f64>() + a;
            (total - 1.0).abs() < 1e-9
        })
    }

    /// Whether every transient state reaches absorption with probability 1
    /// (graph reachability towards `L` over positive-probability edges) —
    /// the precondition for finite expected hitting times.
    pub fn almost_surely_absorbing(&self) -> Result<(), MarkovError> {
        let n = self.n_transient();
        // Backward BFS from "absorbing" over reversed positive edges.
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut frontier: Vec<u32> = Vec::new();
        let mut can = vec![false; n];
        for (i, row) in self.rows.iter().enumerate() {
            if self.absorb[i] > 0.0 {
                can[i] = true;
                frontier.push(i as u32);
            }
            for &(j, _) in row {
                preds[j as usize].push(i as u32);
            }
        }
        while let Some(i) = frontier.pop() {
            for &p in &preds[i as usize] {
                if !can[p as usize] {
                    can[p as usize] = true;
                    frontier.push(p);
                }
            }
        }
        match can.iter().position(|&b| !b) {
            None => Ok(()),
            Some(i) => Err(MarkovError::NotAbsorbing { config: self.render(i) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stab_algorithms::{HermanRing, TokenCirculation, TwoProcessToggle};
    use stab_core::{ProjectedLegitimacy, Transformed};
    use stab_graph::builders;

    #[test]
    fn toggle_under_distributed_daemon() {
        let a = TwoProcessToggle::new();
        let chain =
            AbsorbingChain::build(&a, Daemon::Distributed, &a.legitimacy(), 1 << 12).unwrap();
        assert_eq!(chain.n_configs(), 4);
        assert_eq!(chain.n_transient(), 3);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
        // From (F,F): 3 equiprobable activations; only {P0,P1} absorbs.
        let ff = chain
            .transient_index(&Configuration::from_vec(vec![false, false]))
            .unwrap();
        assert!((chain.absorb()[ff] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn toggle_under_central_daemon_is_not_absorbing() {
        let a = TwoProcessToggle::new();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 12).unwrap();
        assert!(matches!(
            chain.almost_surely_absorbing(),
            Err(MarkovError::NotAbsorbing { .. })
        ));
    }

    #[test]
    fn transformed_toggle_under_synchronous_is_absorbing() {
        let a = Transformed::new(TwoProcessToggle::new());
        let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
        let chain = AbsorbingChain::build(&a, Daemon::Synchronous, &spec, 1 << 12).unwrap();
        // 16 coined configurations, 4 of which project to (T,T).
        assert_eq!(chain.n_configs(), 16);
        assert_eq!(chain.n_transient(), 12);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok(), "Theorem 8");
    }

    #[test]
    fn herman_synchronous_chain() {
        let a = HermanRing::on_ring(&builders::ring(3)).unwrap();
        let chain =
            AbsorbingChain::build(&a, Daemon::Synchronous, &a.legitimacy(), 1 << 12).unwrap();
        assert_eq!(chain.n_configs(), 8);
        // Legitimate: exactly one token = 6 configurations (3 positions × 2
        // bit patterns each); transient: the two uniform configurations.
        assert_eq!(chain.n_transient(), 2);
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
    }

    #[test]
    fn token_ring_under_central_daemon() {
        let a = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
        let chain = AbsorbingChain::build(&a, Daemon::Central, &a.legitimacy(), 1 << 20).unwrap();
        assert_eq!(chain.n_configs(), 81); // m=3, N=4
        assert!(chain.validate_stochastic());
        assert!(chain.almost_surely_absorbing().is_ok());
        // Legitimate configurations are not transient.
        let legit = a.legitimate_config(stab_graph::NodeId::new(0));
        assert!(chain.transient_index(&legit).is_none());
    }
}
