//! Linear solvers for the fundamental-matrix equation `(I − Q) x = b`:
//! dense Gaussian elimination with partial pivoting for small systems, and
//! sparse Gauss–Seidel for large ones (convergent because `Q` is
//! substochastic with almost-sure absorption).
//!
//! The sparse solver is generic over [`QRows`], so it runs unchanged over
//! the flat [`QMatrix`](crate::QMatrix) and the compressed
//! [`QStorage`](crate::QStorage) tiers — the latter re-decodes its byte
//! stream every sweep, trading time for the memory that lets 10⁸-entry
//! chains fit.

use stab_core::engine::Budget;

use crate::error::MarkovError;
use crate::qstore::QRows;

/// Solves the dense system `A x = b` by Gaussian elimination with partial
/// pivoting, consuming the inputs.
///
/// # Errors
///
/// [`MarkovError::Singular`] on a vanishing pivot.
// Indexed loops: the elimination reads row `col` while writing row `row`,
// which iterator adapters cannot express without `split_at_mut` noise.
#[allow(clippy::needless_range_loop)]
pub fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, MarkovError> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "dimension mismatch");
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-300 {
            return Err(MarkovError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let inv = 1.0 / a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Solves `(I − Q) x = b` by Gauss–Seidel iteration, where row `i` of the
/// CSR matrix `q` holds the sparse entries `(j, Q_ij)` of the
/// substochastic matrix `Q`.
///
/// The iteration `x_i ← b_i + Σ_j Q_ij x_j` converges whenever every state
/// eventually absorbs (spectral radius of `Q` below 1).
///
/// # Errors
///
/// [`MarkovError::SolverDiverged`] if the max-update falls below `tol`
/// within `max_iter` sweeps.
pub fn gauss_seidel<M: QRows>(
    q: &M,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<Vec<f64>, MarkovError> {
    gauss_seidel_budgeted(q, b, tol, max_iter, &Budget::unlimited())
}

/// [`gauss_seidel`] under a cooperative [`Budget`]: each sweep probes the
/// `solver` stage, so an exhausted wall-clock budget interrupts a slowly
/// converging iteration with a typed error instead of spinning to
/// `max_iter`.
///
/// The sweep order is block-structured by construction: rows were
/// appended to the store in ascending index order, so on the disk tier
/// consecutive rows share a spill chunk and each sweep rotates every
/// chunk through the pinned cache exactly once. The per-sweep probe
/// carries [`QRows::resident_bytes`] — the cache-pressure figure — so a
/// byte budget observes the cache, not the spilled stream.
///
/// # Errors
///
/// As [`gauss_seidel`], plus
/// [`MarkovError::Core`]`(`[`CoreError::BudgetExhausted`]`)` when a probe
/// trips.
///
/// [`CoreError::BudgetExhausted`]: stab_core::CoreError::BudgetExhausted
pub fn gauss_seidel_budgeted<M: QRows>(
    q: &M,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    budget: &Budget,
) -> Result<Vec<f64>, MarkovError> {
    let n = q.n_rows();
    assert_eq!(b.len(), n, "dimension mismatch");
    let mut x = b.to_vec();
    let mut residual = f64::INFINITY;
    for sweep in 0..max_iter {
        budget.probe("solver", q.resident_bytes(), sweep as u64)?;
        residual = 0.0;
        for i in 0..n {
            let mut acc = b[i];
            let mut diag = 0.0;
            for (j, p) in q.row_iter(i) {
                if j as usize == i {
                    diag += p;
                } else {
                    acc += p * x[j as usize];
                }
            }
            // Self-loop mass folds into the diagonal: (1 − Q_ii) x_i = acc.
            let denom = 1.0 - diag;
            if denom.abs() < 1e-300 {
                // A transient state that never leaves itself: hitting times
                // diverge (callers rule this out via absorption checks).
                return Err(MarkovError::SolverDiverged {
                    iterations: 0,
                    residual: f64::INFINITY,
                });
            }
            let next = acc / denom;
            residual = residual.max((next - x[i]).abs());
            x[i] = next;
        }
        if residual < tol {
            return Ok(x);
        }
    }
    Err(MarkovError::SolverDiverged {
        iterations: max_iter,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qstore::QMatrix;

    #[test]
    fn dense_solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_dense(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn dense_solves_2x2() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_dense(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dense_needs_pivoting() {
        // Zero on the initial diagonal; pivoting must handle it.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_dense(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn dense_detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(
            solve_dense(a, vec![1.0, 2.0]).unwrap_err(),
            MarkovError::Singular
        );
    }

    #[test]
    fn gauss_seidel_geometric_chain() {
        // Single transient state with self-loop 1/2: (1 - 1/2) t = 1 -> t=2.
        let q = QMatrix::from_rows(vec![vec![(0u32, 0.5)]]);
        let x = gauss_seidel(&q, &[1.0], 1e-12, 10_000).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gauss_seidel_matches_dense_on_random_chain() {
        // A 4-state substochastic matrix with leakage.
        let q = QMatrix::from_rows(vec![
            vec![(1u32, 0.5), (2, 0.25)],
            vec![(0u32, 0.3), (3, 0.3)],
            vec![(2u32, 0.6), (0, 0.2)],
            vec![(1u32, 0.9)],
        ]);
        let b = vec![1.0; 4];
        let gs = gauss_seidel(&q, &b, 1e-13, 100_000).unwrap();
        // Dense version of (I - Q).
        let mut a = vec![vec![0.0; 4]; 4];
        for (i, row) in q.rows().enumerate() {
            a[i][i] += 1.0;
            for &(j, p) in row {
                a[i][j as usize] -= p;
            }
        }
        let dense = solve_dense(a, b).unwrap();
        for i in 0..4 {
            assert!(
                (gs[i] - dense[i]).abs() < 1e-8,
                "state {i}: {} vs {}",
                gs[i],
                dense[i]
            );
        }
    }

    #[test]
    fn gauss_seidel_budget_trips_as_typed_core_error() {
        let q = QMatrix::from_rows(vec![vec![(0u32, 0.5)]]);
        let expired = Budget::unlimited().with_wall_time(std::time::Duration::ZERO);
        let err = gauss_seidel_budgeted(&q, &[1.0], 1e-12, 10_000, &expired).unwrap_err();
        assert!(matches!(
            err,
            MarkovError::Core(stab_core::CoreError::BudgetExhausted {
                stage: "solver",
                ..
            })
        ));
    }

    #[test]
    fn gauss_seidel_reports_divergence() {
        // Stochastic row with no leakage anywhere: no absorption, the
        // iteration cannot settle.
        let q = QMatrix::from_rows(vec![vec![(0u32, 1.0)]]);
        let err = gauss_seidel(&q, &[1.0], 1e-12, 50).unwrap_err();
        assert!(matches!(err, MarkovError::SolverDiverged { .. }));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = gauss_seidel(&QMatrix::from_rows(vec![vec![]]), &[1.0, 2.0], 1e-9, 10);
    }
}
