//! Error type for Markov-chain construction and solving.

use std::error::Error;
use std::fmt;

use stab_core::CoreError;

/// Errors from chain construction and hitting-time computation.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// State-space or scheduler enumeration failed.
    Core(CoreError),
    /// Some configuration cannot reach the legitimate set, so absorption is
    /// not almost sure and expected times are infinite — the system is not
    /// probabilistically self-stabilizing (Definition 2 fails).
    NotAbsorbing {
        /// A configuration with absorption probability < 1.
        config: String,
    },
    /// The iterative solver failed to reach the residual tolerance.
    SolverDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// The dense solver hit a (numerically) singular pivot.
    Singular,
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::Core(e) => write!(f, "{e}"),
            MarkovError::NotAbsorbing { config } => write!(
                f,
                "absorption is not almost sure: {config} cannot reach the legitimate set"
            ),
            MarkovError::SolverDiverged { iterations, residual } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            MarkovError::Singular => write!(f, "singular linear system"),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for MarkovError {
    fn from(e: CoreError) -> Self {
        MarkovError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MarkovError::NotAbsorbing {
            config: "⟨0⟩".into(),
        };
        assert!(e.to_string().contains("not almost sure"));
        let e = MarkovError::SolverDiverged {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10 iterations"));
        assert!(MarkovError::Singular.to_string().contains("singular"));
        let e: MarkovError = CoreError::EmptyStateSpace { node: 0 }.into();
        assert!(e.to_string().contains("empty state space"));
    }
}
