//! Two-tier storage for the transient-to-transient matrix `Q`, mirroring
//! the engine's edge-store tiers (`stab_core::engine::edgestore`).
//!
//! The flat tier is the classic [`QMatrix`] — a `Csr<(u32, f64)>` holding
//! `(column, probability)` pairs, 12–16 bytes per entry plus u32 offsets.
//! The compressed tier ([`CompressedQ`]) packs each row as zig-zag varint
//! **column deltas** (against the row's own transient index first, then
//! the previous column — rows are sorted by column) plus a varint index
//! into a deduplicated probability table, delimited by u64 byte offsets.
//!
//! The disk tier ([`DiskQ`]) goes one step further: the same compressed
//! byte stream is spilled to `WSR1` chunk files through the engine's
//! shared spill machinery (`stab_core::engine::spill`), and rows decode
//! out of a pinned-budget chunk cache. Only the u64 offsets, the
//! probability table, and the cache stay resident.
//!
//! [`AbsorbingChain`](crate::AbsorbingChain) picks the tier matching the
//! transition system it was built from, so a run selected with
//! `ExploreOptions::with_edge_store(EdgeStoreKind::Compressed)` keeps its
//! memory profile through the whole Markov pipeline: the solvers
//! ([`crate::linalg`]) iterate rows through the [`QRows`] trait and never
//! materialise a flat copy. The tradeoff is deliberate: Gauss–Seidel
//! sweeps re-decode the stream (and, on the disk tier, re-fault chunks
//! through the cache) each iteration, paying time for the memory
//! reduction that lets 10⁹-entry chains fit at all.

use stab_core::engine::edgestore::{invert_target_rows, DeltaStreamReader, DeltaStreamWriter};
use stab_core::engine::spill::{SpillCursor, SpillSink, SpillStore};
use stab_core::engine::{Csr, EdgeStoreKind, SpillConfig};

/// The flat `Q` tier: row `i` holds `(j, Q_ij)` entries sorted by `j`.
pub type QMatrix = Csr<(u32, f64)>;

/// Row-iteration access to a sparse substochastic matrix, implemented by
/// both tiers and by the runtime-selected [`QStorage`]. The solvers are
/// generic over it.
pub trait QRows {
    /// The row cursor.
    type Row<'a>: Iterator<Item = (u32, f64)>
    where
        Self: 'a;
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Cursor over row `i`'s `(column, probability)` entries, ascending
    /// by column.
    fn row_iter(&self, i: usize) -> Self::Row<'_>;
    /// Resident-set bytes backing the rows (the cache-pressure figure the
    /// solvers feed their `Budget` probes). In-RAM tiers report 0 — their
    /// footprint was already accounted at build time; the disk tier
    /// reports offsets + probability table + pinned chunk cache.
    fn resident_bytes(&self) -> u64 {
        0
    }
}

impl QRows for QMatrix {
    type Row<'a> = std::iter::Copied<std::slice::Iter<'a, (u32, f64)>>;

    fn n_rows(&self) -> usize {
        QMatrix::n_rows(self)
    }

    fn row_iter(&self, i: usize) -> Self::Row<'_> {
        self.row(i).iter().copied()
    }
}

/// The compressed `Q` tier: byte-packed column deltas + interned
/// probability table, u64 row offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedQ {
    offsets: Vec<u64>,
    stream: Vec<u8>,
    probs: Vec<f64>,
    n_entries: u64,
}

/// Zero-alloc decoding cursor over one compressed `Q` row.
#[derive(Debug, Clone)]
pub struct CompressedQRow<'a>(DeltaStreamReader<'a>);

impl Iterator for CompressedQRow<'_> {
    type Item = (u32, f64);

    #[inline]
    fn next(&mut self) -> Option<(u32, f64)> {
        if self.0.done() {
            return None;
        }
        Some((self.0.target(), self.0.prob()))
    }
}

impl QRows for CompressedQ {
    type Row<'a> = CompressedQRow<'a>;

    fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn row_iter(&self, i: usize) -> CompressedQRow<'_> {
        CompressedQRow(DeltaStreamReader::new(
            &self.stream,
            &self.offsets,
            i,
            &self.probs,
        ))
    }
}

/// The disk `Q` tier: the compressed byte stream spilled to `WSR1`
/// chunk files, rows decoded out of a pinned-budget chunk cache. `Q` is
/// working state (never checkpointed), so the spill always lives in a
/// self-cleaning per-process temp directory sized by the engine's
/// default chunk/cache budgets.
#[derive(Debug)]
pub struct DiskQ {
    offsets: Vec<u64>,
    probs: Vec<f64>,
    n_entries: u64,
    store: SpillStore,
}

/// Zero-alloc decoding cursor over one disk-tier `Q` row (the chunk is
/// pinned by the cursor, so eviction under it is safe).
#[derive(Debug, Clone)]
pub struct DiskQRow<'a> {
    cur: SpillCursor,
    probs: &'a [f64],
}

impl Iterator for DiskQRow<'_> {
    type Item = (u32, f64);

    #[inline]
    fn next(&mut self) -> Option<(u32, f64)> {
        if self.cur.done() {
            return None;
        }
        let j = self.cur.target();
        Some((j, self.probs[self.cur.raw() as usize]))
    }
}

impl QRows for DiskQ {
    type Row<'a> = DiskQRow<'a>;

    fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn row_iter(&self, i: usize) -> DiskQRow<'_> {
        DiskQRow {
            cur: self.store.row_cursor(&self.offsets, i),
            probs: &self.probs,
        }
    }

    fn resident_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.probs.len() * std::mem::size_of::<f64>()) as u64
            + self.store.resident_bytes()
    }
}

/// The per-run `Q` store of an [`AbsorbingChain`](crate::AbsorbingChain):
/// whichever tier matches the transition system's edge store.
// One instance per chain, so the Disk variant's inline size is moot.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum QStorage {
    /// Flat CSR tier.
    Flat(QMatrix),
    /// Byte-packed compressed tier.
    Compressed(CompressedQ),
    /// Chunk-spilled disk tier.
    Disk(DiskQ),
}

/// Cursor over one row of either `Q` tier.
#[derive(Debug, Clone)]
pub enum QRowIter<'a> {
    /// Slice walk over the flat tier.
    Flat(std::iter::Copied<std::slice::Iter<'a, (u32, f64)>>),
    /// Varint decode over the compressed tier.
    Compressed(CompressedQRow<'a>),
    /// Varint decode out of the disk tier's chunk cache.
    Disk(DiskQRow<'a>),
}

impl Iterator for QRowIter<'_> {
    type Item = (u32, f64);

    #[inline]
    fn next(&mut self) -> Option<(u32, f64)> {
        match self {
            QRowIter::Flat(it) => it.next(),
            QRowIter::Compressed(it) => it.next(),
            QRowIter::Disk(it) => it.next(),
        }
    }
}

impl QStorage {
    /// Which tier this store is.
    pub fn kind(&self) -> EdgeStoreKind {
        match self {
            QStorage::Flat(_) => EdgeStoreKind::Flat,
            QStorage::Compressed(_) => EdgeStoreKind::Compressed,
            QStorage::Disk(_) => EdgeStoreKind::Disk,
        }
    }

    /// Number of transient rows.
    pub fn n_rows(&self) -> usize {
        match self {
            QStorage::Flat(q) => QMatrix::n_rows(q),
            QStorage::Compressed(q) => QRows::n_rows(q),
            QStorage::Disk(q) => QRows::n_rows(q),
        }
    }

    /// Total stored entries (u64 — representable past 2³² on the
    /// compressed tier).
    pub fn n_entries(&self) -> u64 {
        match self {
            QStorage::Flat(q) => q.n_entries() as u64,
            QStorage::Compressed(q) => q.n_entries,
            QStorage::Disk(q) => q.n_entries,
        }
    }

    /// Heap bytes held by the store (offsets + entries + side tables) —
    /// the `Q`-side analogue of the engine's `edge_bytes`.
    pub fn q_bytes(&self) -> u64 {
        match self {
            QStorage::Flat(q) => {
                (q.n_entries() * std::mem::size_of::<(u32, f64)>()
                    + (QMatrix::n_rows(q) + 1) * std::mem::size_of::<u32>()) as u64
            }
            QStorage::Compressed(q) => {
                (q.stream.len()
                    + q.offsets.len() * std::mem::size_of::<u64>()
                    + q.probs.len() * std::mem::size_of::<f64>()) as u64
            }
            // Total comparable footprint: resident side tables plus the
            // spilled stream (which other tiers hold in RAM).
            QStorage::Disk(q) => {
                (q.offsets.len() * std::mem::size_of::<u64>()
                    + q.probs.len() * std::mem::size_of::<f64>()) as u64
                    + q.store.spilled_bytes()
            }
        }
    }

    /// Resident-set bytes (see [`QRows::resident_bytes`]): equals
    /// [`QStorage::q_bytes`] minus the spilled stream on the disk tier,
    /// 0 on the in-RAM tiers.
    pub fn resident_q_bytes(&self) -> u64 {
        match self {
            QStorage::Flat(_) | QStorage::Compressed(_) => 0,
            QStorage::Disk(q) => QRows::resident_bytes(q),
        }
    }

    /// Cursor over row `i`'s `(column, probability)` entries, ascending.
    #[inline]
    pub fn row_iter(&self, i: usize) -> QRowIter<'_> {
        match self {
            QStorage::Flat(q) => QRowIter::Flat(q.row(i).iter().copied()),
            QStorage::Compressed(q) => QRowIter::Compressed(QRows::row_iter(q, i)),
            QStorage::Disk(q) => QRowIter::Disk(QRows::row_iter(q, i)),
        }
    }

    /// Row `i` decoded into a fresh vector (test and display convenience;
    /// the solvers iterate [`QStorage::row_iter`] without allocating).
    pub fn row_vec(&self, i: usize) -> Vec<(u32, f64)> {
        self.row_iter(i).collect()
    }

    /// The reverse adjacency over columns (row `j` = rows with an entry
    /// in column `j`, ascending with multiplicity), used by the
    /// almost-sure-absorption closure.
    ///
    /// # Panics
    ///
    /// Panics if the entry count exceeds `u32::MAX` (the reverse CSR is
    /// u32-offset — checked, never silently wrapped).
    pub fn invert_targets(&self) -> Csr<u32> {
        match self {
            QStorage::Flat(q) => q.invert(|&(j, _)| j),
            QStorage::Compressed(q) => invert_target_rows(QRows::n_rows(q), q.n_entries, |i| {
                QRows::row_iter(q, i).map(|(j, _)| j)
            }),
            QStorage::Disk(q) => invert_target_rows(QRows::n_rows(q), q.n_entries, |i| {
                QRows::row_iter(q, i).map(|(j, _)| j)
            }),
        }
    }
}

impl QRows for QStorage {
    type Row<'a> = QRowIter<'a>;

    fn n_rows(&self) -> usize {
        QStorage::n_rows(self)
    }

    fn row_iter(&self, i: usize) -> QRowIter<'_> {
        QStorage::row_iter(self, i)
    }

    fn resident_bytes(&self) -> u64 {
        QStorage::resident_q_bytes(self)
    }
}

/// Tier-selected assembly of a `Q` store: rows appended in transient-index
/// order.
#[derive(Debug)]
pub enum QStorageBuilder {
    /// Accumulates counts + flat entries for `Csr::from_counts`.
    Flat {
        /// Per-row entry counts.
        counts: Vec<u32>,
        /// Concatenated row data.
        entries: Vec<(u32, f64)>,
    },
    /// Streams rows straight into the compressed encoding — each item is
    /// `(column delta, prob id)` through the engine's shared
    /// [`DeltaStreamWriter`].
    Compressed(DeltaStreamWriter),
    /// Streams the compressed encoding and spills sealed chunks to a
    /// temp directory as the pending tail crosses the chunk size.
    Disk {
        /// The shared delta encoder (its pending tail is what spills).
        w: DeltaStreamWriter,
        /// The chunk writer.
        sink: SpillSink,
    },
}

impl QStorageBuilder {
    /// An empty builder of the selected tier.
    pub fn new(kind: EdgeStoreKind) -> Self {
        match kind {
            EdgeStoreKind::Flat => QStorageBuilder::Flat {
                counts: Vec::new(),
                entries: Vec::new(),
            },
            EdgeStoreKind::Compressed => QStorageBuilder::Compressed(DeltaStreamWriter::new()),
            // `Q` is never checkpointed, so the spill is always a
            // self-cleaning temp directory with the default budgets.
            EdgeStoreKind::Disk => QStorageBuilder::Disk {
                w: DeltaStreamWriter::new(),
                sink: SpillSink::create(&SpillConfig::default()),
            },
        }
    }

    /// Appends the next row (entries sorted by column, as the chain build
    /// produces them).
    pub fn push_row(&mut self, row: &[(u32, f64)]) {
        match self {
            QStorageBuilder::Flat { counts, entries } => {
                counts
                    .push(u32::try_from(row.len()).expect("Q row length exceeds u32::MAX entries"));
                entries.extend_from_slice(row);
            }
            QStorageBuilder::Compressed(w) => {
                for &(j, p) in row {
                    w.target(j);
                    w.prob(p);
                }
                w.end_row();
            }
            QStorageBuilder::Disk { w, sink } => {
                for &(j, p) in row {
                    w.target(j);
                    w.prob(p);
                }
                w.end_row();
                sink.maybe_spill(w);
            }
        }
    }

    /// Finalises the selected store.
    pub fn finish(self) -> QStorage {
        match self {
            QStorageBuilder::Flat { counts, entries } => {
                QStorage::Flat(QMatrix::from_counts(&counts, entries))
            }
            QStorageBuilder::Compressed(w) => {
                let (offsets, stream, probs, n_entries) = w.into_parts();
                QStorage::Compressed(CompressedQ {
                    offsets,
                    stream,
                    probs,
                    n_entries,
                })
            }
            QStorageBuilder::Disk { mut w, mut sink } => {
                if w.pending_len() > 0 {
                    sink.spill(&mut w);
                }
                let (offsets, stream, probs, n_entries) = w.into_parts();
                debug_assert!(stream.is_empty(), "disk builder spills its whole stream");
                QStorage::Disk(DiskQ {
                    offsets,
                    probs,
                    n_entries,
                    store: sink.finish(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(kind: EdgeStoreKind, rows: &[Vec<(u32, f64)>]) -> QStorage {
        let mut b = QStorageBuilder::new(kind);
        for r in rows {
            b.push_row(r);
        }
        b.finish()
    }

    #[test]
    fn tiers_agree_row_for_row() {
        let rows = vec![
            vec![(0u32, 0.5), (2, 0.25)],
            vec![],
            vec![(1u32, 0.125), (2, 0.5), (3, 0.25)],
            vec![(0u32, 0.5)],
        ];
        let flat = build(EdgeStoreKind::Flat, &rows);
        let comp = build(EdgeStoreKind::Compressed, &rows);
        let disk = build(EdgeStoreKind::Disk, &rows);
        assert_eq!(flat.n_rows(), comp.n_rows());
        assert_eq!(flat.n_rows(), disk.n_rows());
        assert_eq!(flat.n_entries(), comp.n_entries());
        assert_eq!(flat.n_entries(), disk.n_entries());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&flat.row_vec(i), row);
            assert_eq!(&comp.row_vec(i), row, "row {i}");
            assert_eq!(&disk.row_vec(i), row, "row {i}");
        }
        assert_eq!(flat.invert_targets(), comp.invert_targets());
        assert_eq!(flat.invert_targets(), disk.invert_targets());
        assert!(comp.q_bytes() < flat.q_bytes());
        // The disk tier spills its whole stream; the resident set is the
        // side tables plus whatever the cache pins — for a stream smaller
        // than the cache budget that is everything, so resident may equal
        // (never exceed) the total footprint.
        assert!(disk.resident_q_bytes() <= disk.q_bytes());
        match &disk {
            QStorage::Disk(q) => assert!(q.store.spilled_bytes() > 0, "disk Q must spill"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn kinds_are_reported() {
        let flat = build(EdgeStoreKind::Flat, &[vec![(0, 1.0)]]);
        let comp = build(EdgeStoreKind::Compressed, &[vec![(0, 1.0)]]);
        let disk = build(EdgeStoreKind::Disk, &[vec![(0, 1.0)]]);
        assert_eq!(flat.kind(), EdgeStoreKind::Flat);
        assert_eq!(comp.kind(), EdgeStoreKind::Compressed);
        assert_eq!(disk.kind(), EdgeStoreKind::Disk);
    }
}
