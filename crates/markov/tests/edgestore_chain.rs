//! Differential tests of the compressed and disk `Q` stores against the
//! flat store: chains built over the compressed or spilled edge tier
//! must produce bit-identical structure (transient sets, `Q` rows,
//! absorption vectors) and numerically identical quantitative results —
//! expected hitting times, absorption probabilities, and
//! stabilization-time CDFs — across the zoo, including quotient and
//! reachable modes.

use stab_algorithms::{DijkstraRing, HermanRing, TokenCirculation, TwoProcessToggle};
use stab_core::engine::{EdgeStoreKind, ExploreOptions};
use stab_core::{Algorithm, Daemon, Legitimacy, LocalState, ProjectedLegitimacy, Transformed};
use stab_graph::builders;
use stab_markov::AbsorbingChain;

const CAP: u64 = 1 << 22;

/// Builds the chain under both tiers and pins structure + quantitative
/// results of the compressed one to the flat one.
fn chain_differential<A, L>(alg: &A, daemon: Daemon, spec: &L, opts: &ExploreOptions<A::State>)
where
    A: Algorithm + Sync,
    A::State: LocalState + Sync,
    L: Legitimacy<A::State> + Sync,
{
    let flat = AbsorbingChain::build_with(alg, daemon, spec, CAP, opts).expect("flat chain");
    for kind in [EdgeStoreKind::Compressed, EdgeStoreKind::Disk] {
        let label = format!("{} under {daemon} ({})", alg.name(), kind.label());
        let copts = opts.clone().with_edge_store(kind);
        let comp = AbsorbingChain::build_with(alg, daemon, spec, CAP, &copts).expect("chain");
        tier_differential(&flat, &comp, kind, &label);
    }
}

/// Pins one non-flat chain statewise and numerically to the flat one.
fn tier_differential<S: LocalState>(
    flat: &AbsorbingChain<S>,
    comp: &AbsorbingChain<S>,
    kind: EdgeStoreKind,
    label: &str,
) {
    assert_eq!(comp.q().kind(), kind, "{label}: tier");
    assert_eq!(comp.n_transient(), flat.n_transient(), "{label}: transient");
    assert_eq!(comp.n_explored(), flat.n_explored(), "{label}: explored");
    assert_eq!(
        comp.represented_configs(),
        flat.represented_configs(),
        "{label}: represented"
    );
    assert_eq!(comp.q().n_entries(), flat.q().n_entries(), "{label}: nnz");
    if kind == EdgeStoreKind::Compressed {
        assert!(
            comp.q().q_bytes() < flat.q().q_bytes() || flat.q().n_entries() < 8,
            "{label}: Q compression ({} vs {} bytes)",
            comp.q().q_bytes(),
            flat.q().q_bytes()
        );
    } else {
        // The spilled rows are not part of the resident figure.
        assert!(
            comp.q().resident_q_bytes() <= comp.q().q_bytes(),
            "{label}: Q residency"
        );
    }
    // Q decodes row-for-row to the flat entries (probabilities are
    // interned exactly, by bit pattern, so this is equality — not
    // approximation).
    for i in 0..flat.n_transient() {
        assert_eq!(comp.q().row_vec(i), flat.q().row_vec(i), "{label}: row {i}");
    }
    assert_eq!(comp.absorb(), flat.absorb(), "{label}: absorption vector");
    assert_eq!(comp.step_moves(), flat.step_moves(), "{label}: step moves");
    assert_eq!(comp.transient_orbits(), flat.transient_orbits());
    assert!(comp.validate_stochastic(), "{label}: stochastic");

    // Quantitative agreement through the solvers (Gauss–Seidel decodes
    // the stream every sweep on the compressed tier).
    assert_eq!(
        flat.almost_surely_absorbing().is_ok(),
        comp.almost_surely_absorbing().is_ok(),
        "{label}: absorption check"
    );
    let fp = flat.absorption_probabilities().expect("flat solve");
    let cp = comp.absorption_probabilities().expect("compressed solve");
    for (i, (a, b)) in fp.iter().zip(&cp).enumerate() {
        assert!((a - b).abs() < 1e-12, "{label}: absorption {i}: {a} vs {b}");
    }
    if flat.almost_surely_absorbing().is_ok() {
        let ft = flat.expected_steps().expect("flat times");
        let ct = comp.expected_steps().expect("compressed times");
        for i in 0..flat.n_transient() {
            assert!(
                (ft.of_transient(i) - ct.of_transient(i)).abs() < 1e-9,
                "{label}: hitting time {i}"
            );
        }
        let fm = flat.expected_moves().expect("flat moves");
        let cm = comp.expected_moves().expect("compressed moves");
        for i in 0..flat.n_transient() {
            assert!(
                (fm.of_transient(i) - cm.of_transient(i)).abs() < 1e-9,
                "{label}: moves {i}"
            );
        }
    }
    let fc = flat.hitting_cdf_uniform(64);
    let cc = comp.hitting_cdf_uniform(64);
    for (k, (a, b)) in fc.iter().zip(&cc).enumerate() {
        assert!((a - b).abs() < 1e-12, "{label}: CDF[{k}]: {a} vs {b}");
    }
}

#[test]
fn herman_chain_matches_across_stores() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    let spec = alg.legitimacy();
    chain_differential(&alg, Daemon::Synchronous, &spec, &ExploreOptions::full());
    chain_differential(
        &alg,
        Daemon::Synchronous,
        &spec,
        &ExploreOptions::full().with_ring_quotient(),
    );
}

#[test]
fn dijkstra_chain_matches_across_stores() {
    let alg = DijkstraRing::on_ring(&builders::ring(4)).unwrap();
    let spec = alg.legitimacy();
    chain_differential(&alg, Daemon::Central, &spec, &ExploreOptions::full());
}

#[test]
fn transformed_toggle_chain_matches_across_stores() {
    let alg = Transformed::new(TwoProcessToggle::new());
    let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
    for daemon in [Daemon::Synchronous, Daemon::Distributed, Daemon::Central] {
        chain_differential(&alg, daemon, &spec, &ExploreOptions::full());
    }
}

#[test]
fn token_ring_reachable_chain_matches_across_stores() {
    let alg = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
    let spec = alg.legitimacy();
    chain_differential(&alg, Daemon::Central, &spec, &ExploreOptions::full());
    let ix = stab_core::SpaceIndexer::new(&alg, CAP).unwrap();
    let seeds: Vec<_> = ix.iter().step_by(5).collect();
    chain_differential(
        &alg,
        Daemon::Central,
        &spec,
        &ExploreOptions::reachable(seeds),
    );
}
