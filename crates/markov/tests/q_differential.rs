//! Differential test of the engine-backed `Q`-row construction against the
//! seed Markov builder.
//!
//! The reference builds the absorbing chain the way the seed did:
//! re-enumerate `semantics::all_steps` per illegitimate configuration,
//! `encode` every successor, and accumulate a `HashMap` row. The
//! engine-backed [`AbsorbingChain`] must produce identical transient
//! indexing, `Q` entries, absorption masses and step-move rewards.

use std::collections::HashMap;

use stab_algorithms::{DijkstraRing, HermanRing, TokenCirculation, TwoProcessToggle};
use stab_core::{
    semantics, Algorithm, Daemon, Legitimacy, ProjectedLegitimacy, SpaceIndexer, Transformed,
};
use stab_graph::builders;
use stab_markov::AbsorbingChain;

const CAP: u64 = 1 << 22;

/// Seed-style chain data: `(rows, absorb, step_moves)` over transient
/// indices in ascending configuration-id order.
type ReferenceChain = (Vec<Vec<(u32, f64)>>, Vec<f64>, Vec<f64>);

fn reference_chain<A, L>(alg: &A, daemon: Daemon, spec: &L) -> ReferenceChain
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    let indexer = SpaceIndexer::new(alg, CAP).unwrap();
    let total = indexer.total();
    let mut transient_of = vec![u32::MAX; total as usize];
    let mut config_of = Vec::new();
    for id in 0..total {
        let cfg = indexer.decode(id);
        if !spec.is_legitimate(&cfg) {
            transient_of[id as usize] = config_of.len() as u32;
            config_of.push(id);
        }
    }
    let mut rows = Vec::with_capacity(config_of.len());
    let mut absorb = Vec::with_capacity(config_of.len());
    let mut step_moves = Vec::with_capacity(config_of.len());
    for &id in &config_of {
        let cfg = indexer.decode(id);
        let steps = semantics::all_steps(alg, daemon, &cfg).expect("reference enumeration");
        let mut row: HashMap<u32, f64> = HashMap::new();
        let mut absorbed = 0.0;
        if steps.is_empty() {
            rows.push(vec![(transient_of[id as usize], 1.0)]);
            absorb.push(0.0);
            step_moves.push(0.0);
            continue;
        }
        let act_prob = 1.0 / steps.len() as f64;
        let mut moves = 0.0;
        for (activation, dist) in steps {
            moves += act_prob * activation.len() as f64;
            for (p, next) in dist {
                let next_id = indexer.encode(&next);
                let t = transient_of[next_id as usize];
                if t == u32::MAX {
                    absorbed += act_prob * p;
                } else {
                    *row.entry(t).or_insert(0.0) += act_prob * p;
                }
            }
        }
        let mut row: Vec<(u32, f64)> = row.into_iter().collect();
        row.sort_unstable_by_key(|&(j, _)| j);
        rows.push(row);
        absorb.push(absorbed);
        step_moves.push(moves);
    }
    (rows, absorb, step_moves)
}

fn differential<A, L>(alg: &A, spec: &L)
where
    A: Algorithm + Sync,
    A::State: Sync,
    L: Legitimacy<A::State> + Sync,
{
    for daemon in Daemon::ALL {
        let label = format!("{} under {daemon}", alg.name());
        let chain = AbsorbingChain::build(alg, daemon, spec, CAP).expect("engine chain");
        let (rows, absorb, step_moves) = reference_chain(alg, daemon, spec);
        assert_eq!(chain.n_transient(), rows.len(), "{label}: transient count");
        for (i, want) in rows.iter().enumerate() {
            let got = chain.q().row_vec(i);
            assert_eq!(got.len(), want.len(), "{label}: row {i} length");
            for (&(gj, gp), &(wj, wp)) in got.iter().zip(want) {
                assert_eq!(gj, wj, "{label}: row {i} column");
                assert!(
                    (gp - wp).abs() < 1e-12,
                    "{label}: row {i} prob {gp} vs {wp}"
                );
            }
            assert!(
                (chain.absorb()[i] - absorb[i]).abs() < 1e-12,
                "{label}: absorb {i}: {} vs {}",
                chain.absorb()[i],
                absorb[i]
            );
            assert!(
                (chain.step_moves()[i] - step_moves[i]).abs() < 1e-12,
                "{label}: moves {i}: {} vs {}",
                chain.step_moves()[i],
                step_moves[i]
            );
        }
    }
}

#[test]
fn toggle_chain_matches_reference() {
    let alg = TwoProcessToggle::new();
    differential(&alg, &alg.legitimacy());
}

#[test]
fn token_ring_chain_matches_reference() {
    for n in [3, 4] {
        let alg = TokenCirculation::on_ring(&builders::ring(n)).unwrap();
        differential(&alg, &alg.legitimacy());
    }
}

#[test]
fn dijkstra_chain_matches_reference() {
    let alg = DijkstraRing::on_ring(&builders::ring(3)).unwrap();
    differential(&alg, &alg.legitimacy());
}

#[test]
fn herman_chain_matches_reference() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    differential(&alg, &alg.legitimacy());
}

#[test]
fn transformed_toggle_chain_matches_reference() {
    let alg = Transformed::new(TwoProcessToggle::new());
    let spec = ProjectedLegitimacy::new(TwoProcessToggle::new().legitimacy());
    differential(&alg, &spec);
}
