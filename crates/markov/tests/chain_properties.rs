//! Property-based tests of the quantitative engine: solver agreement,
//! reward linearity, and stochasticity of generated chains.

use proptest::prelude::*;

use stab_algorithms::{HermanRing, TokenCirculation};
use stab_core::{Daemon, ProjectedLegitimacy, Transformed};
use stab_graph::builders;
use stab_markov::{linalg, AbsorbingChain, QMatrix};

/// Random substochastic sparse rows with guaranteed leakage ≥ 5% per row.
fn chain_strategy() -> impl Strategy<Value = Vec<Vec<(u32, f64)>>> {
    (2usize..12).prop_flat_map(|n| {
        proptest::collection::vec(
            proptest::collection::vec((0u32..n as u32, 1u32..100), 1..4),
            n..=n,
        )
        .prop_map(|raw| {
            raw.into_iter()
                .map(|entries| {
                    let total: u32 = entries.iter().map(|(_, w)| w).sum();
                    // Scale so the row sums to at most 0.95.
                    entries
                        .into_iter()
                        .map(|(j, w)| (j, 0.95 * w as f64 / total as f64))
                        .collect::<Vec<_>>()
                })
                .collect()
        })
    })
}

proptest! {
    /// Gauss–Seidel agrees with dense elimination on random substochastic
    /// systems.
    #[test]
    fn solvers_agree(rows in chain_strategy()) {
        let n = rows.len();
        let b = vec![1.0; n];
        let q = QMatrix::from_rows(rows);
        let gs = linalg::gauss_seidel(&q, &b, 1e-13, 1_000_000).unwrap();
        let mut a = vec![vec![0.0; n]; n];
        for (i, row) in q.rows().enumerate() {
            a[i][i] += 1.0;
            for &(j, q) in row {
                a[i][j as usize] -= q;
            }
        }
        let dense = linalg::solve_dense(a, b).unwrap();
        for i in 0..n {
            prop_assert!((gs[i] - dense[i]).abs() < 1e-7, "state {}: {} vs {}", i, gs[i], dense[i]);
        }
    }

    /// Hitting solutions are positive and at least 1 for a unit reward
    /// (every transient state needs at least one step).
    #[test]
    fn unit_reward_solutions_exceed_one(rows in chain_strategy()) {
        let n = rows.len();
        let x = linalg::gauss_seidel(&QMatrix::from_rows(rows), &vec![1.0; n], 1e-12, 1_000_000).unwrap();
        for (i, v) in x.iter().enumerate() {
            prop_assert!(*v >= 1.0 - 1e-9, "state {}: {}", i, v);
        }
    }

    /// Linearity of the solve: solution(r1) + solution(r2) =
    /// solution(r1 + r2).
    #[test]
    fn reward_linearity(rows in chain_strategy(), r1 in proptest::collection::vec(0.0f64..5.0, 2..12), r2 in proptest::collection::vec(0.0f64..5.0, 2..12)) {
        let n = rows.len();
        prop_assume!(r1.len() >= n && r2.len() >= n);
        let q = QMatrix::from_rows(rows);
        let a = linalg::gauss_seidel(&q, &r1[..n], 1e-13, 1_000_000).unwrap();
        let b = linalg::gauss_seidel(&q, &r2[..n], 1e-13, 1_000_000).unwrap();
        let sum: Vec<f64> = r1[..n].iter().zip(&r2[..n]).map(|(x, y)| x + y).collect();
        let c = linalg::gauss_seidel(&q, &sum, 1e-13, 1_000_000).unwrap();
        for i in 0..n {
            prop_assert!((a[i] + b[i] - c[i]).abs() < 1e-6);
        }
    }

    /// Chains generated from ring algorithms are row-stochastic and have
    /// non-negative finite expected times whenever absorbing, for random
    /// ring sizes and daemons.
    #[test]
    fn generated_chains_are_stochastic(n in 3usize..6, daemon_pick in 0usize..3) {
        let daemon = [Daemon::Central, Daemon::Distributed, Daemon::Synchronous][daemon_pick];
        let alg = Transformed::new(TokenCirculation::on_ring(&builders::ring(n)).unwrap());
        let spec = ProjectedLegitimacy::new(
            TokenCirculation::on_ring(&builders::ring(n)).unwrap().legitimacy(),
        );
        let chain = AbsorbingChain::build(&alg, daemon, &spec, 1 << 22).unwrap();
        prop_assert!(chain.validate_stochastic());
        let times = chain.expected_steps().unwrap();
        for i in 0..chain.n_transient() {
            let t = times.of_transient(i);
            prop_assert!(t.is_finite() && t >= 1.0 - 1e-9);
        }
    }

    /// Herman's expected times grow monotonically in worst case over odd
    /// ring sizes (sampled pairs).
    #[test]
    fn herman_worst_case_monotone(k in 1usize..3) {
        let small = 2 * k + 1;
        let large = 2 * (k + 1) + 1;
        let worst = |n: usize| {
            let alg = HermanRing::on_ring(&builders::ring(n)).unwrap();
            let chain =
                AbsorbingChain::build(&alg, Daemon::Synchronous, &alg.legitimacy(), 1 << 22)
                    .unwrap();
            chain.expected_steps().unwrap().worst_case()
        };
        prop_assert!(worst(large) > worst(small));
    }
}
