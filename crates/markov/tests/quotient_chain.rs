//! Differential tests of quotient and reachable-mode absorbing chains
//! against the full-space chain.
//!
//! The rotation quotient lumps the Definition 6 chain by rotation orbits.
//! For rotation-equivariant ring algorithms the orbit partition is exactly
//! lumpable, so the quotient chain must reproduce — state for state — the
//! full chain's expected hitting times (every concrete configuration's
//! time equals its representative's), absorption probabilities, and the
//! uniform-initial average (orbit-weighted on the quotient side).

use stab_algorithms::{HermanRing, TokenCirculation};
use stab_core::engine::ExploreOptions;
use stab_core::{Algorithm, Daemon, Legitimacy, ProjectedLegitimacy, SpaceIndexer, Transformed};
use stab_graph::builders;
use stab_markov::AbsorbingChain;

const CAP: u64 = 1 << 22;

/// Solver agreement slack: dense elimination vs possibly different
/// pivoting on the lumped system.
const TOL: f64 = 1e-8;

fn hitting_time_differential<A, L>(alg: &A, daemon: Daemon, spec: &L)
where
    A: Algorithm + Sync,
    A::State: Sync,
    L: Legitimacy<A::State> + Sync,
{
    let label = format!("{} under {daemon}", alg.name());
    let full = AbsorbingChain::build(alg, daemon, spec, CAP).expect("full chain");
    let opts = ExploreOptions::full().with_ring_quotient();
    let quot = AbsorbingChain::build_with(alg, daemon, spec, CAP, &opts).expect("quotient chain");

    assert!(full.validate_stochastic(), "{label}: full stochastic");
    assert!(quot.validate_stochastic(), "{label}: quotient stochastic");
    assert_eq!(
        full.almost_surely_absorbing().is_ok(),
        quot.almost_surely_absorbing().is_ok(),
        "{label}: absorption verdict"
    );
    assert_eq!(
        quot.represented_configs(),
        full.n_configs(),
        "{label}: orbits tile the space"
    );
    if full.almost_surely_absorbing().is_err() {
        return;
    }

    let full_times = full.expected_steps().expect("full solve");
    let quot_times = quot.expected_steps().expect("quotient solve");

    // Per-configuration agreement: every concrete configuration's hitting
    // time equals its orbit representative's.
    let ix = SpaceIndexer::new(alg, CAP).unwrap();
    for cfg in ix.iter() {
        let t_full = full.expected_from(&full_times, &cfg);
        let t_quot = quot.expected_from(&quot_times, &cfg);
        assert!(
            (t_full - t_quot).abs() < TOL,
            "{label}: {cfg:?}: full {t_full} vs quotient {t_quot}"
        );
    }

    // The orbit-weighted quotient average is the full uniform average.
    let avg_full = full_times.average_uniform(full.n_configs());
    let avg_quot = quot_times.average_weighted(quot.transient_orbits(), quot.represented_configs());
    assert!(
        (avg_full - avg_quot).abs() < TOL,
        "{label}: uniform average {avg_full} vs weighted {avg_quot}"
    );

    // Expected moves (work) lump identically: the per-step activation-size
    // reward is rotation-invariant.
    let full_moves = full.expected_moves().expect("full moves");
    let quot_moves = quot.expected_moves().expect("quotient moves");
    for cfg in ix.iter() {
        let m_full = full.expected_from(&full_moves, &cfg);
        let m_quot = quot.expected_from(&quot_moves, &cfg);
        assert!(
            (m_full - m_quot).abs() < TOL,
            "{label}: moves at {cfg:?}: {m_full} vs {m_quot}"
        );
    }

    // Absorption probabilities agree (all 1 when almost surely absorbing).
    let p_full = full.absorption_probabilities().expect("full absorption");
    let p_quot = quot
        .absorption_probabilities()
        .expect("quotient absorption");
    for (i, p) in p_quot.iter().enumerate() {
        assert!((p - 1.0).abs() < TOL, "{label}: quotient absorption {p}");
        let _ = i;
    }
    for p in &p_full {
        assert!((p - 1.0).abs() < TOL, "{label}: full absorption {p}");
    }
}

#[test]
fn herman_quotient_hitting_times_match_full() {
    for n in [3, 5, 7] {
        let alg = HermanRing::on_ring(&builders::ring(n)).unwrap();
        hitting_time_differential(&alg, Daemon::Synchronous, &alg.legitimacy());
    }
}

#[test]
fn transformed_token_ring_quotient_times_match_full() {
    for daemon in [Daemon::Synchronous, Daemon::Distributed] {
        let base = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
        let alg = Transformed::new(TokenCirculation::on_ring(&builders::ring(4)).unwrap());
        let spec = ProjectedLegitimacy::new(base.legitimacy());
        hitting_time_differential(&alg, daemon, &spec);
    }
}

/// A reachable-mode chain seeded with every configuration reproduces the
/// full chain's times exactly (same states, BFS ids).
#[test]
fn reachable_chain_with_all_seeds_matches_full() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    let spec = alg.legitimacy();
    let ix = SpaceIndexer::new(&alg, CAP).unwrap();
    let full = AbsorbingChain::build(&alg, Daemon::Synchronous, &spec, CAP).unwrap();
    let opts = ExploreOptions::reachable(ix.iter().collect());
    let reach = AbsorbingChain::build_with(&alg, Daemon::Synchronous, &spec, CAP, &opts).unwrap();
    assert_eq!(reach.n_transient(), full.n_transient());
    assert!(reach.validate_stochastic());
    let t_full = full.expected_steps().unwrap();
    let t_reach = reach.expected_steps().unwrap();
    for cfg in ix.iter() {
        assert!(
            (full.expected_from(&t_full, &cfg) - reach.expected_from(&t_reach, &cfg)).abs() < TOL,
            "{cfg:?}"
        );
    }
}

/// A reachable-mode chain from a strict seed set: `transient_index`
/// reports unexplored configurations as `None`, and the explored times
/// match the full chain (hitting times only depend on the forward
/// closure).
#[test]
fn reachable_chain_from_strict_seeds() {
    let alg = Transformed::new(TokenCirculation::on_ring(&builders::ring(3)).unwrap());
    let base = TokenCirculation::on_ring(&builders::ring(3)).unwrap();
    let spec = ProjectedLegitimacy::new(base.legitimacy());
    let seed = Transformed::<TokenCirculation>::lift(
        &stab_core::Configuration::from_vec(vec![1u8, 1, 0]),
        false,
    );
    let opts = ExploreOptions::reachable(vec![seed.clone()]);
    let reach = AbsorbingChain::build_with(&alg, Daemon::Distributed, &spec, CAP, &opts).unwrap();
    let full = AbsorbingChain::build(&alg, Daemon::Distributed, &spec, CAP).unwrap();
    assert!(reach.n_explored() as u64 <= full.n_configs());
    assert!(reach.validate_stochastic());
    let t_reach = reach.expected_steps().unwrap();
    let t_full = full.expected_steps().unwrap();
    assert!(
        (reach.expected_from(&t_reach, &seed) - full.expected_from(&t_full, &seed)).abs() < TOL,
        "seed hitting time"
    );
}

/// The uniform-initial hitting-time CDF of a quotient chain matches the
/// full chain's pointwise: orbit weights make the lumped distribution
/// evolve exactly like the concrete uniform one.
#[test]
fn quotient_cdf_matches_full() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    let spec = alg.legitimacy();
    let full = AbsorbingChain::build(&alg, Daemon::Synchronous, &spec, CAP).unwrap();
    let opts = ExploreOptions::full().with_ring_quotient();
    let quot = AbsorbingChain::build_with(&alg, Daemon::Synchronous, &spec, CAP, &opts).unwrap();
    let cdf_full = full.hitting_cdf_uniform(60);
    let cdf_quot = quot.hitting_cdf_uniform(60);
    // Herman(5): 10 of the 32 configurations are legitimate, so the
    // initially absorbed mass is exactly 10/32 on both sides.
    assert!((cdf_full[0] - 10.0 / 32.0).abs() < 1e-12);
    for (k, (a, b)) in cdf_full.iter().zip(&cdf_quot).enumerate() {
        assert!((a - b).abs() < 1e-9, "cdf[{k}]: full {a} vs quotient {b}");
    }
    assert!((cdf_quot.last().unwrap() - 1.0).abs() < 1e-6);
}

/// Reachable-mode chains refuse to report a (meaningless) expected time
/// for configurations outside the explored set.
#[test]
fn unexplored_configuration_is_reported_not_zeroed() {
    let alg = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
    let spec = alg.legitimacy();
    // The all-zero configuration is terminal-free but from it the chain
    // cannot reach every configuration.
    let seed = stab_core::Configuration::from_vec(vec![0u8, 0, 0, 0]);
    let opts = ExploreOptions::reachable(vec![seed.clone()]);
    let chain = AbsorbingChain::build_with(&alg, Daemon::Central, &spec, CAP, &opts).unwrap();
    assert!(chain.is_explored(&seed));
    // Find some unexplored configuration.
    let ix = SpaceIndexer::new(&alg, CAP).unwrap();
    let unexplored = ix
        .iter()
        .find(|cfg| !chain.is_explored(cfg))
        .expect("the reachable set is strict");
    assert_eq!(chain.transient_index(&unexplored), None);
    let times = chain.expected_steps().unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        chain.expected_from(&times, &unexplored)
    }));
    assert!(result.is_err(), "expected_from must panic, not return 0");
}

/// Quotient + reachable compose for the chain as well.
#[test]
fn reachable_quotient_chain_matches_full() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    let spec = alg.legitimacy();
    let ix = SpaceIndexer::new(&alg, CAP).unwrap();
    let full = AbsorbingChain::build(&alg, Daemon::Synchronous, &spec, CAP).unwrap();
    let opts = ExploreOptions::reachable(ix.iter().collect()).with_ring_quotient();
    let quot = AbsorbingChain::build_with(&alg, Daemon::Synchronous, &spec, CAP, &opts).unwrap();
    assert_eq!(quot.represented_configs(), full.n_configs());
    let t_full = full.expected_steps().unwrap();
    let t_quot = quot.expected_steps().unwrap();
    for cfg in ix.iter() {
        assert!(
            (full.expected_from(&t_full, &cfg) - quot.expected_from(&t_quot, &cfg)).abs() < TOL,
            "{cfg:?}"
        );
    }
}
