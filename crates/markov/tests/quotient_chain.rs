//! Differential tests of quotient and reachable-mode absorbing chains
//! against the full-space chain.
//!
//! A symmetry quotient (rotation, dihedral, leaf permutation) runs the
//! Definition 6 chain on one representative per group orbit. For every
//! admitted algorithm the quotient chain must reproduce — state for
//! state — the full chain's expected hitting times (every concrete
//! configuration's time equals its representative's), absorption
//! probabilities, hitting-time CDFs, and the uniform-initial average
//! (orbit-weighted on the quotient side). The dihedral quotient must
//! additionally agree with the rotation quotient's lumping state for
//! state — the half-size chain loses no precision.

use stab_algorithms::{GreedyColoring, HermanRing, TokenCirculation};
use stab_core::engine::{ExploreOptions, Quotient};
use stab_core::{Algorithm, Daemon, Legitimacy, ProjectedLegitimacy, SpaceIndexer, Transformed};
use stab_graph::builders;
use stab_markov::AbsorbingChain;

const CAP: u64 = 1 << 22;

/// Solver agreement slack: dense elimination vs possibly different
/// pivoting on the lumped system.
const TOL: f64 = 1e-8;

fn hitting_time_differential_with<A, L>(alg: &A, daemon: Daemon, spec: &L, quotient: Quotient)
where
    A: Algorithm + Sync,
    A::State: Sync,
    L: Legitimacy<A::State> + Sync,
{
    let label = format!("{} under {daemon} ({quotient:?})", alg.name());
    let full = AbsorbingChain::build(alg, daemon, spec, CAP).expect("full chain");
    let opts = ExploreOptions::full().with_quotient(quotient);
    let quot = AbsorbingChain::build_with(alg, daemon, spec, CAP, &opts).expect("quotient chain");

    assert!(full.validate_stochastic(), "{label}: full stochastic");
    assert!(quot.validate_stochastic(), "{label}: quotient stochastic");
    assert_eq!(
        full.almost_surely_absorbing().is_ok(),
        quot.almost_surely_absorbing().is_ok(),
        "{label}: absorption verdict"
    );
    assert_eq!(
        quot.represented_configs(),
        full.n_configs(),
        "{label}: orbits tile the space"
    );
    if full.almost_surely_absorbing().is_err() {
        return;
    }

    let full_times = full.expected_steps().expect("full solve");
    let quot_times = quot.expected_steps().expect("quotient solve");

    // Per-configuration agreement: every concrete configuration's hitting
    // time equals its orbit representative's.
    let ix = SpaceIndexer::new(alg, CAP).unwrap();
    for cfg in ix.iter() {
        let t_full = full.expected_from(&full_times, &cfg);
        let t_quot = quot.expected_from(&quot_times, &cfg);
        assert!(
            (t_full - t_quot).abs() < TOL,
            "{label}: {cfg:?}: full {t_full} vs quotient {t_quot}"
        );
    }

    // The orbit-weighted quotient average is the full uniform average.
    let avg_full = full_times.average_uniform(full.n_configs());
    let avg_quot = quot_times.average_weighted(quot.transient_orbits(), quot.represented_configs());
    assert!(
        (avg_full - avg_quot).abs() < TOL,
        "{label}: uniform average {avg_full} vs weighted {avg_quot}"
    );

    // Expected moves (work) lump identically: the per-step activation-size
    // reward is rotation-invariant.
    let full_moves = full.expected_moves().expect("full moves");
    let quot_moves = quot.expected_moves().expect("quotient moves");
    for cfg in ix.iter() {
        let m_full = full.expected_from(&full_moves, &cfg);
        let m_quot = quot.expected_from(&quot_moves, &cfg);
        assert!(
            (m_full - m_quot).abs() < TOL,
            "{label}: moves at {cfg:?}: {m_full} vs {m_quot}"
        );
    }

    // Absorption probabilities agree (all 1 when almost surely absorbing).
    let p_full = full.absorption_probabilities().expect("full absorption");
    let p_quot = quot
        .absorption_probabilities()
        .expect("quotient absorption");
    for (i, p) in p_quot.iter().enumerate() {
        assert!((p - 1.0).abs() < TOL, "{label}: quotient absorption {p}");
        let _ = i;
    }
    for p in &p_full {
        assert!((p - 1.0).abs() < TOL, "{label}: full absorption {p}");
    }
}

fn hitting_time_differential<A, L>(alg: &A, daemon: Daemon, spec: &L)
where
    A: Algorithm + Sync,
    A::State: Sync,
    L: Legitimacy<A::State> + Sync,
{
    hitting_time_differential_with(alg, daemon, spec, Quotient::RingRotation);
}

#[test]
fn herman_quotient_hitting_times_match_full() {
    for n in [3, 5, 7] {
        let alg = HermanRing::on_ring(&builders::ring(n)).unwrap();
        hitting_time_differential(&alg, Daemon::Synchronous, &alg.legitimacy());
    }
}

/// Herman under the dihedral quotient: hitting times, moves, absorption
/// probabilities and averages all coincide with the full space — even
/// though Herman's single steps are not reflection-equivariant, its
/// absorption law is reversal-invariant, which is exactly what the
/// engine's lumped gate certifies on samples and this suite pins in full.
#[test]
fn herman_dihedral_hitting_times_match_full() {
    for n in [3, 5, 7] {
        let alg = HermanRing::on_ring(&builders::ring(n)).unwrap();
        hitting_time_differential_with(
            &alg,
            Daemon::Synchronous,
            &alg.legitimacy(),
            Quotient::RingDihedral,
        );
    }
}

/// The dihedral quotient agrees with the rotation quotient's lumping
/// state for state: every concrete configuration gets the same expected
/// hitting time from both, from ≈ half the states.
#[test]
fn herman_dihedral_matches_rotation_quotient_statewise() {
    let alg = HermanRing::on_ring(&builders::ring(7)).unwrap();
    let spec = alg.legitimacy();
    let rot = AbsorbingChain::build_with(
        &alg,
        Daemon::Synchronous,
        &spec,
        CAP,
        &ExploreOptions::full().with_quotient(Quotient::RingRotation),
    )
    .unwrap();
    let dih = AbsorbingChain::build_with(
        &alg,
        Daemon::Synchronous,
        &spec,
        CAP,
        &ExploreOptions::full().with_quotient(Quotient::RingDihedral),
    )
    .unwrap();
    assert!(dih.n_explored() <= rot.n_explored());
    assert_eq!(dih.represented_configs(), rot.represented_configs());
    let t_rot = rot.expected_steps().unwrap();
    let t_dih = dih.expected_steps().unwrap();
    let ix = SpaceIndexer::new(&alg, CAP).unwrap();
    for cfg in ix.iter() {
        assert!(
            (rot.expected_from(&t_rot, &cfg) - dih.expected_from(&t_dih, &cfg)).abs() < TOL,
            "{cfg:?}"
        );
    }
    // Orbit-weighted averages agree too.
    let avg_rot = t_rot.average_weighted(rot.transient_orbits(), rot.represented_configs());
    let avg_dih = t_dih.average_weighted(dih.transient_orbits(), dih.represented_configs());
    assert!((avg_rot - avg_dih).abs() < TOL);
}

/// Greedy coloring on a star under the leaf-permutation quotient: the
/// central-daemon chain absorbs almost surely and the lumped hitting
/// times match the full space on every concrete configuration.
#[test]
fn coloring_leaf_quotient_hitting_times_match_full() {
    let g = builders::star(5);
    let alg = GreedyColoring::new(&g).unwrap();
    hitting_time_differential_with(
        &alg,
        Daemon::Central,
        &alg.legitimacy(),
        Quotient::Automorphism,
    );
}

#[test]
fn transformed_token_ring_quotient_times_match_full() {
    for daemon in [Daemon::Synchronous, Daemon::Distributed] {
        let base = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
        let alg = Transformed::new(TokenCirculation::on_ring(&builders::ring(4)).unwrap());
        let spec = ProjectedLegitimacy::new(base.legitimacy());
        hitting_time_differential(&alg, daemon, &spec);
    }
}

/// A reachable-mode chain seeded with every configuration reproduces the
/// full chain's times exactly (same states, BFS ids).
#[test]
fn reachable_chain_with_all_seeds_matches_full() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    let spec = alg.legitimacy();
    let ix = SpaceIndexer::new(&alg, CAP).unwrap();
    let full = AbsorbingChain::build(&alg, Daemon::Synchronous, &spec, CAP).unwrap();
    let opts = ExploreOptions::reachable(ix.iter().collect());
    let reach = AbsorbingChain::build_with(&alg, Daemon::Synchronous, &spec, CAP, &opts).unwrap();
    assert_eq!(reach.n_transient(), full.n_transient());
    assert!(reach.validate_stochastic());
    let t_full = full.expected_steps().unwrap();
    let t_reach = reach.expected_steps().unwrap();
    for cfg in ix.iter() {
        assert!(
            (full.expected_from(&t_full, &cfg) - reach.expected_from(&t_reach, &cfg)).abs() < TOL,
            "{cfg:?}"
        );
    }
}

/// A reachable-mode chain from a strict seed set: `transient_index`
/// reports unexplored configurations as `None`, and the explored times
/// match the full chain (hitting times only depend on the forward
/// closure).
#[test]
fn reachable_chain_from_strict_seeds() {
    let alg = Transformed::new(TokenCirculation::on_ring(&builders::ring(3)).unwrap());
    let base = TokenCirculation::on_ring(&builders::ring(3)).unwrap();
    let spec = ProjectedLegitimacy::new(base.legitimacy());
    let seed = Transformed::<TokenCirculation>::lift(
        &stab_core::Configuration::from_vec(vec![1u8, 1, 0]),
        false,
    );
    let opts = ExploreOptions::reachable(vec![seed.clone()]);
    let reach = AbsorbingChain::build_with(&alg, Daemon::Distributed, &spec, CAP, &opts).unwrap();
    let full = AbsorbingChain::build(&alg, Daemon::Distributed, &spec, CAP).unwrap();
    assert!(reach.n_explored() as u64 <= full.n_configs());
    assert!(reach.validate_stochastic());
    let t_reach = reach.expected_steps().unwrap();
    let t_full = full.expected_steps().unwrap();
    assert!(
        (reach.expected_from(&t_reach, &seed) - full.expected_from(&t_full, &seed)).abs() < TOL,
        "seed hitting time"
    );
}

/// The uniform-initial hitting-time CDF of a quotient chain matches the
/// full chain's pointwise: orbit weights make the lumped distribution
/// evolve exactly like the concrete uniform one — for the rotation *and*
/// the dihedral group.
#[test]
fn quotient_cdf_matches_full() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    let spec = alg.legitimacy();
    let full = AbsorbingChain::build(&alg, Daemon::Synchronous, &spec, CAP).unwrap();
    let cdf_full = full.hitting_cdf_uniform(60);
    // Herman(5): 10 of the 32 configurations are legitimate, so the
    // initially absorbed mass is exactly 10/32 on both sides.
    assert!((cdf_full[0] - 10.0 / 32.0).abs() < 1e-12);
    for quotient in [Quotient::RingRotation, Quotient::RingDihedral] {
        let opts = ExploreOptions::full().with_quotient(quotient);
        let quot =
            AbsorbingChain::build_with(&alg, Daemon::Synchronous, &spec, CAP, &opts).unwrap();
        let cdf_quot = quot.hitting_cdf_uniform(60);
        for (k, (a, b)) in cdf_full.iter().zip(&cdf_quot).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "cdf[{k}] ({quotient:?}): full {a} vs quotient {b}"
            );
        }
        assert!((cdf_quot.last().unwrap() - 1.0).abs() < 1e-6);
    }
}

/// Reachable-mode chains refuse to report a (meaningless) expected time
/// for configurations outside the explored set.
#[test]
fn unexplored_configuration_is_reported_not_zeroed() {
    let alg = TokenCirculation::on_ring(&builders::ring(4)).unwrap();
    let spec = alg.legitimacy();
    // The all-zero configuration is terminal-free but from it the chain
    // cannot reach every configuration.
    let seed = stab_core::Configuration::from_vec(vec![0u8, 0, 0, 0]);
    let opts = ExploreOptions::reachable(vec![seed.clone()]);
    let chain = AbsorbingChain::build_with(&alg, Daemon::Central, &spec, CAP, &opts).unwrap();
    assert!(chain.is_explored(&seed));
    // Find some unexplored configuration.
    let ix = SpaceIndexer::new(&alg, CAP).unwrap();
    let unexplored = ix
        .iter()
        .find(|cfg| !chain.is_explored(cfg))
        .expect("the reachable set is strict");
    assert_eq!(chain.transient_index(&unexplored), None);
    let times = chain.expected_steps().unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        chain.expected_from(&times, &unexplored)
    }));
    assert!(result.is_err(), "expected_from must panic, not return 0");
}

/// Quotient + reachable compose for the chain as well.
#[test]
fn reachable_quotient_chain_matches_full() {
    let alg = HermanRing::on_ring(&builders::ring(5)).unwrap();
    let spec = alg.legitimacy();
    let ix = SpaceIndexer::new(&alg, CAP).unwrap();
    let full = AbsorbingChain::build(&alg, Daemon::Synchronous, &spec, CAP).unwrap();
    let opts = ExploreOptions::reachable(ix.iter().collect()).with_ring_quotient();
    let quot = AbsorbingChain::build_with(&alg, Daemon::Synchronous, &spec, CAP, &opts).unwrap();
    assert_eq!(quot.represented_configs(), full.n_configs());
    let t_full = full.expected_steps().unwrap();
    let t_quot = quot.expected_steps().unwrap();
    for cfg in ix.iter() {
        assert!(
            (full.expected_from(&t_full, &cfg) - quot.expected_from(&t_quot, &cfg)).abs() < TOL,
            "{cfg:?}"
        );
    }
}
