//! Guarded-command kernel for the *Weak vs. Self vs. Probabilistic
//! Stabilization* reproduction (Devismes–Tixeuil–Yamashita, ICDCS 2008).
//!
//! This crate implements §2 of the paper as a library:
//!
//! * **Local algorithms** ([`Algorithm`]) are finite sets of guarded actions
//!   `⟨label⟩ :: ⟨guard⟩ → ⟨statement⟩`. Guards may only read the process's
//!   own state and its neighbours' states — enforced syntactically by the
//!   [`View`] abstraction, which is the only state access an algorithm gets.
//! * **Configurations** ([`Configuration`]) are instances of all process
//!   states; steps activate a non-empty subset of enabled processes
//!   ([`Activation`]), all of which read the *pre*-configuration and write
//!   atomically ([`semantics`]).
//! * **Schedulers** (a.k.a. daemons, [`DaemonSpec`]) are points of the
//!   composable (distribution × fairness × boundedness) lattice of the
//!   Dubois–Tixeuil taxonomy; the paper's four daemons — central,
//!   distributed, synchronous, locally central — are named points (and the
//!   legacy [`Daemon`] enum still spells them). Each point has an
//!   enumerated form (for exhaustive checking) and the *randomized* form of
//!   Definition 6 (uniform choice, for Markov analysis and simulation).
//! * **Fairness** ([`Fairness`]) ranges over unfair (the paper's "proper"),
//!   weakly fair, strongly fair and Gouda-fair.
//! * **Specifications** are legitimate-configuration predicates
//!   ([`Legitimacy`]); Definitions 1–3 of the paper (self, probabilistic and
//!   weak stabilization) are decided by the `stab-checker` crate on top of
//!   these.
//! * **The transformer** ([`Transformed`]) is the paper's §4 construction
//!   `Trans(A) :: guard → B ← Rand(true,false); if B then S_A`, which turns a
//!   deterministic weak-stabilizing system into a probabilistic
//!   self-stabilizing one (Theorems 8 and 9).
//! * **The exploration engine** ([`engine`]) materialises the labelled
//!   transition system of an `(algorithm, daemon)` pair as flat CSR
//!   storage shared by the checker and the Markov builder, with three
//!   traversals selectable per run ([`engine::ExploreOptions`]): the full
//!   mixed-radix sweep, on-the-fly reachable-only BFS from a designated
//!   initial set, and ring-rotation quotienting.
//!
//! # Example: a one-bit algorithm
//!
//! ```
//! use stab_core::{ActionId, ActionMask, Algorithm, Configuration, Outcomes, View};
//! use stab_graph::{builders, Graph, NodeId};
//!
//! /// Each process raises its flag iff its flag is down and some
//! /// neighbour's flag is down.
//! struct Flags { g: Graph }
//!
//! impl Algorithm for Flags {
//!     type State = bool;
//!     fn graph(&self) -> &Graph { &self.g }
//!     fn name(&self) -> String { "flags".into() }
//!     fn state_space(&self, _n: NodeId) -> Vec<bool> { vec![false, true] }
//!     fn enabled_actions<V: View<bool>>(&self, v: &V) -> ActionMask {
//!         let lonely = (0..v.degree()).any(|p| !v.neighbor(p.into()));
//!         if !*v.me() && lonely { ActionMask::single(ActionId::A1) } else { ActionMask::empty() }
//!     }
//!     fn apply<V: View<bool>>(&self, _v: &V, _a: ActionId) -> Outcomes<bool> {
//!         Outcomes::certain(true)
//!     }
//! }
//!
//! let alg = Flags { g: builders::path(3) };
//! let cfg = Configuration::from_vec(vec![false, false, true]);
//! assert_eq!(alg.enabled_nodes(&cfg), vec![NodeId::new(0), NodeId::new(1)]);
//! ```

pub mod action;
pub mod algorithm;
pub mod config;
pub mod engine;
pub mod error;
pub mod exec;
pub mod fairness;
pub mod outcome;
pub mod restricted;
pub mod scheduler;
pub mod semantics;
pub mod space;
pub mod spec;
pub mod transformer;
pub mod view;

pub use action::{ActionId, ActionMask};
pub use algorithm::{Algorithm, LocalState};
pub use config::Configuration;
pub use error::CoreError;
pub use exec::Trace;
pub use fairness::{Fairness, FairnessSet};
pub use outcome::Outcomes;
pub use restricted::Restricted;
pub use scheduler::{Activation, Boundedness, Daemon, DaemonSpec, Distribution};
pub use space::SpaceIndexer;
pub use spec::{Legitimacy, Predicate};
pub use transformer::{Coined, ProjectedLegitimacy, Transformed};
pub use view::{ConfigView, View};
