//! The weak→probabilistic transformer of §4 of the paper.
//!
//! Every action `A :: guard → S` of the input algorithm becomes
//!
//! ```text
//! Trans(A) :: guard → B ← Rand(true, false); if B then S
//! ```
//!
//! i.e. a scheduled process first tosses a coin into its fresh boolean
//! P-variable `B` and performs the original statement only on heads. The
//! paper proves (Theorems 8 and 9) that if the input is a deterministic
//! weak-stabilizing system with finitely many configurations under a
//! distributed scheduler, the transformed system is probabilistically
//! self-stabilizing under the synchronous *and* the distributed randomized
//! scheduler. The coin simulates a randomized scheduler even when the real
//! scheduler is adversarially synchronous — the conflict-manager idea of
//! Gradinariu–Tixeuil the paper builds on.
//!
//! [`Transformed`] implements the construction generically over any
//! [`Algorithm`]; [`Coined`] is the augmented state `(S, B)`;
//! [`ProjectedLegitimacy`] lifts a legitimacy predicate through the
//! projection (the paper's Definition 7:
//! `L_Prob = {γ : γ|_Det ∈ L_Det}`).

use std::fmt;

use stab_graph::{Graph, NodeId, PortId};

use crate::action::{ActionId, ActionMask};
use crate::algorithm::Algorithm;
use crate::config::Configuration;
use crate::outcome::Outcomes;
use crate::spec::Legitimacy;
use crate::view::View;

/// The transformed local state: the original state plus the coin variable
/// `B` added by `Trans`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coined<S> {
    /// The original (D-variable) state.
    pub base: S,
    /// The coin `B`: result of the most recent `Rand(true, false)`.
    pub coin: bool,
}

impl<S> Coined<S> {
    /// Pairs a base state with a coin value.
    pub fn new(base: S, coin: bool) -> Self {
        Coined { base, coin }
    }
}

impl<S: fmt::Debug> fmt::Debug for Coined<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{}", self.base, if self.coin { "⁺" } else { "⁻" })
    }
}

/// A [`View`] over transformed state that exposes only the base components,
/// letting the inner algorithm's guards and statements run unchanged and
/// without copying any state.
pub struct ProjectedView<'a, V> {
    inner: &'a V,
}

impl<'a, V> ProjectedView<'a, V> {
    /// Wraps a view of coined state.
    pub fn new(inner: &'a V) -> Self {
        ProjectedView { inner }
    }
}

impl<S, V: View<Coined<S>>> View<S> for ProjectedView<'_, V> {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn degree(&self) -> usize {
        self.inner.degree()
    }

    fn me(&self) -> &S {
        &self.inner.me().base
    }

    fn neighbor(&self, port: PortId) -> &S {
        &self.inner.neighbor(port).base
    }
}

/// The transformer `Trans(·)` applied to an algorithm.
///
/// The default coin is fair, as in the paper; [`Transformed::with_bias`]
/// generalizes to `P(B = true) = p` for the coin-bias ablation study (the
/// paper's proofs only need `0 < p < 1`).
///
/// ```
/// use stab_core::{Algorithm, Transformed};
/// # use stab_core::{ActionId, ActionMask, Outcomes, View};
/// # use stab_graph::{builders, Graph, NodeId};
/// # struct Toy { g: Graph }
/// # impl Algorithm for Toy {
/// #     type State = bool;
/// #     fn graph(&self) -> &Graph { &self.g }
/// #     fn name(&self) -> String { "toy".into() }
/// #     fn state_space(&self, _n: NodeId) -> Vec<bool> { vec![false, true] }
/// #     fn enabled_actions<V: View<bool>>(&self, v: &V) -> ActionMask {
/// #         ActionMask::when(!*v.me(), ActionId::A1)
/// #     }
/// #     fn apply<V: View<bool>>(&self, _v: &V, _a: ActionId) -> Outcomes<bool> {
/// #         Outcomes::certain(true)
/// #     }
/// # }
/// let t = Transformed::new(Toy { g: builders::path(2) });
/// assert!(t.is_probabilistic());
/// assert_eq!(t.name(), "Trans(toy)");
/// ```
#[derive(Debug, Clone)]
pub struct Transformed<A> {
    inner: A,
    p_heads: f64,
}

impl<A> Transformed<A> {
    /// Transforms `inner` with the paper's fair coin.
    pub fn new(inner: A) -> Self {
        Transformed {
            inner,
            p_heads: 0.5,
        }
    }

    /// Transforms `inner` with a biased coin, `P(B = true) = p_heads`.
    ///
    /// # Panics
    ///
    /// Panics if `p_heads` is not strictly between 0 and 1 (the probability
    /// argument of Theorems 8–9 requires both coin outcomes possible).
    pub fn with_bias(inner: A, p_heads: f64) -> Self {
        assert!(
            p_heads > 0.0 && p_heads < 1.0,
            "coin bias must lie strictly between 0 and 1, got {p_heads}"
        );
        Transformed { inner, p_heads }
    }

    /// The transformed algorithm's coin bias.
    pub fn bias(&self) -> f64 {
        self.p_heads
    }

    /// The untransformed algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Algorithm> Transformed<A> {
    /// Projects a transformed configuration onto the inner variables
    /// (`γ|_S_Det` in the paper).
    pub fn project(cfg: &Configuration<Coined<A::State>>) -> Configuration<A::State> {
        cfg.map(|c| c.base.clone())
    }

    /// Lifts an inner configuration by giving every process coin value
    /// `coin`.
    pub fn lift(cfg: &Configuration<A::State>, coin: bool) -> Configuration<Coined<A::State>> {
        cfg.map(|s| Coined::new(s.clone(), coin))
    }
}

impl<A: Algorithm> Algorithm for Transformed<A> {
    type State = Coined<A::State>;

    fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    fn name(&self) -> String {
        if (self.p_heads - 0.5).abs() < f64::EPSILON {
            format!("Trans({})", self.inner.name())
        } else {
            format!("Trans({}, p={})", self.inner.name(), self.p_heads)
        }
    }

    fn state_space(&self, node: NodeId) -> Vec<Self::State> {
        let mut out = Vec::new();
        for base in self.inner.state_space(node) {
            out.push(Coined::new(base.clone(), false));
            out.push(Coined::new(base, true));
        }
        out
    }

    fn enabled_actions<V: View<Self::State>>(&self, view: &V) -> ActionMask {
        // Trans(A) has exactly A's guards (the coin is written, never read).
        self.inner.enabled_actions(&ProjectedView::new(view))
    }

    fn apply<V: View<Self::State>>(&self, view: &V, action: ActionId) -> Outcomes<Self::State> {
        let projected = ProjectedView::new(view);
        let inner_outcomes = self.inner.apply(&projected, action);
        // Heads (prob p): B ← true and the inner statement fires.
        // Tails (prob 1−p): B ← false and the base state is unchanged.
        let unchanged = Coined::new(view.me().base.clone(), false);
        let mut entries: Vec<(f64, Self::State)> = inner_outcomes
            .into_entries()
            .into_iter()
            .map(|(q, s)| (self.p_heads * q, Coined::new(s, true)))
            .collect();
        entries.push((1.0 - self.p_heads, unchanged));
        Outcomes::weighted(entries)
    }

    fn is_initial(&self, cfg: &Configuration<Self::State>) -> bool {
        self.inner.is_initial(&Self::project(cfg))
    }

    fn is_probabilistic(&self) -> bool {
        true
    }
}

/// Definition 7 of the paper: a transformed configuration is legitimate iff
/// its projection on the inner variables is legitimate.
pub struct ProjectedLegitimacy<L> {
    inner: L,
}

impl<L> ProjectedLegitimacy<L> {
    /// Lifts `inner` through the coin projection.
    pub fn new(inner: L) -> Self {
        ProjectedLegitimacy { inner }
    }
}

impl<S: Clone, L: Legitimacy<S>> Legitimacy<Coined<S>> for ProjectedLegitimacy<L> {
    fn name(&self) -> String {
        format!("projected({})", self.inner.name())
    }

    fn is_legitimate(&self, cfg: &Configuration<Coined<S>>) -> bool {
        self.inner.is_legitimate(&cfg.map(|c| c.base.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::test_support::Infection;
    use crate::scheduler::Activation;
    use crate::semantics::successor_distribution;
    use crate::spec::Predicate;
    use stab_graph::builders;

    fn transformed() -> Transformed<Infection> {
        Transformed::new(Infection {
            g: builders::path(3),
        })
    }

    fn coined(states: &[(u8, bool)]) -> Configuration<Coined<u8>> {
        Configuration::from_vec(states.iter().map(|&(b, c)| Coined::new(b, c)).collect())
    }

    #[test]
    fn state_space_doubles() {
        let t = transformed();
        assert_eq!(t.state_space(NodeId::new(0)).len(), 4); // {0,1} x {F,T}
    }

    #[test]
    fn guards_ignore_the_coin() {
        let t = transformed();
        for coin0 in [false, true] {
            for coin1 in [false, true] {
                let cfg = coined(&[(1, coin0), (0, coin1), (0, false)]);
                assert!(t.is_enabled(&cfg, NodeId::new(1)), "guard must not read B");
                assert!(!t.is_enabled(&cfg, NodeId::new(2)));
            }
        }
    }

    #[test]
    fn apply_is_the_paper_coin_toss() {
        let t = transformed();
        let cfg = coined(&[(1, false), (0, true), (0, false)]);
        let act = Activation::singleton(NodeId::new(1));
        let dist = successor_distribution(&t, &cfg, &act);
        assert_eq!(dist.len(), 2);
        // Heads: base becomes 1 and coin true; tails: base unchanged, coin false.
        let heads = dist
            .iter()
            .find(|(_, c)| *c.get(NodeId::new(1)) == Coined::new(1, true))
            .expect("heads branch present");
        let tails = dist
            .iter()
            .find(|(_, c)| *c.get(NodeId::new(1)) == Coined::new(0, false))
            .expect("tails branch present");
        assert!((heads.0 - 0.5).abs() < 1e-12);
        assert!((tails.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn biased_coin_changes_probabilities() {
        let t = Transformed::with_bias(
            Infection {
                g: builders::path(3),
            },
            0.9,
        );
        let cfg = coined(&[(1, false), (0, false), (0, false)]);
        let act = Activation::singleton(NodeId::new(1));
        let dist = successor_distribution(&t, &cfg, &act);
        let heads = dist
            .iter()
            .find(|(_, c)| c.get(NodeId::new(1)).coin)
            .unwrap();
        assert!((heads.0 - 0.9).abs() < 1e-12);
        assert!(t.name().contains("p=0.9"));
    }

    #[test]
    #[should_panic(expected = "strictly between 0 and 1")]
    fn bias_validation() {
        let _ = Transformed::with_bias(
            Infection {
                g: builders::path(2),
            },
            0.0,
        );
    }

    #[test]
    fn project_and_lift_are_inverse() {
        let base = Configuration::from_vec(vec![1u8, 0, 1]);
        let lifted = Transformed::<Infection>::lift(&base, true);
        assert!(lifted.states().iter().all(|c| c.coin));
        let projected = Transformed::<Infection>::project(&lifted);
        assert_eq!(projected, base);
    }

    #[test]
    fn projected_legitimacy_ignores_coins() {
        let spec = ProjectedLegitimacy::new(Predicate::new("all-ones", |c: &Configuration<u8>| {
            c.states().iter().all(|&s| s == 1)
        }));
        assert!(spec.is_legitimate(&coined(&[(1, true), (1, false)])));
        assert!(!spec.is_legitimate(&coined(&[(1, true), (0, true)])));
        assert_eq!(spec.name(), "projected(all-ones)");
    }

    #[test]
    fn transformed_name_and_flags() {
        let t = transformed();
        assert_eq!(t.name(), "Trans(infection)");
        assert!(t.is_probabilistic());
        assert!(!t.inner().is_probabilistic());
        assert!((t.bias() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coined_debug_marks_coin() {
        assert_eq!(format!("{:?}", Coined::new(3u8, true)), "3⁺");
        assert_eq!(format!("{:?}", Coined::new(3u8, false)), "3⁻");
    }
}
