//! Local views: the only state access a guarded action gets.
//!
//! In the paper's model, the guard of an action at process `p` is a boolean
//! expression involving *some variables of `p` and its neighbours*, and the
//! statement updates *variables of `p`* only. The [`View`] trait makes this
//! locality a compile-time property: algorithm code receives a view exposing
//! exactly its own state, its degree and its neighbours' states by port —
//! nothing else.

use stab_graph::{Graph, NodeId, PortId};

use crate::config::Configuration;

/// Read access to a process's local neighbourhood: its own state, its degree
/// and its neighbours' states indexed by local port.
///
/// Implementations exist for plain configurations ([`ConfigView`]) and for
/// the transformer's projected view
/// ([`crate::transformer::ProjectedView`]), which lets an inner algorithm
/// read through the coin wrapper without copying states.
pub trait View<S> {
    /// The process under evaluation. Anonymous algorithms may use this only
    /// as an opaque key into per-node constants (e.g. a ring orientation);
    /// branching on its numeric value would break anonymity.
    fn node(&self) -> NodeId;

    /// Degree `Δ_p` of the process.
    fn degree(&self) -> usize;

    /// The process's own state.
    fn me(&self) -> &S;

    /// The state of the neighbour behind local `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    fn neighbor(&self, port: PortId) -> &S;

    /// Number of neighbours whose state satisfies `pred` (a recurring
    /// pattern: `|Children_p|` in Algorithm 2, token tests, etc.).
    fn count_neighbors(&self, mut pred: impl FnMut(&S) -> bool) -> usize
    where
        Self: Sized,
    {
        (0..self.degree())
            .filter(|&p| pred(self.neighbor(PortId::new(p))))
            .count()
    }

    /// The lowest port whose neighbour state satisfies `pred`
    /// (the `min≺p` selector of Algorithm 2's Action A3).
    fn first_port_where(&self, mut pred: impl FnMut(&S) -> bool) -> Option<PortId>
    where
        Self: Sized,
    {
        (0..self.degree())
            .map(PortId::new)
            .find(|&p| pred(self.neighbor(p)))
    }
}

/// The canonical [`View`] over a [`Configuration`]: zero-copy references into
/// the configuration's state slice.
#[derive(Debug, Clone, Copy)]
pub struct ConfigView<'a, S> {
    graph: &'a Graph,
    cfg: &'a Configuration<S>,
    node: NodeId,
}

impl<'a, S> ConfigView<'a, S> {
    /// Creates the view of `node` within `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration size differs from the graph size or
    /// `node` is out of range.
    pub fn new(graph: &'a Graph, cfg: &'a Configuration<S>, node: NodeId) -> Self {
        assert_eq!(
            graph.n(),
            cfg.len(),
            "configuration size must match graph size"
        );
        assert!(node.index() < graph.n(), "node out of range");
        ConfigView { graph, cfg, node }
    }
}

impl<S> View<S> for ConfigView<'_, S> {
    #[inline]
    fn node(&self) -> NodeId {
        self.node
    }

    #[inline]
    fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    #[inline]
    fn me(&self) -> &S {
        self.cfg.get(self.node)
    }

    #[inline]
    fn neighbor(&self, port: PortId) -> &S {
        self.cfg.get(self.graph.neighbor(self.node, port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stab_graph::builders;

    fn setup() -> (Graph, Configuration<u8>) {
        (
            builders::path(4),
            Configuration::from_vec(vec![10, 11, 12, 13]),
        )
    }

    #[test]
    fn view_exposes_me_and_neighbors() {
        let (g, cfg) = setup();
        let v = ConfigView::new(&g, &cfg, NodeId::new(1));
        assert_eq!(v.node(), NodeId::new(1));
        assert_eq!(v.degree(), 2);
        assert_eq!(*v.me(), 11);
        assert_eq!(*v.neighbor(PortId::new(0)), 10);
        assert_eq!(*v.neighbor(PortId::new(1)), 12);
    }

    #[test]
    fn count_neighbors_counts_matching_states() {
        let (g, cfg) = setup();
        let v = ConfigView::new(&g, &cfg, NodeId::new(1));
        assert_eq!(v.count_neighbors(|&s| s >= 12), 1);
        assert_eq!(v.count_neighbors(|_| true), 2);
        assert_eq!(v.count_neighbors(|_| false), 0);
    }

    #[test]
    fn first_port_where_finds_lowest_port() {
        let (g, cfg) = setup();
        let v = ConfigView::new(&g, &cfg, NodeId::new(2));
        // Node 2's ports: 0 -> node 1 (11), 1 -> node 3 (13).
        assert_eq!(v.first_port_where(|&s| s % 2 == 1), Some(PortId::new(0)));
        assert_eq!(v.first_port_where(|&s| s == 13), Some(PortId::new(1)));
        assert_eq!(v.first_port_where(|&s| s > 100), None);
    }

    #[test]
    fn leaf_view_has_single_port() {
        let (g, cfg) = setup();
        let v = ConfigView::new(&g, &cfg, NodeId::new(0));
        assert_eq!(v.degree(), 1);
        assert_eq!(*v.neighbor(PortId::new(0)), 11);
    }

    #[test]
    #[should_panic(expected = "configuration size must match")]
    fn size_mismatch_panics() {
        let g = builders::path(3);
        let cfg = Configuration::from_vec(vec![0u8; 4]);
        let _ = ConfigView::new(&g, &cfg, NodeId::new(0));
    }
}
