//! Configurations: an instance of the state of every process (§2 of the
//! paper).

use std::fmt;

use stab_graph::NodeId;

/// A configuration of the system: one local state per process, indexed by
/// [`NodeId`].
///
/// Configurations are immutable values; updates go through
/// [`Configuration::with_state`] (copy-on-write of a fresh configuration) or
/// [`Configuration::set`] on an owned, mutable configuration. They implement
/// `Eq + Hash + Ord` so checkers and Markov builders can index state spaces
/// with them.
///
/// ```
/// use stab_core::Configuration;
/// use stab_graph::NodeId;
///
/// let c = Configuration::from_vec(vec![0u8, 1, 2]);
/// assert_eq!(c.len(), 3);
/// assert_eq!(*c.get(NodeId::new(1)), 1);
/// let c2 = c.with_state(NodeId::new(1), 9);
/// assert_eq!(*c2.get(NodeId::new(1)), 9);
/// assert_eq!(*c.get(NodeId::new(1)), 1, "original unchanged");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Configuration<S> {
    states: Box<[S]>,
}

impl<S> Configuration<S> {
    /// Builds a configuration from a vector of per-process states
    /// (index `i` is the state of process `Pi`).
    pub fn from_vec(states: Vec<S>) -> Self {
        Configuration {
            states: states.into_boxed_slice(),
        }
    }

    /// Number of processes.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the configuration has no processes (never the case for
    /// configurations of real systems; present for completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of process `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn get(&self, node: NodeId) -> &S {
        &self.states[node.index()]
    }

    /// Overwrites the state of process `node` in place.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn set(&mut self, node: NodeId, state: S) {
        self.states[node.index()] = state;
    }

    /// Iterator over `(NodeId, &S)` pairs in process order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &S)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId::new(i), s))
    }

    /// The per-process states as a slice.
    #[inline]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Maps every state through `f`, yielding a configuration of a different
    /// state type (used for projections, e.g. dropping the transformer's
    /// coin).
    pub fn map<T>(&self, f: impl FnMut(&S) -> T) -> Configuration<T> {
        Configuration::from_vec(self.states.iter().map(f).collect())
    }
}

impl<S: Clone> Configuration<S> {
    /// Returns a copy of this configuration with the state of `node`
    /// replaced.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn with_state(&self, node: NodeId, state: S) -> Self {
        let mut next = self.clone();
        next.set(node, state);
        next
    }
}

impl<S: fmt::Debug> fmt::Debug for Configuration<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s:?}")?;
        }
        write!(f, "⟩")
    }
}

impl<S> FromIterator<S> for Configuration<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Configuration::from_vec(iter.into_iter().collect())
    }
}

impl<S> From<Vec<S>> for Configuration<S> {
    fn from(states: Vec<S>) -> Self {
        Configuration::from_vec(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let c: Configuration<u8> = vec![3, 1, 4].into();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(*c.get(NodeId::new(0)), 3);
        assert_eq!(c.states(), &[3, 1, 4]);
    }

    #[test]
    fn set_mutates_in_place() {
        let mut c = Configuration::from_vec(vec![0, 0]);
        c.set(NodeId::new(1), 7);
        assert_eq!(*c.get(NodeId::new(1)), 7);
    }

    #[test]
    fn with_state_leaves_original_untouched() {
        let a = Configuration::from_vec(vec![false, false]);
        let b = a.with_state(NodeId::new(0), true);
        assert_ne!(a, b);
        assert!(!*a.get(NodeId::new(0)));
        assert!(*b.get(NodeId::new(0)));
    }

    #[test]
    fn iter_yields_node_ids_in_order() {
        let c = Configuration::from_vec(vec!['a', 'b']);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(NodeId::new(0), &'a'), (NodeId::new(1), &'b')]);
    }

    #[test]
    fn map_projects_states() {
        let c = Configuration::from_vec(vec![(1u8, true), (2, false)]);
        let projected = c.map(|&(v, _)| v);
        assert_eq!(projected.states(), &[1, 2]);
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = Configuration::from_vec(vec![1, 2, 3]);
        let b = Configuration::from_vec(vec![1, 2, 3]);
        let c = Configuration::from_vec(vec![3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn debug_uses_angle_brackets() {
        let c = Configuration::from_vec(vec![1, 2]);
        assert_eq!(format!("{c:?}"), "⟨1, 2⟩");
    }

    #[test]
    fn from_iterator_collects() {
        let c: Configuration<usize> = (0..4).collect();
        assert_eq!(c.states(), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_access_panics() {
        let c = Configuration::from_vec(vec![0u8]);
        let _ = c.get(NodeId::new(5));
    }
}
