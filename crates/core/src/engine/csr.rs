//! Compressed-sparse-row storage for transition systems and sparse
//! matrices.
//!
//! The seed implementation stored one `Vec` per configuration
//! (`Vec<Vec<Edge>>` in the checker, `Vec<Vec<(u32, f64)>>` in the Markov
//! builder): one heap allocation and one pointer-chase per row. [`Csr`]
//! flattens every row into a single `data` vector addressed through an
//! `offsets` array, which is both allocation-free to traverse and cache
//! friendly — the layout every analysis (Tarjan, reachability, Gauss–
//! Seidel) actually wants.

use crate::error::CoreError;

/// A flat row-major sparse structure: row `i` is
/// `data[offsets[i] .. offsets[i + 1]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<E> {
    offsets: Vec<u32>,
    data: Vec<E>,
}

impl<E> Csr<E> {
    /// Fallible [`Csr::from_counts`]: the offset accumulation is
    /// `checked_add`, so a total past the u32 offset width surfaces as
    /// [`CoreError::OffsetOverflow`] instead of wrapping or aborting —
    /// the form planners and budgeted builders want.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OffsetOverflow`] when `Σ counts` exceeds
    /// `u32::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != Σ counts` — a caller logic error, not a
    /// size condition.
    pub fn try_from_counts(counts: &[u32], data: Vec<E>) -> Result<Self, CoreError> {
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc: u32 = 0;
        offsets.push(0);
        for &c in counts {
            acc = acc.checked_add(c).ok_or(CoreError::OffsetOverflow {
                what: "CSR offset",
                value: acc as u128 + c as u128,
            })?;
            offsets.push(acc);
        }
        assert_eq!(
            acc as usize,
            data.len(),
            "row counts do not match data length"
        );
        Ok(Csr { offsets, data })
    }

    /// Assembles a CSR from per-row counts and the concatenated row data
    /// (row-major, already in row order).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != Σ counts` or the total exceeds `u32::MAX`
    /// (use [`Csr::try_from_counts`] to get the overflow as a typed
    /// error instead).
    pub fn from_counts(counts: &[u32], data: Vec<E>) -> Self {
        Self::try_from_counts(counts, data).expect("CSR size exceeds u32 offsets")
    }

    /// Fallible [`Csr::from_rows`]: oversized rows and oversized totals
    /// surface as [`CoreError::OffsetOverflow`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OffsetOverflow`] when a single row exceeds
    /// `u32::MAX` entries or `Σ` row lengths exceeds `u32::MAX`.
    pub fn try_from_rows(rows: Vec<Vec<E>>) -> Result<Self, CoreError> {
        let counts: Vec<u32> = rows
            .iter()
            .map(|r| super::ids::try_id(r.len(), "CSR row length"))
            .collect::<Result<_, _>>()?;
        let data: Vec<E> = rows.into_iter().flatten().collect();
        Self::try_from_counts(&counts, data)
    }

    /// Builds a CSR from nested rows (convenience for tests and small
    /// call sites; the hot paths assemble flat data directly).
    ///
    /// # Panics
    ///
    /// Panics if any single row holds more than `u32::MAX` entries (the
    /// per-row counts are u32 — a checked conversion, so oversized rows
    /// fail loudly instead of silently corrupting the offsets), or if the
    /// total exceeds `u32::MAX` (as [`Csr::from_counts`]).
    pub fn from_rows(rows: Vec<Vec<E>>) -> Self {
        let counts: Vec<u32> = rows
            .iter()
            .map(|r| u32::try_from(r.len()).expect("CSR row length exceeds u32::MAX entries"))
            .collect();
        let data: Vec<E> = rows.into_iter().flatten().collect();
        Self::from_counts(&counts, data)
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored entries.
    #[inline]
    pub fn n_entries(&self) -> usize {
        self.data.len()
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[E] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterator over all rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[E]> + '_ {
        (0..self.n_rows()).map(move |i| self.row(i))
    }

    /// The concatenated row data.
    #[inline]
    pub fn flat(&self) -> &[E] {
        &self.data
    }

    /// Inverts the adjacency structure: entry `e` in row `i` with
    /// `key(e) = j` becomes entry `i` in row `j` of the result. Rows of the
    /// result are sorted ascending (counting-sort order). This is the
    /// reverse CSR used by backward reachability, replacing the seed's
    /// ad-hoc `preds: Vec<Vec<u32>>`.
    pub fn invert(&self, key: impl Fn(&E) -> u32) -> Csr<u32> {
        let n = self.n_rows();
        let mut counts = vec![0u32; n];
        for e in &self.data {
            counts[key(e) as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut data = vec![0u32; self.data.len()];
        for i in 0..n {
            for e in self.row(i) {
                let j = key(e) as usize;
                // lint: cast-ok(row index is bounded by the u32 offset width)
                data[cursor[j] as usize] = i as u32;
                cursor[j] += 1;
            }
        }
        Csr { offsets, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_slices_rows() {
        let csr = Csr::from_counts(&[2, 0, 3], vec![10, 11, 20, 21, 22]);
        assert_eq!(csr.n_rows(), 3);
        assert_eq!(csr.n_entries(), 5);
        assert_eq!(csr.row(0), &[10, 11]);
        assert_eq!(csr.row(1), &[] as &[i32]);
        assert_eq!(csr.row(2), &[20, 21, 22]);
        let rows: Vec<&[i32]> = csr.rows().collect();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn from_rows_round_trips() {
        let csr = Csr::from_rows(vec![vec![1u32], vec![], vec![2, 3]]);
        assert_eq!(csr.row(0), &[1]);
        assert_eq!(csr.row(2), &[2, 3]);
        assert_eq!(csr.flat(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "do not match")]
    fn mismatched_counts_panic() {
        let _ = Csr::from_counts(&[1], vec![1u8, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 offsets")]
    fn offset_overflow_panics_before_corrupting() {
        // The running total is checked against u32::MAX *before* the
        // data-length comparison, so overflow can never wrap silently.
        let _ = Csr::<u8>::from_counts(&[u32::MAX, 1], vec![]);
    }

    #[test]
    fn try_from_counts_surfaces_overflow_as_typed_error() {
        let e = Csr::<u8>::try_from_counts(&[u32::MAX, 1], vec![]).unwrap_err();
        assert!(matches!(
            e,
            CoreError::OffsetOverflow {
                what: "CSR offset",
                ..
            }
        ));
        assert!(e.to_string().contains("4294967296"));
    }

    #[test]
    fn try_from_rows_round_trips_small_rows() {
        let csr = Csr::try_from_rows(vec![vec![1u32], vec![], vec![2, 3]]).unwrap();
        assert_eq!(csr.row(0), &[1]);
        assert_eq!(csr.row(2), &[2, 3]);
    }

    #[test]
    fn invert_builds_predecessor_rows() {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {0, 2}
        let csr = Csr::from_rows(vec![vec![1u32, 2], vec![2], vec![0, 2]]);
        let rev = csr.invert(|&j| j);
        assert_eq!(rev.row(0), &[2]);
        assert_eq!(rev.row(1), &[0]);
        assert_eq!(rev.row(2), &[0, 1, 2]);
    }
}
