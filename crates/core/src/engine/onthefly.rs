//! Traversal selection: the full mixed-radix sweep, the symmetry-quotient
//! sweep, and on-the-fly reachable-only BFS with hash-interned
//! configurations.
//!
//! The full sweep materialises every configuration, so state-space size —
//! not speed — caps the largest checkable instance. The two traversals
//! here push past that cap along independent axes:
//!
//! * the **quotient sweep** stores one representative per orbit of the
//!   selected symmetry group ([`Quotient`]): ≈ `total / N` states on an
//!   `N`-ring under rotations, ≈ `total / 2N` under the dihedral group,
//!   up to `∏ |class|!` less on stars and trees under leaf permutations —
//!   still visiting every index once to find the representatives;
//! * the **reachable BFS** stores only configurations reachable from a
//!   designated initial set, discovered frontier by frontier, with a
//!   `HashMap` interner handing out dense ids in discovery order — the
//!   standard on-the-fly construction of explicit-state model checkers.
//!
//! Both compose: a reachable BFS over canonical representatives explores
//! the quotient of the reachable set.

use std::collections::HashMap;

use crate::algorithm::Algorithm;
use crate::config::Configuration;
use crate::scheduler::DaemonSpec;
use crate::space::SpaceIndexer;
use crate::spec::Legitimacy;
use crate::CoreError;

use super::bitset::BitSet;
use super::edgestore::{EdgeStorageBuilder, EdgeStoreKind};
use super::explore::{
    conflict_masks, run_fingerprint, Chunk, Edge, MergeState, TransitionSystem, COMPRESSED_BATCH,
};
use super::ids;
use super::parallel;
use super::quotient::{CanonScratch, GroupCanonicalizer};
use super::resilience::{
    CheckpointConfig, Checkpointer, FinalMeta, LabelBits, RunGuard, SnapshotSource,
};
use super::rowgen::RowGen;
use super::spill::SpillConfig;

/// How to traverse the configuration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreMode<S> {
    /// Sweep every mixed-radix index (the stabilization default, `I = C`).
    Full,
    /// Breadth-first search from the designated initial configurations;
    /// only reachable configurations are interned and explored, and the
    /// system's initial set is exactly the seeds.
    Reachable {
        /// The designated initial configurations.
        seeds: Vec<Configuration<S>>,
    },
}

/// Symmetry reduction applied to configuration ids: which permutation
/// group of the communication graph the exploration quotients by (one id
/// per group orbit, see [`GroupCanonicalizer`]).
///
/// Every quotient requires the algorithm to respect the group and the
/// specification to be invariant under it — both are checked per run by
/// the engine's equivariance gate, which rejects unsound combinations
/// with [`CoreError::QuotientUnsupported`] *per algorithm*, not per
/// topology (e.g. Dijkstra's rooted ring is rejected on the very topology
/// Herman's ring is accepted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Quotient {
    /// No reduction: one id per configuration.
    #[default]
    None,
    /// One id per rotation orbit of a uniform ring (cyclic group `C_N`,
    /// up to `N`-fold reduction).
    RingRotation,
    /// One id per rotation-or-reflection orbit of a uniform ring
    /// (dihedral group `D_N`, up to `2N`-fold reduction).
    RingDihedral,
    /// The topology-derived full-automorphism quotient: dihedral on
    /// rings, the leaf-permutation subgroup on stars and trees
    /// (up to `∏ |class|!`-fold reduction).
    Automorphism,
}

impl Quotient {
    /// Stable lower-case label (`"none"` / `"ring-rotation"` /
    /// `"ring-dihedral"` / `"automorphism"`) used by plan records and the
    /// `BENCH_explore.json` schema.
    pub fn label(self) -> &'static str {
        match self {
            Quotient::None => "none",
            Quotient::RingRotation => "ring-rotation",
            Quotient::RingDihedral => "ring-dihedral",
            Quotient::Automorphism => "automorphism",
        }
    }
}

/// Which traversal produced a [`TransitionSystem`] (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalMode {
    /// Full sweep (plain or quotient).
    Full,
    /// Reachable-only BFS from designated seeds.
    Reachable,
}

/// Per-run exploration options for
/// [`TransitionSystem::explore_with`].
///
/// ```
/// use stab_core::engine::{ExploreOptions, Quotient};
/// let opts: ExploreOptions<u8> = ExploreOptions::full().with_ring_quotient();
/// assert_eq!(opts.quotient, Quotient::RingRotation);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions<S> {
    /// The traversal: full sweep or reachable-only BFS.
    pub mode: ExploreMode<S>,
    /// Optional symmetry reduction.
    pub quotient: Quotient,
    /// Reachable-mode safety valve: the BFS fails with
    /// [`CoreError::StateSpaceTooLarge`] once more states than this are
    /// interned (default `u32::MAX`, the id-width limit; larger caps are
    /// rejected with [`CoreError::StateCapExceedsIdWidth`]).
    pub max_states: u64,
    /// Which edge-store tier the exploration materialises (default
    /// [`EdgeStoreKind::Flat`]; select [`EdgeStoreKind::Compressed`] for
    /// instances whose 24 B/edge flat store exceeds RAM).
    pub edge_store: EdgeStoreKind,
    /// Periodic checkpointing of exploration state to a frame directory
    /// (default off). With checkpointing the exploration runs
    /// sequentially so every frame snapshots a deterministic prefix; a
    /// re-run with the same options resumes from the frames on disk, and
    /// [`TransitionSystem::resume`] reconstructs a completed run.
    pub checkpoint: Option<CheckpointConfig>,
    /// Disk-tier spill placement and budgets (chunk size, pinned cache
    /// bytes); ignored by the in-RAM tiers. With no explicit directory
    /// a checkpointed run spills next to its frames
    /// (`<checkpoint-dir>/spill`) and an unanchored run uses a
    /// self-cleaning temp directory.
    pub spill: SpillConfig,
}

impl<S> ExploreOptions<S> {
    /// The default traversal: full sweep, no quotient, flat edge store.
    pub fn full() -> Self {
        ExploreOptions {
            mode: ExploreMode::Full,
            quotient: Quotient::None,
            max_states: u32::MAX as u64,
            edge_store: EdgeStoreKind::Flat,
            checkpoint: None,
            spill: SpillConfig::default(),
        }
    }

    /// Reachable-only BFS from `seeds`.
    pub fn reachable(seeds: Vec<Configuration<S>>) -> Self {
        ExploreOptions {
            mode: ExploreMode::Reachable { seeds },
            quotient: Quotient::None,
            max_states: u32::MAX as u64,
            edge_store: EdgeStoreKind::Flat,
            checkpoint: None,
            spill: SpillConfig::default(),
        }
    }

    /// Selects the symmetry group the traversal quotients by.
    ///
    /// ```
    /// use stab_core::engine::{ExploreOptions, Quotient};
    /// let opts: ExploreOptions<u8> = ExploreOptions::full().with_quotient(Quotient::RingDihedral);
    /// assert_eq!(opts.quotient, Quotient::RingDihedral);
    /// ```
    #[must_use]
    pub fn with_quotient(mut self, quotient: Quotient) -> Self {
        self.quotient = quotient;
        self
    }

    /// Adds the ring-rotation quotient to the traversal (shorthand for
    /// [`ExploreOptions::with_quotient`]`(Quotient::RingRotation)`).
    #[must_use]
    pub fn with_ring_quotient(self) -> Self {
        self.with_quotient(Quotient::RingRotation)
    }

    /// Caps the number of interned states in reachable mode.
    #[must_use]
    pub fn with_max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Selects the edge-store tier the exploration materialises.
    ///
    /// ```
    /// use stab_core::engine::{EdgeStoreKind, ExploreOptions};
    /// let opts: ExploreOptions<u8> =
    ///     ExploreOptions::full().with_edge_store(EdgeStoreKind::Compressed);
    /// assert_eq!(opts.edge_store, EdgeStoreKind::Compressed);
    /// ```
    #[must_use]
    pub fn with_edge_store(mut self, edge_store: EdgeStoreKind) -> Self {
        self.edge_store = edge_store;
        self
    }

    /// Checkpoints exploration state under `dir` every `every_n_states`
    /// explored states, as a chain of CRC32-framed delta files written
    /// atomically (temp file + rename). A re-run with the same options
    /// and directory resumes from the longest valid frame prefix instead
    /// of starting over; a corrupted or torn frame falls back to the
    /// previous one. Checkpointed explorations run sequentially so every
    /// frame snapshots a deterministic prefix of the traversal.
    #[must_use]
    pub fn with_checkpoint(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        every_n_states: u64,
    ) -> Self {
        self.checkpoint = Some(CheckpointConfig::new(dir, every_n_states));
        self
    }

    /// Overrides the disk-tier spill configuration (directory, chunk
    /// size, pinned-cache bytes). An explicit directory is treated as
    /// user-owned: stale chunks are pruned on reuse but the directory
    /// itself survives the run.
    #[must_use]
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = spill;
        self
    }

    /// The spill configuration a run actually uses: an explicit
    /// directory wins; otherwise a checkpointed run anchors its spill
    /// at `<checkpoint-dir>/spill` (so a resumed run re-spills into
    /// the same place [`TransitionSystem::resume`] reads), and an
    /// unanchored run gets a per-process self-cleaning temp dir.
    pub(super) fn effective_spill(&self) -> SpillConfig {
        let mut spill = self.spill.clone();
        if spill.dir.is_none() {
            if let Some(ck) = &self.checkpoint {
                spill.dir = Some(ck.dir.join("spill"));
            }
        }
        spill
    }
}

/// Dense ids for explored states.
#[derive(Debug)]
pub(super) enum StateIds {
    /// id = mixed-radix index (full sweep without quotient).
    Dense {
        /// Space size (for range checks).
        total: u64,
    },
    /// Hash-interned ids (quotient sweep or reachable BFS).
    Interned(StateTable),
}

/// The intern table of a non-dense exploration: dense id ↔ full-space
/// mixed-radix index, plus the group-orbit size per id (1 without
/// quotienting).
#[derive(Debug, Default)]
pub(super) struct StateTable {
    full_of: Vec<u64>,
    ids: HashMap<u64, u32>,
    orbit: Vec<u64>,
}

impl StateTable {
    /// The id of `full`, if interned.
    #[inline]
    pub fn lookup(&self, full: u64) -> Option<u32> {
        self.ids.get(&full).copied()
    }

    /// Interns `full` (computing its orbit size on first sight) and
    /// returns its id.
    #[inline]
    fn intern(&mut self, full: u64, orbit: impl FnOnce() -> u64) -> u32 {
        match self.ids.get(&full) {
            Some(&id) => id,
            None => {
                let id = ids::id_u32(self.full_of.len(), "interned state ids fit u32");
                self.full_of.push(full);
                self.orbit.push(orbit());
                self.ids.insert(full, id);
                id
            }
        }
    }

    /// The full-space index behind `id`.
    #[inline]
    pub fn full_of(&self, id: u32) -> u64 {
        self.full_of[id as usize]
    }

    /// The group-orbit size of `id`.
    #[inline]
    pub fn orbit(&self, id: u32) -> u64 {
        self.orbit[id as usize]
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.full_of.len()
    }

    /// Total concrete configurations represented (Σ orbit sizes).
    pub fn represented(&self) -> u64 {
        self.orbit.iter().sum()
    }

    /// The persisted columns (full-space index and orbit size, in id
    /// order) — the checkpoint snapshot surface.
    pub(super) fn parts(&self) -> (&[u64], &[u64]) {
        (&self.full_of, &self.orbit)
    }

    /// Rebuilds a table from its persisted columns (inverse of
    /// [`StateTable::parts`]); the hash index is rederived, so the result
    /// interns identically to the original.
    pub(super) fn from_parts(full_of: Vec<u64>, orbit: Vec<u64>) -> Self {
        let ids = full_of
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, ids::id_u32(i, "interned state ids fit u32")))
            .collect();
        StateTable {
            full_of,
            ids,
            orbit,
        }
    }
}

/// Merges consecutive equal `(to, movers)` edges of a sorted row, summing
/// probabilities — the orbit multiplicities of quotient folding.
fn merge_parallel_edges(row: &mut Vec<Edge>) {
    if row.len() <= 1 {
        return;
    }
    let mut write = 0;
    for read in 1..row.len() {
        if row[read].to == row[write].to && row[read].movers == row[write].movers {
            row[write].prob += row[read].prob;
        } else {
            write += 1;
            row[write] = row[read];
        }
    }
    row.truncate(write + 1);
}

/// Full sweep over a symmetry quotient: pass 1 collects the canonical
/// representatives (in ascending index order, chunked across threads),
/// pass 2 explores exactly those rows with successors canonicalized
/// (memoized per row — under the distributed daemon many activations of
/// one configuration reach the same successor, and one Booth run serves
/// them all).
pub(super) fn explore_quotient_sweep<A, L>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    spec: &L,
    canon: GroupCanonicalizer,
    opts: &ExploreOptions<A::State>,
    guard: &RunGuard,
) -> Result<TransitionSystem, CoreError>
where
    A: Algorithm + Sync,
    A::State: Sync,
    L: Legitimacy<A::State> + Sync,
{
    let total = ix.total();
    let kind = opts.edge_store;
    let spill = opts.effective_spill();
    let quotient = opts.quotient;
    let mut ck = match &opts.checkpoint {
        Some(cfg) => Some(Checkpointer::open(
            cfg,
            run_fingerprint(alg, ix, daemon, opts),
            kind,
            guard.faults(),
        )?),
        None => None,
    };
    let mut replay = ck.as_mut().and_then(Checkpointer::take_replay);
    if replay.as_ref().is_some_and(|r| r.complete.is_some()) {
        let dir = &opts.checkpoint.as_ref().expect("checkpoint configured").dir;
        return replay
            .take()
            .expect("checked above")
            .into_transition_system(dir);
    }
    guard.probe("explore", 0, 0)?;
    // Pass 1: representatives and their orbit sizes. A resumed run skips
    // the pass — its first frame carried the whole table.
    let mut start = 0u64;
    let mut restored: Option<MergeState> = None;
    let table = match replay {
        Some(r) => {
            let (full_of, orbit): (Vec<u64>, Vec<u64>) = r.table.iter().copied().unzip();
            let t = StateTable::from_parts(full_of, orbit);
            start = r.cursor;
            restored = Some(MergeState::from_replay(kind, t.len(), r, &spill));
            t
        }
        None => {
            let rep_chunks = parallel::map_chunks(total, |range| -> Result<_, CoreError> {
                let mut fulls = Vec::new();
                let mut orbits = Vec::new();
                let mut scratch = CanonScratch::default();
                for full in range {
                    if canon.is_canonical(full, &mut scratch) {
                        fulls.push(full);
                        orbits.push(canon.orbit(full, &mut scratch));
                    }
                }
                Ok((fulls, orbits))
            })?;
            let mut table = StateTable::default();
            for (fulls, orbits) in rep_chunks {
                for (full, orbit) in fulls.into_iter().zip(orbits) {
                    table.intern(full, || orbit);
                }
            }
            table
        }
    };
    let n_reps = table.len();
    assert!(
        n_reps <= u32::MAX as usize,
        "quotient representatives must fit in u32 ids"
    );
    guard.probe("explore", 0, n_reps as u64)?;

    // Pass 2: explore the representative rows; successors canonicalize to
    // representatives, which are all in the table by construction. With a
    // flat store the rows are produced by parallel chunks; a compressed
    // store streams bounded sequential batches instead, so peak memory is
    // the byte stream plus one batch of flat rows.
    let conflicts = conflict_masks(alg, daemon);
    let table_ref = &table;
    let canon_ref = &canon;
    let explore_range = |range: std::ops::Range<u64>| -> Result<Chunk, CoreError> {
        let mut chunk = Chunk::with_capacity((range.end - range.start) as usize);
        let mut gen = RowGen::new();
        let mut digits = Vec::new();
        let mut scratch = CanonScratch::default();
        let mut row: Vec<Edge> = Vec::new();
        // Per-row memo: successors repeat across activations, and each
        // repeat would otherwise pay a fresh canonicalization.
        let mut memo: HashMap<u64, u32> = HashMap::new();
        for id in range {
            // lint: cast-ok(chunk ranges stay within the u32 representative count)
            let full = table_ref.full_of(id as u32);
            let cfg = ix.decode(full);
            ix.write_digits(full, &mut digits);
            chunk.legit.push(spec.is_legitimate(&cfg));
            chunk.initial.push(alg.is_initial(&cfg));
            let (mask, det) = gen.generate(alg, ix, daemon, &conflicts, &cfg, &digits, full)?;
            chunk.deterministic &= det;
            chunk.enabled.push(mask);
            row.clear();
            memo.clear();
            for e in &gen.row {
                let to = *memo.entry(e.to).or_insert_with(|| {
                    let cto = canon_ref.canonical(e.to, &mut scratch);
                    table_ref
                        .lookup(cto)
                        .expect("canonical successors are representatives")
                });
                row.push(Edge {
                    to,
                    movers: e.movers,
                    prob: e.prob,
                });
            }
            row.sort_unstable_by_key(|e| (e.to, e.movers));
            merge_parallel_edges(&mut row);
            chunk
                .counts
                .push(ids::id_u32(row.len(), "per-row edge count fits u32"));
            chunk.edges.extend_from_slice(&row);
        }
        Ok(chunk)
    };
    let mut merge = restored.unwrap_or_else(|| MergeState::new(kind, n_reps, &spill));
    // Checkpointed or guarded runs take the sequential path regardless of
    // tier, so frames and probes see a deterministic prefix.
    let sequential = kind != EdgeStoreKind::Flat || ck.is_some() || guard.is_active();
    if !sequential {
        for chunk in parallel::map_chunks(n_reps as u64, explore_range)? {
            merge.absorb(chunk);
        }
    } else {
        while start < n_reps as u64 {
            guard.probe("explore", merge.bytes_estimate(), start)?;
            let end = (start + COMPRESSED_BATCH).min(n_reps as u64);
            merge.absorb(explore_range(start..end)?);
            start = end;
            if let Some(ck) = &mut ck {
                ck.tick(start, &merge.snapshot_source(Some(&table), &[]))?;
            }
        }
        if let Some(ck) = &mut ck {
            ck.finalize(
                n_reps as u64,
                &merge.snapshot_source(Some(&table), &[]),
                FinalMeta {
                    dense_total: None,
                    canon: Some(&canon),
                    quotient,
                    traversal: TraversalMode::Full,
                },
            )?;
        }
    }
    let (forward, enabled, legit, initial, deterministic) = merge.finish();
    Ok(TransitionSystem::assemble(
        forward,
        enabled,
        legit,
        initial,
        deterministic,
        StateIds::Interned(table),
        Some(canon),
        quotient,
        TraversalMode::Full,
    ))
}

/// On-the-fly BFS from `seeds`: hash-interned ids in discovery order, the
/// selected edge store built incrementally from the frontier (the BFS is
/// row-at-a-time by nature, so the compressed tier streams with no
/// batching at all). With a canonicalizer, every interned configuration
/// is an orbit representative.
#[allow(clippy::too_many_arguments)]
pub(super) fn explore_reachable<A, L>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    spec: &L,
    seeds: &[Configuration<A::State>],
    canon: Option<GroupCanonicalizer>,
    opts: &ExploreOptions<A::State>,
    guard: &RunGuard,
) -> Result<TransitionSystem, CoreError>
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    let max_states = opts.max_states;
    // A cap above the id width could never be enforced — interning fails
    // at u32 ids first — so reject it instead of silently clamping.
    if max_states > u32::MAX as u64 {
        return Err(CoreError::StateCapExceedsIdWidth {
            requested: max_states,
            limit: u32::MAX as u64,
        });
    }
    let conflicts = conflict_masks(alg, daemon);
    let mut table = StateTable::default();
    let mut scratch = CanonScratch::default();

    let canonical_of = |full: u64, scratch: &mut CanonScratch| match &canon {
        None => full,
        Some(c) => c.canonical(full, scratch),
    };
    // Seeds are interned first, so they occupy ids 0..#distinct-seeds and
    // form the system's initial set.
    let mut seed_ids = Vec::with_capacity(seeds.len());
    for cfg in seeds {
        let full = canonical_of(ix.encode(cfg), &mut scratch);
        let id = table.intern(full, || match &canon {
            None => 1,
            Some(c) => c.orbit(full, &mut scratch),
        });
        seed_ids.push(id);
    }

    let mut gen = RowGen::new();
    let mut digits = Vec::new();
    let mut row: Vec<Edge> = Vec::new();
    let spill = opts.effective_spill();
    let mut builder = EdgeStorageBuilder::with_spill(opts.edge_store, &spill);
    let mut enabled: Vec<u64> = Vec::new();
    let mut legit_flags: Vec<bool> = Vec::new();
    let mut deterministic = true;
    let mut next = 0usize;

    let mut ck = match &opts.checkpoint {
        Some(cfg) => Some(Checkpointer::open(
            cfg,
            run_fingerprint(alg, ix, daemon, opts),
            opts.edge_store,
            guard.faults(),
        )?),
        None => None,
    };
    if let Some(c) = &mut ck {
        if let Some(r) = c.take_replay() {
            if r.complete.is_some() {
                let dir = &opts.checkpoint.as_ref().expect("checkpoint configured").dir;
                return r.into_transition_system(dir);
            }
            // The persisted table already contains the seeds and the
            // un-explored frontier (entries past the cursor), so the
            // fresh interning above is discarded wholesale.
            let (full_of, orbit): (Vec<u64>, Vec<u64>) = r.table.iter().copied().unzip();
            table = StateTable::from_parts(full_of, orbit);
            seed_ids = r.seeds.clone();
            next = r.cursor as usize;
            enabled = r.enabled;
            legit_flags = r.legit;
            deterministic = r.deterministic;
            builder = r.builder.into_builder(opts.edge_store, &spill);
        }
    }

    // The intern table doubles as the BFS queue: ids are handed out in
    // discovery order and `next` chases the growing tail.
    let mut memo: HashMap<u64, u32> = HashMap::new();
    while next < table.len() {
        guard.probe("explore", builder.bytes_estimate(), next as u64)?;
        let id = ids::id_u32(next, "interned state ids fit u32");
        next += 1;
        let full = table.full_of(id);
        let cfg = ix.decode(full);
        ix.write_digits(full, &mut digits);
        legit_flags.push(spec.is_legitimate(&cfg));
        let (mask, det) = gen.generate(alg, ix, daemon, &conflicts, &cfg, &digits, full)?;
        deterministic &= det;
        enabled.push(mask);
        row.clear();
        memo.clear();
        for e in &gen.row {
            // Per-row memo: repeated successors canonicalize (and intern)
            // once.
            let to = match memo.get(&e.to) {
                Some(&to) => to,
                None => {
                    let cto = canonical_of(e.to, &mut scratch);
                    let to = match table.lookup(cto) {
                        Some(to) => to,
                        None => table.intern(cto, || match &canon {
                            None => 1,
                            Some(c) => c.orbit(cto, &mut scratch),
                        }),
                    };
                    memo.insert(e.to, to);
                    to
                }
            };
            row.push(Edge {
                to,
                movers: e.movers,
                prob: e.prob,
            });
        }
        if table.len() as u64 > max_states {
            return Err(CoreError::StateSpaceTooLarge {
                total: table.len() as u128,
                cap: max_states,
            });
        }
        row.sort_unstable_by_key(|e| (e.to, e.movers));
        merge_parallel_edges(&mut row);
        builder.push_row(&row);
        if let Some(c) = &mut ck {
            c.tick(
                next as u64,
                &SnapshotSource {
                    builder: &builder,
                    enabled: &enabled,
                    legit: LabelBits::Flags(&legit_flags),
                    initial: LabelBits::Empty,
                    deterministic,
                    table: Some(&table),
                    seeds: &seed_ids,
                },
            )?;
        }
    }
    if let Some(c) = &mut ck {
        c.finalize(
            next as u64,
            &SnapshotSource {
                builder: &builder,
                enabled: &enabled,
                legit: LabelBits::Flags(&legit_flags),
                initial: LabelBits::Empty,
                deterministic,
                table: Some(&table),
                seeds: &seed_ids,
            },
            FinalMeta {
                dense_total: None,
                canon: canon.as_ref(),
                quotient: opts.quotient,
                traversal: TraversalMode::Reachable,
            },
        )?;
    }

    let n = table.len();
    let mut legit = BitSet::new(n);
    for (i, &l) in legit_flags.iter().enumerate() {
        if l {
            legit.insert(i);
        }
    }
    let mut initial = BitSet::new(n);
    for &id in &seed_ids {
        initial.insert(id as usize);
    }
    Ok(TransitionSystem::assemble(
        builder.finish(),
        enabled,
        legit,
        initial,
        deterministic,
        StateIds::Interned(table),
        canon,
        opts.quotient,
        TraversalMode::Reachable,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionMask};
    use crate::outcome::Outcomes;
    use crate::view::View;
    use crate::{Daemon, Predicate};
    use stab_graph::{builders, Graph, NodeId};

    /// One-bit anonymous ring algorithm: copy the predecessor when
    /// differing from it. Using the ring *orientation* (not raw port 0,
    /// which is direction-inconsistent under sorted port numbering — the
    /// equivariance gate rejects that variant) makes every node's program
    /// identical up to rotation, hence rotation-equivariant.
    struct CopyRing {
        g: Graph,
        orient: stab_graph::RingOrientation,
    }

    impl CopyRing {
        fn new(n: usize) -> Self {
            let g = builders::ring(n);
            let orient = stab_graph::RingOrientation::canonical(&g).unwrap();
            CopyRing { g, orient }
        }
    }

    impl Algorithm for CopyRing {
        type State = bool;
        fn graph(&self) -> &Graph {
            &self.g
        }
        fn name(&self) -> String {
            "copy-ring".into()
        }
        fn state_space(&self, _v: NodeId) -> Vec<bool> {
            vec![false, true]
        }
        fn enabled_actions<V: View<bool>>(&self, v: &V) -> ActionMask {
            let pred = *v.neighbor(self.orient.pred_port(v.node()));
            ActionMask::when(pred != *v.me(), ActionId::A1)
        }
        fn apply<V: View<bool>>(&self, v: &V, _a: ActionId) -> Outcomes<bool> {
            Outcomes::certain(*v.neighbor(self.orient.pred_port(v.node())))
        }
    }

    fn agreement() -> Predicate<bool> {
        Predicate::new("agreement", |c: &Configuration<bool>| {
            c.states().iter().all(|&b| b) || c.states().iter().all(|&b| !b)
        })
    }

    #[test]
    fn reachable_all_seeds_matches_full_sweep_edge_for_edge() {
        let alg = CopyRing::new(4);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = agreement();
        for daemon in Daemon::ALL {
            let full = TransitionSystem::explore(&alg, &ix, daemon, &spec).unwrap();
            // Seeding with every configuration in index order makes BFS
            // hand out ids equal to mixed-radix indices.
            let seeds: Vec<_> = ix.iter().collect();
            let opts = ExploreOptions::reachable(seeds);
            let reach = TransitionSystem::explore_with(&alg, &ix, daemon, &spec, &opts).unwrap();
            assert_eq!(reach.traversal(), TraversalMode::Reachable);
            assert_eq!(reach.n_configs(), full.n_configs());
            assert_eq!(reach.legit(), full.legit());
            for id in 0..full.n_configs() {
                assert_eq!(reach.full_index_of(id), id as u64);
                assert_eq!(reach.enabled_mask(id), full.enabled_mask(id));
                assert_eq!(
                    reach.edges(id).unwrap(),
                    full.edges(id).unwrap(),
                    "row {id} under {daemon}"
                );
            }
        }
    }

    #[test]
    fn reachable_interns_only_the_reachable_set() {
        let alg = CopyRing::new(4);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = agreement();
        // From ⟨T,F,F,F⟩ under the central daemon, the copy dynamics can
        // reach only a strict subset of the 16 configurations.
        let seed = Configuration::from_vec(vec![true, false, false, false]);
        let opts = ExploreOptions::reachable(vec![seed.clone()]);
        let ts = TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).unwrap();
        assert!(ts.n_configs() < 16, "strict subset, got {}", ts.n_configs());
        // The seed is the whole initial set and has id 0.
        assert_eq!(ts.initial().count_ones(), 1);
        assert!(ts.is_initial(0));
        assert_eq!(ts.full_index_of(0), ix.encode(&seed));
        // Every explored state is reachable from the seed by construction.
        let mut seeds = BitSet::new(ts.n_configs() as usize);
        seeds.insert(0);
        assert!(ts.forward_closure(&seeds).is_full());
        // Unreached configurations have no id.
        let unreached = ix.encode(&Configuration::from_vec(vec![true, false, true, false]));
        assert_eq!(ts.id_of_full_index(unreached), None);
    }

    #[test]
    fn reachable_mode_respects_the_state_cap() {
        let alg = CopyRing::new(5);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = agreement();
        let seeds: Vec<_> = ix.iter().collect();
        let opts = ExploreOptions::reachable(seeds).with_max_states(7);
        let err =
            TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).unwrap_err();
        assert!(matches!(err, CoreError::StateSpaceTooLarge { cap: 7, .. }));
    }

    #[test]
    fn quotient_sweep_folds_rotations_exactly() {
        let alg = CopyRing::new(5);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = agreement();
        let opts = ExploreOptions::full().with_ring_quotient();
        let ts = TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).unwrap();
        // 8 binary 5-necklaces; orbits tile the 32-configuration space.
        assert_eq!(ts.n_configs(), 8);
        assert_eq!(ts.represented_configs(), 32);
        assert_eq!(ts.quotient(), Quotient::RingRotation);
        // Representatives are canonical, ids ascend with full index.
        let canon = ts.canonicalizer().unwrap();
        let mut buf = CanonScratch::default();
        let mut prev = None;
        for id in 0..ts.n_configs() {
            let full = ts.full_index_of(id);
            assert!(canon.is_canonical(full, &mut buf));
            assert!(prev < Some(full), "ids ascend with representative index");
            prev = Some(full);
            // Any orbit member resolves to the representative's id.
            assert_eq!(ts.id_of_full_index(full), Some(id));
        }
        // Per-row probability mass stays exactly stochastic after folding.
        for id in 0..ts.n_configs() {
            if ts.is_terminal(id) {
                continue;
            }
            let mass: f64 = ts.edges(id).unwrap().iter().map(|e| e.prob).sum();
            assert!((mass - 1.0).abs() < 1e-9, "row {id} mass {mass}");
        }
        // The two all-equal configurations are terminal representatives.
        assert_eq!(ts.legit_count(), 2);
    }

    #[test]
    fn oversized_state_cap_is_rejected_not_clamped() {
        let alg = CopyRing::new(4);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = agreement();
        let seeds: Vec<_> = ix.iter().collect();
        let opts = ExploreOptions::reachable(seeds).with_max_states(u32::MAX as u64 + 1);
        let err =
            TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).unwrap_err();
        assert!(matches!(
            err,
            CoreError::StateCapExceedsIdWidth {
                requested,
                limit,
            } if requested == u32::MAX as u64 + 1 && limit == u32::MAX as u64
        ));
        // The id-width cap itself is fine.
        let seeds: Vec<_> = ix.iter().collect();
        let opts = ExploreOptions::reachable(seeds).with_max_states(u32::MAX as u64);
        assert!(TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).is_ok());
    }

    #[test]
    fn compressed_store_matches_flat_across_modes() {
        use super::super::edgestore::EdgeStoreKind;
        let alg = CopyRing::new(5);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = agreement();
        let seeds: Vec<_> = ix.iter().collect();
        let mode_opts: Vec<ExploreOptions<bool>> = vec![
            ExploreOptions::full(),
            ExploreOptions::full().with_ring_quotient(),
            ExploreOptions::reachable(seeds.clone()),
            ExploreOptions::reachable(seeds).with_ring_quotient(),
        ];
        for daemon in Daemon::ALL {
            for opts in &mode_opts {
                let flat = TransitionSystem::explore_with(&alg, &ix, daemon, &spec, opts).unwrap();
                for kind in [EdgeStoreKind::Compressed, EdgeStoreKind::Disk] {
                    let comp = TransitionSystem::explore_with(
                        &alg,
                        &ix,
                        daemon,
                        &spec,
                        &opts.clone().with_edge_store(kind),
                    )
                    .unwrap();
                    assert_eq!(comp.edge_store_kind(), kind);
                    assert_eq!(comp.n_configs(), flat.n_configs());
                    assert_eq!(comp.n_edges(), flat.n_edges());
                    assert_eq!(comp.legit(), flat.legit());
                    assert_eq!(comp.initial(), flat.initial());
                    for id in 0..flat.n_configs() {
                        assert_eq!(comp.full_index_of(id), flat.full_index_of(id));
                        assert_eq!(comp.enabled_mask(id), flat.enabled_mask(id));
                        assert_eq!(comp.edge_row_is_empty(id), flat.edge_row_is_empty(id));
                        let a: Vec<Edge> = flat.edge_iter(id).collect();
                        let b: Vec<Edge> = comp.edge_iter(id).collect();
                        assert_eq!(a, b, "row {id} under {daemon} with {:?}", opts.quotient);
                    }
                    // The reverse CSR decodes to the same predecessor
                    // lists, and the streaming closure agrees with it.
                    assert_eq!(comp.reverse(), flat.reverse());
                    assert_eq!(comp.backward_closure(flat.legit()), {
                        flat.backward_closure(flat.legit())
                    });
                    if kind == EdgeStoreKind::Compressed {
                        // The compressed tier actually compresses.
                        assert!(
                            comp.edge_bytes() < flat.edge_bytes(),
                            "{} vs {} bytes",
                            comp.edge_bytes(),
                            flat.edge_bytes()
                        );
                    }
                }
            }
        }
    }

    mod resilience {
        use super::*;
        use crate::engine::{Budget, EdgeStoreKind, FaultPlan, RunGuard};
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

        fn tmp_dir(tag: &str) -> PathBuf {
            let d = std::env::temp_dir().join(format!(
                "stab-explore-ckpt-{}-{}-{}",
                std::process::id(),
                tag,
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&d).unwrap();
            d
        }

        fn variants(ix: &SpaceIndexer<bool>) -> Vec<ExploreOptions<bool>> {
            let seeds: Vec<_> = ix.iter().collect();
            vec![
                ExploreOptions::full(),
                ExploreOptions::full().with_edge_store(EdgeStoreKind::Compressed),
                ExploreOptions::full().with_ring_quotient(),
                ExploreOptions::full()
                    .with_ring_quotient()
                    .with_edge_store(EdgeStoreKind::Compressed),
                ExploreOptions::full().with_edge_store(EdgeStoreKind::Disk),
                ExploreOptions::full()
                    .with_ring_quotient()
                    .with_edge_store(EdgeStoreKind::Disk),
                ExploreOptions::reachable(seeds.clone()),
                ExploreOptions::reachable(vec![seeds[1].clone()])
                    .with_edge_store(EdgeStoreKind::Compressed),
                ExploreOptions::reachable(seeds.clone()).with_edge_store(EdgeStoreKind::Disk),
                ExploreOptions::reachable(seeds).with_ring_quotient(),
            ]
        }

        #[test]
        fn checkpointed_runs_match_plain_runs_and_resume_bit_for_bit() {
            let alg = CopyRing::new(5);
            let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
            let spec = agreement();
            for daemon in Daemon::ALL {
                for opts in variants(&ix) {
                    let plain =
                        TransitionSystem::explore_with(&alg, &ix, daemon, &spec, &opts).unwrap();
                    let dir = tmp_dir("match");
                    let ck_opts = opts.with_checkpoint(&dir, 4);
                    let ck =
                        TransitionSystem::explore_with(&alg, &ix, daemon, &spec, &ck_opts).unwrap();
                    assert_eq!(
                        ck.content_digest(),
                        plain.content_digest(),
                        "checkpointing changed the system under {daemon}"
                    );
                    // Cold reconstruction from the frames alone.
                    let resumed = TransitionSystem::resume(&dir).unwrap();
                    assert_eq!(resumed.content_digest(), plain.content_digest());
                    // A re-run over the complete chain short-circuits to
                    // the same system (and must not re-explore).
                    let again =
                        TransitionSystem::explore_with(&alg, &ix, daemon, &spec, &ck_opts).unwrap();
                    assert_eq!(again.content_digest(), plain.content_digest());
                    std::fs::remove_dir_all(&dir).unwrap();
                }
            }
        }

        #[test]
        fn resume_after_any_kill_point_matches_the_uninterrupted_run() {
            let alg = CopyRing::new(5);
            let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
            let spec = agreement();
            for opts in variants(&ix) {
                let plain =
                    TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts)
                        .unwrap();
                for kill in 1..=4u64 {
                    let dir = tmp_dir("kill");
                    let ck_opts = opts.clone().with_checkpoint(&dir, 2);
                    let guard = RunGuard::new(
                        Budget::unlimited(),
                        FaultPlan::none().with_kill_after_frames(kill),
                    );
                    let first = TransitionSystem::explore_guarded(
                        &alg,
                        &ix,
                        Daemon::Central,
                        &spec,
                        &ck_opts,
                        &guard,
                    );
                    let digest = match first {
                        // Death injected after the kill-th durable frame:
                        // a plain re-run resumes from disk and finishes.
                        Err(CoreError::Interrupted { after_frames }) => {
                            assert_eq!(after_frames, kill);
                            TransitionSystem::explore_with(
                                &alg,
                                &ix,
                                Daemon::Central,
                                &spec,
                                &ck_opts,
                            )
                            .unwrap()
                            .content_digest()
                        }
                        // The run wrote fewer frames than the kill point.
                        Ok(ts) => ts.content_digest(),
                        Err(e) => panic!("unexpected error: {e}"),
                    };
                    assert_eq!(
                        digest,
                        plain.content_digest(),
                        "kill after frame {kill} diverged"
                    );
                    std::fs::remove_dir_all(&dir).unwrap();
                }
            }
        }

        #[test]
        fn corrupted_tail_frame_falls_back_and_reexploration_heals_it() {
            let alg = CopyRing::new(5);
            let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
            let spec = agreement();
            let plain = TransitionSystem::explore_with(
                &alg,
                &ix,
                Daemon::Central,
                &spec,
                &ExploreOptions::full(),
            )
            .unwrap();
            let dir = tmp_dir("corrupt");
            let opts: ExploreOptions<bool> = ExploreOptions::full().with_checkpoint(&dir, 2);
            TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).unwrap();
            let frames = crate::engine::resilience::list_frames(&dir);
            FaultPlan::flip_bit(frames.last().unwrap(), 123).unwrap();
            // The final frame is gone, so cold resume refuses...
            assert!(matches!(
                TransitionSystem::resume(&dir),
                Err(CoreError::CheckpointIncomplete { .. })
            ));
            // ...but re-exploring adopts the valid prefix and heals.
            let healed =
                TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).unwrap();
            assert_eq!(healed.content_digest(), plain.content_digest());
            assert_eq!(
                TransitionSystem::resume(&dir).unwrap().content_digest(),
                plain.content_digest()
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn exhausted_budgets_surface_as_typed_errors_not_panics() {
            let alg = CopyRing::new(5);
            let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
            let spec = agreement();
            // State budget: the BFS probes per row.
            let seeds: Vec<_> = ix.iter().collect();
            let guard = RunGuard::new(Budget::unlimited().with_max_states(10), FaultPlan::none());
            let err = TransitionSystem::explore_guarded(
                &alg,
                &ix,
                Daemon::Central,
                &spec,
                &ExploreOptions::reachable(seeds),
                &guard,
            )
            .unwrap_err();
            assert!(matches!(
                err,
                CoreError::BudgetExhausted {
                    stage: "explore",
                    resource: "states",
                    limit: 10,
                    ..
                }
            ));
            // An already-expired wall clock trips the first probe of any
            // traversal.
            for opts in variants(&ix) {
                let guard = RunGuard::new(
                    Budget::unlimited().with_wall_time(std::time::Duration::ZERO),
                    FaultPlan::none(),
                );
                let err = TransitionSystem::explore_guarded(
                    &alg,
                    &ix,
                    Daemon::Central,
                    &spec,
                    &opts,
                    &guard,
                )
                .unwrap_err();
                assert!(matches!(
                    err,
                    CoreError::BudgetExhausted {
                        resource: "wall-time-ms",
                        ..
                    }
                ));
            }
        }
    }

    #[test]
    fn reachable_quotient_composes() {
        let alg = CopyRing::new(6);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = agreement();
        let seeds: Vec<_> = ix.iter().collect();
        let quotient_sweep = TransitionSystem::explore_with(
            &alg,
            &ix,
            Daemon::Central,
            &spec,
            &ExploreOptions::full().with_ring_quotient(),
        )
        .unwrap();
        let reach_quotient = TransitionSystem::explore_with(
            &alg,
            &ix,
            Daemon::Central,
            &spec,
            &ExploreOptions::reachable(seeds).with_ring_quotient(),
        )
        .unwrap();
        // Seeding everything makes the reachable quotient cover every
        // orbit: same representative set, possibly different id order.
        assert_eq!(reach_quotient.n_configs(), quotient_sweep.n_configs());
        assert_eq!(
            reach_quotient.represented_configs(),
            quotient_sweep.represented_configs()
        );
        let mut a: Vec<u64> = (0..reach_quotient.n_configs())
            .map(|id| reach_quotient.full_index_of(id))
            .collect();
        let b: Vec<u64> = (0..quotient_sweep.n_configs())
            .map(|id| quotient_sweep.full_index_of(id))
            .collect();
        a.sort_unstable();
        assert_eq!(a, b);
    }
}
