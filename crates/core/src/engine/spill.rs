//! Disk spilling for the compressed edge stream: CRC-framed chunk files
//! behind a pinned-budget cache.
//!
//! The compressed tier's byte stream is sequential-append with u64 row
//! offsets, so the disk tier cuts it into **chunks at row boundaries**
//! and writes each chunk as one `WSR1` frame (the checkpoint format of
//! [`super::resilience`]: magic + seq + CRC32C, staged to a `.tmp` and
//! atomically renamed), named `chunk-NNNNNN.bin` inside the spill
//! directory. Only the row offsets, the probability table and a bounded
//! set of cached chunks stay resident; every row decodes from exactly
//! one chunk, so row-sequential passes (exploration order, Tarjan's
//! outer loop, `Q`-row sweeps, the external inversion) rotate each chunk
//! through the cache once.
//!
//! Integrity follows the checkpoint discipline: a torn or bit-flipped
//! chunk fails its frame validation and is **refused** — fallibly via
//! [`SpillStore::verify_chunks`] (a typed
//! [`CoreError::CheckpointCorrupt`]), or by panic on a cache miss in the
//! middle of an analysis — never decoded into a wrong system. Chunks are
//! working storage, not a durability surface (the checkpoint chain is):
//! re-exploration heals a damaged spill directory from scratch.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use super::edgestore::{vbyte, DeltaStreamWriter};
use super::ids;
use super::resilience::{crc32c, FrameSink, FRAME_HEADER_LEN, FRAME_MAGIC};
use crate::error::CoreError;

/// Frame-kind byte distinguishing spill chunks from checkpoint frames
/// (0 = delta, 1 = final, 2 = spill chunk).
pub(crate) const CHUNK_KIND: u8 = 2;

/// Default chunk payload size: big enough to amortise frame and syscall
/// overhead, small enough that a handful fit any sane cache budget.
pub const DEFAULT_CHUNK_BYTES: u64 = 8 << 20;

/// Default pinned cache budget (bytes of chunk payload held resident).
pub const DEFAULT_CACHE_BYTES: u64 = 32 << 20;

/// Where and how the disk tier spills.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Spill directory. `None` (the default) resolves to a fresh
    /// process-unique temporary directory that is removed when the store
    /// is dropped; an explicit directory is left on disk (stale chunk
    /// files in it are pruned on create).
    pub dir: Option<PathBuf>,
    /// Pending-stream bytes that trigger a chunk spill (at the next row
    /// boundary).
    pub chunk_bytes: u64,
    /// Cache budget: decoded chunks resident at once, in payload bytes
    /// (at least one chunk stays resident regardless).
    pub cache_bytes: u64,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            dir: None,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            cache_bytes: DEFAULT_CACHE_BYTES,
        }
    }
}

/// Distinguishes concurrently created temporary spill directories.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Removes a process-owned temporary spill directory on drop
/// (best-effort: an already-gone directory is fine).
#[derive(Debug)]
struct TempDirGuard(PathBuf);

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        // lint: discard-ok(drop-path cleanup is best-effort; a leaked scratch dir is harmless)
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// One spilled chunk: frame `chunk-{seq:06}.bin` holding the stream's
/// global byte range `start .. start + len`.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    seq: u64,
    start: u64,
    len: u64,
}

fn chunk_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("chunk-{seq:06}.bin"))
}

/// Reads and validates one chunk frame, returning its payload.
fn read_chunk(dir: &Path, meta: &ChunkMeta) -> Result<Vec<u8>, CoreError> {
    let path = chunk_path(dir, meta.seq);
    let corrupt = |detail: String| CoreError::CheckpointCorrupt {
        path: path.display().to_string(),
        detail,
    };
    let bytes = fs::read(&path).map_err(|e| CoreError::CheckpointIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(corrupt(format!("truncated header ({} bytes)", bytes.len())));
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let kind = bytes[20];
    let payload_len = u64::from_le_bytes(bytes[21..29].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[29..33].try_into().unwrap());
    if kind != CHUNK_KIND {
        return Err(corrupt(format!("frame kind {kind} is not a spill chunk")));
    }
    if seq != meta.seq {
        return Err(corrupt(format!("sequence {seq} != expected {}", meta.seq)));
    }
    if payload_len != meta.len || bytes.len() != FRAME_HEADER_LEN + meta.len as usize {
        return Err(corrupt(format!(
            "length {} != expected {} (torn write?)",
            bytes.len() - FRAME_HEADER_LEN.min(bytes.len()),
            meta.len
        )));
    }
    let payload = &bytes[FRAME_HEADER_LEN..];
    let actual = crc32c(payload);
    if actual != crc {
        return Err(corrupt(format!(
            "CRC32C mismatch: stored {crc:#010x}, computed {actual:#010x}"
        )));
    }
    let mut payload_vec = bytes;
    payload_vec.drain(..FRAME_HEADER_LEN);
    Ok(payload_vec)
}

/// Write side of the spill: owns the chunk directory while a disk-tier
/// builder is running, draining the shared [`DeltaStreamWriter`]'s
/// pending tail into chunk frames.
///
/// Spill I/O failures panic with context rather than corrupting the
/// store: there is no meaningful forward progress once the working
/// directory stops accepting writes (the *checkpoint* chain, if any,
/// still allows a resume elsewhere).
#[derive(Debug)]
pub struct SpillSink {
    dir: PathBuf,
    chunk_bytes: u64,
    cache_bytes: u64,
    chunks: Vec<ChunkMeta>,
    spilled: u64,
    next_seq: u64,
    temp: Option<TempDirGuard>,
}

impl SpillSink {
    /// Creates (and prunes) the spill directory per `cfg`.
    pub fn create(cfg: &SpillConfig) -> Self {
        let (dir, temp) = match &cfg.dir {
            Some(d) => (d.clone(), None),
            None => {
                let d = std::env::temp_dir().join(format!(
                    "stab-spill-{}-{:04}",
                    std::process::id(),
                    TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                (d.clone(), Some(TempDirGuard(d)))
            }
        };
        fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create spill dir {}: {e}", dir.display()));
        // Stale chunks (a previous run's, or a killed run's) would
        // collide with this run's sequence numbers: prune them.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("chunk-") && (name.ends_with(".bin") || name.ends_with(".tmp"))
                {
                    // lint: discard-ok(stale-chunk sweep is best-effort; leftovers are re-swept next run)
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        SpillSink {
            dir,
            chunk_bytes: cfg.chunk_bytes.max(1),
            cache_bytes: cfg.cache_bytes,
            chunks: Vec::new(),
            spilled: 0,
            next_seq: 0,
            temp,
        }
    }

    /// Spills the writer's pending tail if it has reached the chunk
    /// size. Call at row boundaries only.
    pub fn maybe_spill(&mut self, w: &mut DeltaStreamWriter) {
        if w.pending_len() as u64 >= self.chunk_bytes {
            self.spill(w);
        }
    }

    /// Unconditionally drains the writer's pending tail into a chunk
    /// frame. Call at row boundaries only.
    pub fn spill(&mut self, w: &mut DeltaStreamWriter) {
        let (start, bytes) = w.drain();
        if bytes.is_empty() {
            return;
        }
        let seq = self.next_seq;
        let committed = chunk_path(&self.dir, seq);
        let tmp = committed.with_extension("tmp");
        let mut sink = FrameSink::create_at(tmp, committed.clone(), 0, seq, CHUNK_KIND)
            .unwrap_or_else(|e| panic!("spill chunk create {} failed: {e}", committed.display()));
        sink.raw(&bytes);
        // Chunks are working storage, not the durability surface: skip
        // the fsyncs (`durable: false`) but keep the atomic rename.
        sink.finish(false)
            .unwrap_or_else(|e| panic!("spill chunk write {} failed: {e}", committed.display()));
        self.chunks.push(ChunkMeta {
            seq,
            start,
            len: bytes.len() as u64,
        });
        self.spilled += bytes.len() as u64;
        self.next_seq += 1;
    }

    /// Copies the global stream range `start..end`, re-reading spilled
    /// chunks where the range has left RAM and finishing from the
    /// writer's pending tail — the checkpoint-delta snapshot surface.
    pub fn byte_range(&self, w: &DeltaStreamWriter, start: u64, end: u64) -> Vec<u8> {
        assert!(start <= end, "byte range reversed");
        let mut out = Vec::with_capacity((end - start) as usize);
        let pending_base = w.pending_base();
        let mut pos = start;
        while pos < end.min(pending_base) {
            let idx = chunk_index(&self.chunks, pos);
            let c = &self.chunks[idx];
            let bytes = read_chunk(&self.dir, c)
                .unwrap_or_else(|e| panic!("spill chunk read-back failed: {e}"));
            let take_end = end.min(chunk_end(c));
            out.extend_from_slice(&bytes[(pos - c.start) as usize..(take_end - c.start) as usize]);
            pos = take_end;
        }
        if end > pending_base {
            let (_, pending, _, _) = w.parts();
            let from = pos.max(pending_base);
            out.extend_from_slice(
                &pending[(from - pending_base) as usize..(end - pending_base) as usize],
            );
        }
        out
    }

    /// Seals the chunk set behind its read cache (the caller has drained
    /// the writer's tail).
    pub fn finish(self) -> SpillStore {
        SpillStore {
            dir: self.dir,
            chunks: self.chunks,
            spilled: self.spilled,
            cache_bytes: self.cache_bytes,
            cache: Mutex::new(ChunkCache::default()),
            temp: self.temp,
        }
    }
}

/// Checked end offset of a chunk's global byte range (`start + len`).
/// Chunk metadata is produced by [`SpillSink::spill`] from real byte
/// counts, so an overflowing sum means in-memory corruption — refuse it
/// rather than wrap into a bogus range.
fn chunk_end(c: &ChunkMeta) -> u64 {
    c.start.checked_add(c.len).unwrap_or_else(|| {
        panic!(
            "{}",
            CoreError::OffsetOverflow {
                what: "spill chunk end offset",
                value: c.start as u128 + c.len as u128,
            }
        )
    })
}

/// Index of the chunk whose range contains global byte `pos`.
fn chunk_index(chunks: &[ChunkMeta], pos: u64) -> usize {
    let idx = chunks.partition_point(|c| c.start <= pos);
    assert!(idx > 0, "byte {pos} precedes the first spilled chunk");
    let c = &chunks[idx - 1];
    assert!(
        pos < chunk_end(c),
        "byte {pos} falls in a gap after chunk {}",
        c.seq
    );
    idx - 1
}

#[derive(Debug, Default)]
struct ChunkCache {
    resident: HashMap<usize, Arc<Vec<u8>>>,
    /// Least-recently-used chunk index first.
    lru: Vec<usize>,
    bytes: u64,
    peak: u64,
    hits: u64,
    misses: u64,
    /// Weak handles to evicted payloads still pinned by live cursors.
    /// A cache miss upgrades these before touching the disk: without
    /// this, an access pattern that revisits chunks while old cursors
    /// stay alive (Tarjan holds one cursor per DFS frame) would read a
    /// *fresh copy* of the same chunk on every revisit — each copy
    /// pinned by a different frame — and the resident set would grow
    /// with the DFS depth instead of staying at one payload per chunk.
    evicted: HashMap<usize, Weak<Vec<u8>>>,
}

/// Read side of the spill: the sealed chunk set plus a pinned-budget
/// cache. Row cursors pin their chunk with an [`Arc`], so eviction under
/// them is safe; the cache keeps at least one chunk resident regardless
/// of budget.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    chunks: Vec<ChunkMeta>,
    spilled: u64,
    cache_bytes: u64,
    cache: Mutex<ChunkCache>,
    /// Held only for its `Drop` (removes a process-owned temp dir).
    #[allow(dead_code)]
    temp: Option<TempDirGuard>,
}

impl SpillStore {
    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total payload bytes across all chunk files.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled
    }

    /// Chunk payload bytes currently cached in RAM.
    pub fn resident_bytes(&self) -> u64 {
        self.cache.lock().unwrap().bytes
    }

    /// High-water mark of [`SpillStore::resident_bytes`].
    pub fn peak_resident_bytes(&self) -> u64 {
        self.cache.lock().unwrap().peak
    }

    /// `(hits, misses)` of the chunk cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock().unwrap();
        (c.hits, c.misses)
    }

    /// Loads (through the cache) the chunk containing global byte `pos`,
    /// returning the pinned payload and the chunk's global start offset.
    ///
    /// # Panics
    ///
    /// Panics if the chunk file fails frame validation — a corrupt spill
    /// chunk is refused, never decoded (use
    /// [`SpillStore::verify_chunks`] for the fallible check).
    pub fn load_containing(&self, pos: u64) -> (Arc<Vec<u8>>, u64) {
        let idx = chunk_index(&self.chunks, pos);
        let meta = self.chunks[idx];
        let mut cache = self.cache.lock().unwrap();
        if let Some(bytes) = cache.resident.get(&idx) {
            let bytes = Arc::clone(bytes);
            cache.hits += 1;
            if let Some(p) = cache.lru.iter().position(|&i| i == idx) {
                cache.lru.remove(p);
            }
            cache.lru.push(idx);
            return (bytes, meta.start);
        }
        // An evicted payload still pinned by a live cursor is revived
        // (shared, not re-read): the resident set never holds two copies
        // of one chunk, no matter how many cursors revisit it.
        let bytes = match cache.evicted.remove(&idx).and_then(|w| w.upgrade()) {
            Some(bytes) => {
                cache.hits += 1;
                bytes
            }
            None => {
                cache.misses += 1;
                Arc::new(
                    read_chunk(&self.dir, &meta)
                        .unwrap_or_else(|e| panic!("refusing corrupt spill chunk: {e}")),
                )
            }
        };
        // Pinned-budget eviction: rotate least-recently-used chunks out
        // until the new one fits (always admitting it). Victims stay
        // reachable through `evicted` for as long as cursors pin them.
        while cache.bytes + meta.len > self.cache_bytes && !cache.lru.is_empty() {
            let victim = cache.lru.remove(0);
            if let Some(b) = cache.resident.remove(&victim) {
                cache.bytes -= b.len() as u64;
                cache.evicted.insert(victim, Arc::downgrade(&b));
            }
        }
        cache.resident.insert(idx, Arc::clone(&bytes));
        cache.lru.push(idx);
        cache.bytes += meta.len;
        cache.peak = cache.peak.max(cache.bytes);
        (bytes, meta.start)
    }

    /// A decoding cursor over row `row` of the stream delimited by the
    /// global `offsets` (`n_rows + 1` entries) — the disk-tier
    /// counterpart of
    /// [`DeltaStreamReader::new`](super::edgestore::DeltaStreamReader::new).
    pub fn row_cursor(&self, offsets: &[u64], row: usize) -> SpillCursor {
        let (start, end) = (offsets[row], offsets[row + 1]);
        if start == end {
            return SpillCursor {
                bytes: Arc::new(Vec::new()),
                pos: 0,
                end: 0,
                prev: row as i64,
            };
        }
        let (bytes, chunk_start) = self.load_containing(start);
        debug_assert!(
            // lint: arith-ok(debug-only bound over a chunk table verified contiguous at load)
            end <= chunk_start + bytes.len() as u64,
            "row {row} spans a chunk boundary"
        );
        SpillCursor {
            bytes,
            pos: (start - chunk_start) as usize,
            end: (end - chunk_start) as usize,
            prev: row as i64,
        }
    }

    /// Re-validates every chunk frame (magic, kind, sequence, length,
    /// CRC32C) and the contiguity of the recorded byte ranges.
    ///
    /// # Errors
    ///
    /// [`CoreError::CheckpointCorrupt`] naming the first bad chunk.
    pub fn verify_chunks(&self) -> Result<(), CoreError> {
        let mut expected_start = self.chunks.first().map_or(0, |c| c.start);
        for meta in &self.chunks {
            if meta.start != expected_start {
                return Err(CoreError::CheckpointCorrupt {
                    path: chunk_path(&self.dir, meta.seq).display().to_string(),
                    detail: format!(
                        "chunk starts at byte {} but the previous ends at {expected_start}",
                        meta.start
                    ),
                });
            }
            read_chunk(&self.dir, meta)?;
            expected_start = meta
                .start
                .checked_add(meta.len)
                .ok_or(CoreError::OffsetOverflow {
                    what: "spill chunk end offset",
                    value: meta.start as u128 + meta.len as u128,
                })?;
        }
        Ok(())
    }
}

/// Owned-chunk decoding cursor: the disk-tier counterpart of
/// [`DeltaStreamReader`](super::edgestore::DeltaStreamReader), pinning
/// its chunk so the cache may rotate underneath.
#[derive(Debug, Clone)]
pub struct SpillCursor {
    bytes: Arc<Vec<u8>>,
    pos: usize,
    end: usize,
    /// Delta base: the row id before the first item, then the previous
    /// target.
    prev: i64,
}

impl SpillCursor {
    /// Whether the row's span is exhausted.
    #[inline]
    pub fn done(&self) -> bool {
        self.pos >= self.end
    }

    /// Decodes the next item's target (call first per item).
    #[inline]
    pub fn target(&mut self) -> u32 {
        self.prev += vbyte::unzigzag(vbyte::read(&self.bytes, &mut self.pos));
        ids::delta_target(self.prev, "corrupt spill delta stream")
    }

    /// Decodes a raw payload varint.
    #[inline]
    pub fn raw(&mut self) -> u64 {
        vbyte::read(&self.bytes, &mut self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_rows(cfg: &SpillConfig, rows: &[Vec<u32>]) -> (SpillStore, Vec<u64>) {
        let mut w = DeltaStreamWriter::new();
        let mut sink = SpillSink::create(cfg);
        for row in rows {
            for &t in row {
                w.target(t);
            }
            w.end_row();
            sink.maybe_spill(&mut w);
        }
        sink.spill(&mut w);
        let (offsets, _, _, _) = w.into_parts();
        (sink.finish(), offsets)
    }

    fn decode_row(store: &SpillStore, offsets: &[u64], row: usize) -> Vec<u32> {
        let mut cur = store.row_cursor(offsets, row);
        let mut out = Vec::new();
        while !cur.done() {
            out.push(cur.target());
        }
        out
    }

    fn demo_rows(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            // lint: cast-ok(test targets stay below the tiny row count n)
            .map(|i| (0..i % 5).map(|j| ((i * 13 + j * 7) % n) as u32).collect())
            .collect()
    }

    #[test]
    fn round_trips_across_many_small_chunks() {
        let rows = demo_rows(200);
        let cfg = SpillConfig {
            chunk_bytes: 16, // force many chunks
            cache_bytes: 64,
            ..SpillConfig::default()
        };
        let (store, offsets) = write_rows(&cfg, &rows);
        assert!(store.spilled_bytes() > 0);
        assert!(
            fs::read_dir(store.dir()).unwrap().count() > 3,
            "tiny chunk size must produce several chunk files"
        );
        // Sequential, then deliberately cache-hostile random-ish order.
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&decode_row(&store, &offsets, i), row, "row {i}");
        }
        for i in (0..rows.len()).rev().step_by(3) {
            assert_eq!(decode_row(&store, &offsets, i), rows[i], "row {i}");
        }
        let (hits, misses) = store.cache_stats();
        assert!(hits > 0 && misses > 0, "hits {hits} misses {misses}");
        assert!(store.resident_bytes() <= 64 + 16, "cache budget pinned");
        assert!(store.peak_resident_bytes() >= store.resident_bytes());
        store.verify_chunks().unwrap();
    }

    #[test]
    fn pinned_evicted_chunks_are_revived_not_reread() {
        // Tarjan's SCC pass holds one live cursor per DFS frame. With a
        // cache far smaller than the stream, every revisit of an evicted
        // chunk used to read a *fresh* copy from disk while the old
        // cursors kept pinning theirs — the resident set grew with the
        // DFS depth. The `evicted` weak map must cap disk reads at one
        // per chunk for as long as any cursor pins it.
        let rows = demo_rows(200);
        let cfg = SpillConfig {
            chunk_bytes: 16,
            cache_bytes: 16, // room for ~one chunk: constant thrash
            ..SpillConfig::default()
        };
        let (store, offsets) = write_rows(&cfg, &rows);
        let n_chunks = fs::read_dir(store.dir()).unwrap().count() as u64;
        assert!(n_chunks > 3, "need several chunks to thrash");
        // Two full passes, keeping every cursor alive the whole time.
        let mut pinned = Vec::new();
        for _pass in 0..2 {
            for (row, expected) in rows.iter().enumerate() {
                let mut cur = store.row_cursor(&offsets, row);
                let mut out = Vec::new();
                while !cur.done() {
                    out.push(cur.target());
                }
                assert_eq!(&out, expected, "row {row}");
                pinned.push(cur);
            }
        }
        let (hits, misses) = store.cache_stats();
        assert_eq!(
            misses, n_chunks,
            "each chunk must hit the disk exactly once while pinned \
             (hits {hits}); more means evicted-but-alive payloads were \
             duplicated instead of revived"
        );
        drop(pinned);
    }

    #[test]
    fn byte_range_spans_chunks_and_pending_tail() {
        let mut w = DeltaStreamWriter::new();
        let mut sink = SpillSink::create(&SpillConfig {
            chunk_bytes: 8,
            ..SpillConfig::default()
        });
        // Mirror the writer's encoding (prev = row id before each row's
        // first item) to get the expected raw stream.
        let mut reference = Vec::new();
        for i in 0..100u32 {
            w.target(i * 3);
            vbyte::write(&mut reference, vbyte::zigzag(i as i64 * 3 - i as i64));
            w.end_row();
            sink.maybe_spill(&mut w);
        }
        let total = *w.parts().0.last().unwrap();
        let got = sink.byte_range(&w, 0, total);
        assert_eq!(got, reference);
        for (a, b) in [(0u64, total / 3), (total / 3, total / 2), (1, total - 1)] {
            assert_eq!(sink.byte_range(&w, a, b), got[a as usize..b as usize]);
        }
    }

    #[test]
    fn corrupt_chunk_is_refused_with_a_typed_error() {
        let rows = demo_rows(64);
        let cfg = SpillConfig {
            chunk_bytes: 16,
            ..SpillConfig::default()
        };
        let (store, _offsets) = write_rows(&cfg, &rows);
        store.verify_chunks().unwrap();
        // Flip one payload bit in the second chunk file.
        let victim = chunk_path(store.dir(), 1);
        let mut bytes = fs::read(&victim).unwrap();
        let i = FRAME_HEADER_LEN + bytes.len().saturating_sub(FRAME_HEADER_LEN) / 2;
        bytes[i] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();
        match store.verify_chunks() {
            Err(CoreError::CheckpointCorrupt { path, detail }) => {
                assert_eq!(path, victim.display().to_string());
                assert!(detail.contains("CRC32C"), "{detail}");
            }
            other => panic!("corrupt chunk not refused: {other:?}"),
        }
        // A truncated (torn) chunk is refused too.
        let keep = bytes.len() - 3;
        bytes.truncate(keep);
        fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            store.verify_chunks(),
            Err(CoreError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn temp_spill_dir_is_removed_on_drop() {
        let rows = demo_rows(16);
        let (store, _) = write_rows(&SpillConfig::default(), &rows);
        let dir = store.dir().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists(), "temporary spill dir must self-clean");
    }

    #[test]
    fn explicit_spill_dir_survives_drop_and_is_pruned_on_reuse() {
        let base = std::env::temp_dir().join(format!(
            "stab-spill-test-{}-{:04}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let cfg = SpillConfig {
            dir: Some(base.clone()),
            chunk_bytes: 16,
            ..SpillConfig::default()
        };
        let (store, offsets) = write_rows(&cfg, &demo_rows(64));
        let n_before = fs::read_dir(&base).unwrap().count();
        assert!(n_before > 1);
        drop((store, offsets));
        assert!(base.exists(), "explicit spill dir is user-owned");
        // Re-creating in the same dir prunes the stale chunks.
        let (store2, offsets2) = write_rows(&cfg, &demo_rows(8));
        store2.verify_chunks().unwrap();
        assert_eq!(decode_row(&store2, &offsets2, 4), demo_rows(8)[4]);
        drop(store2);
        let _ = fs::remove_dir_all(&base);
    }
}
