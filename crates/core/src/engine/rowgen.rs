//! Per-configuration successor-row generation, shared by every exploration
//! mode (full mixed-radix sweep, rotation-quotient sweep, on-the-fly BFS).
//!
//! [`RowGen::generate`] evaluates each enabled process's guard and outcome
//! distribution **once** per configuration (outcome sharing), then expands
//! the daemon's activations into successor edges by delta-encoding —
//! `successor = id + Σ_{v moved} (digit'(v) − digit(v)) · weight(v)` — with
//! a Gray-code subset walk for deterministic systems. The emitted
//! [`RawEdge`]s address successors by their *full-space* mixed-radix index;
//! the caller maps those to dense ids (identity for the full sweep,
//! canonicalize-and-intern for the quotient and reachable modes).

use stab_graph::NodeId;

use crate::algorithm::Algorithm;
use crate::config::Configuration;
use crate::scheduler::{DaemonSpec, Distribution, DISTRIBUTED_ENUM_CAP};
use crate::space::SpaceIndexer;
use crate::CoreError;

/// One successor edge in full-space coordinates, before id mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) struct RawEdge {
    /// Mixed-radix index of the successor configuration.
    pub to: u64,
    /// Bitmask of activated processes.
    pub movers: u64,
    /// `P(activation) × P(outcome)` under the uniform randomized daemon.
    pub prob: f64,
}

/// Reusable per-thread scratch: nothing here is allocated per
/// configuration once the buffers have grown to their working sizes.
pub(super) struct RowGen {
    /// Enabled nodes of the current configuration, ascending.
    enabled_nodes: Vec<NodeId>,
    /// Per enabled node (same order), its span in `deltas`.
    delta_spans: Vec<(u32, u32)>,
    /// Flat `(id delta, probability)` outcome entries.
    deltas: Vec<(i64, f64)>,
    /// Activation masks over *global* node bits.
    activations: Vec<u64>,
    /// Successor accumulation (double-buffered product construction).
    branches: Vec<(i64, f64)>,
    branches_next: Vec<(i64, f64)>,
    /// The assembled row, sorted by `(to, movers)`. Distinct raw edges are
    /// distinct pairs by construction; only id *mapping* (quotienting) can
    /// introduce duplicates, which the mapping stage merges.
    pub row: Vec<RawEdge>,
}

impl RowGen {
    pub fn new() -> Self {
        RowGen {
            enabled_nodes: Vec::new(),
            delta_spans: Vec::new(),
            deltas: Vec::new(),
            activations: Vec::new(),
            branches: Vec::new(),
            branches_next: Vec::new(),
            row: Vec::new(),
        }
    }

    /// Fills `self.row` with the successor edges of the configuration
    /// `cfg` (mixed-radix index `id`, digits `digits`) under the lattice
    /// point `spec`, and returns `(enabled bitmask, deterministic here)`.
    ///
    /// `conflicts[v]` must be the bitmask of nodes within the spec's
    /// locality radius of `v` (all-zero for radius 0, the adjacency mask
    /// for radius 1 — see `explore::conflict_masks`); two activated
    /// processes "conflict" when one lies in the other's mask, which is
    /// exactly the pairwise-spread constraint of
    /// [`Distribution::KCentral`].
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyEnabled`] from subset-daemon enumeration past
    /// [`DISTRIBUTED_ENUM_CAP`] simultaneously enabled processes.
    #[allow(clippy::too_many_arguments)]
    pub fn generate<A>(
        &mut self,
        alg: &A,
        ix: &SpaceIndexer<A::State>,
        spec: DaemonSpec,
        conflicts: &[u64],
        cfg: &Configuration<A::State>,
        digits: &[u32],
        id: u64,
    ) -> Result<(u64, bool), CoreError>
    where
        A: Algorithm,
    {
        let id = id as i64;
        let total = ix.total();
        let mut deterministic = true;

        // One pass over the processes: guards, determinism audit, and the
        // delta-encoded outcome distribution of every enabled process. All
        // activations read the *pre* configuration, so one evaluation per
        // process serves every activation below.
        self.enabled_nodes.clear();
        self.delta_spans.clear();
        self.deltas.clear();
        let mut enabled_mask = 0u64;
        for v in alg.graph().nodes() {
            let view = alg.view(cfg, v);
            let mask = alg.enabled_actions(&view);
            if mask.len() > 1 {
                deterministic = false;
            }
            let Some(action) = mask.selected() else {
                continue;
            };
            enabled_mask |= 1u64 << v.index();
            self.enabled_nodes.push(v);
            let outcomes = alg.apply(&view, action);
            if !outcomes.is_certain() {
                deterministic = false;
            }
            let weight = ix.weight(v) as i64;
            let digit = digits[v.index()] as i64;
            let start = super::ids::id_u32(self.deltas.len(), "per-row delta spans fit u32");
            for (p, state) in outcomes.entries() {
                let delta = (ix.digit_of(v, state) as i64 - digit) * weight;
                self.deltas.push((delta, *p));
            }
            self.delta_spans.push((
                start,
                super::ids::id_u32(self.deltas.len(), "per-row delta spans fit u32"),
            ));
        }

        self.row.clear();
        let k = self.enabled_nodes.len();
        if k == 0 {
            return Ok((0, deterministic));
        }
        // Whether every enabled process is deterministic here (singleton
        // outcome): unlocks the O(1)-per-activation Gray-code subset walk.
        let all_certain = self.delta_spans.iter().all(|&(lo, hi)| hi - lo == 1);

        match spec.distribution {
            // k = 1: single-mover activations regardless of radius (a
            // singleton is trivially spread). Outcome states are pairwise
            // distinct, so successors need no merging.
            Distribution::KCentral { k: Some(1), .. } => {
                let act_prob = 1.0 / k as f64;
                for (i, &v) in self.enabled_nodes.iter().enumerate() {
                    let movers = 1u64 << v.index();
                    let (lo, hi) = self.delta_spans[i];
                    for &(delta, p) in &self.deltas[lo as usize..hi as usize] {
                        push_edge(&mut self.row, total, id + delta, movers, act_prob * p);
                    }
                }
            }
            Distribution::Synchronous => {
                let movers = enabled_mask;
                self.product_branches(id, movers);
                for bi in 0..self.branches.len() {
                    let (to, p) = self.branches[bi];
                    push_edge(&mut self.row, total, to, movers, p);
                }
            }
            Distribution::KCentral { k: k_max, .. } => {
                if k > DISTRIBUTED_ENUM_CAP {
                    return Err(CoreError::TooManyEnabled {
                        enabled: k,
                        cap: DISTRIBUTED_ENUM_CAP,
                    });
                }
                if all_certain {
                    // Gray-code subset walk: toggling one process in or out
                    // updates the successor id, the mover mask, the subset
                    // size and the radius-conflict count in O(1) per subset.
                    let mut movers = 0u64;
                    let mut delta = 0i64;
                    let mut conflict_count = 0i64;
                    let mut size = 0u32;
                    for g in 1u64..(1u64 << k) {
                        let i = g.trailing_zeros() as usize;
                        let v = self.enabled_nodes[i];
                        let bit = 1u64 << v.index();
                        let d = self.deltas[self.delta_spans[i].0 as usize].0;
                        if movers & bit == 0 {
                            conflict_count += (conflicts[v.index()] & movers).count_ones() as i64;
                            movers |= bit;
                            delta += d;
                            size += 1;
                        } else {
                            movers &= !bit;
                            delta -= d;
                            size -= 1;
                            conflict_count -= (conflicts[v.index()] & movers).count_ones() as i64;
                        }
                        if conflict_count > 0 || k_max.is_some_and(|m| size > m) {
                            continue;
                        }
                        push_edge(&mut self.row, total, id + delta, movers, 1.0);
                    }
                    // The uniform activation probability is only known once
                    // the allowed subsets are counted.
                    let act_prob = 1.0 / self.row.len() as f64;
                    for e in &mut self.row {
                        e.prob = act_prob;
                    }
                } else {
                    enumerate_activations(
                        k_max,
                        &self.enabled_nodes,
                        conflicts,
                        &mut self.activations,
                    )?;
                    let act_prob = 1.0 / self.activations.len() as f64;
                    for ai in 0..self.activations.len() {
                        let movers = self.activations[ai];
                        self.product_branches(id, movers);
                        for bi in 0..self.branches.len() {
                            let (to, p) = self.branches[bi];
                            push_edge(&mut self.row, total, to, movers, act_prob * p);
                        }
                    }
                }
            }
        }
        self.row.sort_unstable_by_key(|e| (e.to, e.movers));
        Ok((enabled_mask, deterministic))
    }

    /// Computes the successor distribution of one activation into
    /// `self.branches`: the product of the movers' outcome deltas, merged
    /// by successor id whenever a probabilistic expansion could collide.
    fn product_branches(&mut self, id: i64, movers: u64) {
        self.branches.clear();
        self.branches.push((id, 1.0));
        for (i, &v) in self.enabled_nodes.iter().enumerate() {
            if movers & (1u64 << v.index()) == 0 {
                continue;
            }
            let (lo, hi) = self.delta_spans[i];
            if hi - lo == 1 {
                // Certain outcome: shift every branch, no collisions possible.
                let (delta, _) = self.deltas[lo as usize];
                for b in &mut self.branches {
                    b.0 += delta;
                }
                continue;
            }
            self.branches_next.clear();
            for &(base, p) in &self.branches {
                for &(delta, q) in &self.deltas[lo as usize..hi as usize] {
                    // lint: arith-ok(delta-composed targets are range-checked by ids::delta_target at materialization)
                    self.branches_next.push((base + delta, p * q));
                }
            }
            std::mem::swap(&mut self.branches, &mut self.branches_next);
            merge_sorted_by_id(&mut self.branches);
        }
    }
}

/// Appends one delta-encoded edge.
#[inline]
fn push_edge(row: &mut Vec<RawEdge>, total: u64, to: i64, movers: u64, prob: f64) {
    debug_assert!(to >= 0 && (to as u64) < total, "delta-encoded id in range");
    let _ = total;
    row.push(RawEdge {
        to: to as u64,
        movers,
        prob,
    });
}

/// Sorts branches by successor id and merges duplicates, summing
/// probabilities (ascending-id summation order, deterministic).
fn merge_sorted_by_id(branches: &mut Vec<(i64, f64)>) {
    if branches.len() <= 1 {
        return;
    }
    branches.sort_unstable_by_key(|&(id, _)| id);
    let mut write = 0;
    for read in 1..branches.len() {
        if branches[read].0 == branches[write].0 {
            branches[write].1 += branches[read].1;
        } else {
            write += 1;
            branches[write] = branches[read];
        }
    }
    branches.truncate(write + 1);
}

/// Enumerates the subset-valued activations over `enabled` (at most
/// `k_max` members, pairwise conflict-free under the radius masks) as
/// global node bitmasks, into `out` (cleared first). Matches
/// [`DaemonSpec::activations`] up to representation. Single-mover and
/// synchronous distributions never reach here — `generate` routes them to
/// their dedicated paths.
fn enumerate_activations(
    k_max: Option<u32>,
    enabled: &[NodeId],
    conflicts: &[u64],
    out: &mut Vec<u64>,
) -> Result<(), CoreError> {
    out.clear();
    let k = enabled.len();
    if k == 0 {
        return Ok(());
    }
    if k > DISTRIBUTED_ENUM_CAP {
        return Err(CoreError::TooManyEnabled {
            enabled: k,
            cap: DISTRIBUTED_ENUM_CAP,
        });
    }
    'subset: for local in 1u64..(1u64 << k) {
        if k_max.is_some_and(|m| local.count_ones() > m) {
            continue;
        }
        let mut movers = 0u64;
        let mut rest = local;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let v = enabled[i];
            if conflicts[v.index()] & movers != 0 {
                continue 'subset;
            }
            movers |= 1u64 << v.index();
        }
        // The incremental conflict test above only checks each new member
        // against *earlier* members, which is exactly the pairwise
        // constraint.
        out.push(movers);
    }
    Ok(())
}
