//! Three-tier edge storage for transition systems: the flat [`Csr<Edge>`]
//! tier (24 bytes per edge, slice access), a byte-packed compressed
//! tier ([`CompressedEdges`]) for 10⁸+-edge systems, and a disk-spilling
//! tier ([`DiskEdges`]) whose compressed byte stream lives in CRC-framed
//! chunk files behind a pinned-budget cache, for 10⁹+-edge systems whose
//! compressed stream itself exceeds RAM.
//!
//! # Why a second tier
//!
//! Reachable-only exploration and symmetry quotients cap the largest
//! checkable instance by *edge memory*, not time: every [`Edge`] costs
//! `size_of::<Edge>()` = 24 bytes in the flat CSR, so Herman N=17
//! (≈ 1.3·10⁸ edges for the full sweep) sits at the RAM ceiling. The
//! compressed tier stores, per row,
//!
//! * the successor ids as **zig-zag varint deltas** — against the row's
//!   own id for the first edge (delta encoding keeps successors close to
//!   their source), then against the previous successor (rows are sorted
//!   by `(to, movers)`, so the gaps are small);
//! * the activation bitmask as a plain varint (low process bits
//!   dominate);
//! * the Definition 6 probability as a varint **index into a deduplicated
//!   probability table** — distinct probabilities per run are few (powers
//!   of ½ for Herman, `1/#activations` families elsewhere), so the
//!   side-channel `Vec<f64>` stays tiny.
//!
//! Measured bytes per edge land at 3–6 for the zoo (see
//! `BENCH_explore.json`, schema v4+), a 4–8× reduction over the flat tier.
//!
//! Row boundaries are **u64 byte offsets**, and edge counts are tracked
//! in u64 throughout, so systems past 2³² edges are representable rather
//! than silently wrapped (the flat tier's u32 offsets *panic* past that
//! point — see [`Csr::from_counts`]).
//!
//! Both tiers implement the [`EdgeStore`] trait; [`EdgeStorage`] is the
//! runtime-selected store held by
//! [`TransitionSystem`](super::TransitionSystem), chosen per run with
//! [`ExploreOptions::with_edge_store`](super::ExploreOptions::with_edge_store).
//! Decoding is allocation-free: [`EdgeIter`] is a cursor over the byte
//! stream (or a slice iterator on the flat tier), which is what Tarjan,
//! the reachability closures and the `Q`-row reads actually need.

use std::collections::HashMap;

use super::csr::Csr;
use super::explore::Edge;
use super::ids;
use super::resilience::Budget;
use super::spill::{SpillConfig, SpillCursor, SpillSink, SpillStore};
use crate::error::CoreError;

/// Variable-byte (LEB128) and zig-zag primitives shared by the compressed
/// edge stream and `stab-markov`'s compressed `Q` store.
pub mod vbyte {
    /// Maps a signed delta onto the unsigned varint domain
    /// (0, −1, 1, −2, … ↦ 0, 1, 2, 3, …).
    #[inline]
    pub fn zigzag(v: i64) -> u64 {
        ((v << 1) ^ (v >> 63)) as u64
    }

    /// Inverse of [`zigzag`].
    #[inline]
    pub fn unzigzag(v: u64) -> i64 {
        ((v >> 1) as i64) ^ -((v & 1) as i64)
    }

    /// Appends `v` as an LEB128 varint (7 payload bits per byte,
    /// continuation in the high bit).
    #[inline]
    pub fn write(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8; // lint: cast-ok(masked to 7 bits)
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }

    /// Reads one LEB128 varint at `*pos`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the stream ends mid-varint (corrupt stream).
    #[inline]
    pub fn read(buf: &[u8], pos: &mut usize) -> u64 {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = buf[*pos];
            *pos += 1;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    }
}

/// Shared low-level writer for delta-compressed row streams: u64 byte
/// offsets, zig-zag varint target deltas (base = the row's own index
/// before its first item, then the previous target), and a dedup-interned
/// probability table. [`CompressedEdgesBuilder`] and `stab-markov`'s
/// compressed `Q` builder wrap it with their per-item payloads, so the
/// subtle parts of the encoding live exactly once.
#[derive(Debug)]
pub struct DeltaStreamWriter {
    offsets: Vec<u64>,
    stream: Vec<u8>,
    probs: Vec<f64>,
    prob_ids: HashMap<u64, u32>,
    n_items: u64,
    prev: i64,
    /// Global byte offset of `stream[0]`: 0 for in-RAM streams, and the
    /// number of already-spilled bytes once [`DeltaStreamWriter::drain`]
    /// has handed prefixes of the stream to a chunk sink. `offsets` stay
    /// global either way.
    base: u64,
}

impl Default for DeltaStreamWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaStreamWriter {
    /// An empty stream positioned at row 0.
    pub fn new() -> Self {
        DeltaStreamWriter {
            offsets: vec![0],
            stream: Vec::new(),
            probs: Vec::new(),
            prob_ids: HashMap::new(),
            n_items: 0,
            prev: 0,
            base: 0,
        }
    }

    /// Writes the next item's target as a zig-zag varint delta and counts
    /// the item. Call first per item, before any payload varints.
    #[inline]
    pub fn target(&mut self, target: u32) {
        vbyte::write(&mut self.stream, vbyte::zigzag(target as i64 - self.prev));
        self.prev = target as i64;
        self.n_items += 1;
    }

    /// Writes a raw payload varint for the current item.
    #[inline]
    pub fn raw(&mut self, v: u64) {
        vbyte::write(&mut self.stream, v);
    }

    /// Interns `prob` (keyed by its exact bit pattern) and writes its
    /// table id as a varint.
    #[inline]
    pub fn prob(&mut self, prob: f64) {
        let pid = match self.prob_ids.entry(prob.to_bits()) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = ids::id_u32(self.probs.len(), "interned probability ids fit u32");
                self.probs.push(prob);
                e.insert(id);
                id
            }
        };
        vbyte::write(&mut self.stream, pid as u64);
    }

    /// Closes the current row: records its end offset (global, i.e.
    /// including any drained prefix) and re-bases the delta encoding on
    /// the next row's index.
    pub fn end_row(&mut self) {
        // lint: arith-ok(byte offsets grow by in-memory buffer lengths; u64 outlives addressable memory)
        self.offsets.push(self.base + self.stream.len() as u64);
        self.prev = (self.offsets.len() - 1) as i64;
    }

    /// Bytes currently resident in the pending (undrained) stream tail.
    pub fn pending_len(&self) -> usize {
        self.stream.len()
    }

    /// Global byte offset at which the pending tail starts.
    pub fn pending_base(&self) -> u64 {
        self.base
    }

    /// Hands the pending stream bytes to a chunk sink and re-bases the
    /// writer past them: returns `(start, bytes)` where `start` is the
    /// global offset of `bytes[0]`. Only valid at a row boundary (right
    /// after [`DeltaStreamWriter::end_row`]), so spilled chunks always
    /// end on row boundaries.
    pub fn drain(&mut self) -> (u64, Vec<u8>) {
        let start = self.base;
        let bytes = std::mem::take(&mut self.stream);
        // lint: arith-ok(base advances by a drained in-memory buffer length; u64 outlives addressable memory)
        self.base += bytes.len() as u64;
        (start, bytes)
    }

    /// Finalises into `(offsets, stream, probs, n_items)`.
    pub fn into_parts(self) -> (Vec<u64>, Vec<u8>, Vec<f64>, u64) {
        (self.offsets, self.stream, self.probs, self.n_items)
    }

    /// Borrowed view of the in-progress stream
    /// `(offsets, stream, probs, n_items)` — the checkpoint snapshot
    /// surface (valid only at a row boundary, i.e. right after
    /// [`DeltaStreamWriter::end_row`]).
    pub fn parts(&self) -> (&[u64], &[u8], &[f64], u64) {
        (&self.offsets, &self.stream, &self.probs, self.n_items)
    }

    /// Rebuilds an in-progress writer from checkpointed parts, positioned
    /// at the row boundary the parts were captured at: the prob-intern
    /// map is rebuilt from `probs` (ids are insertion order) and the
    /// delta base is re-derived from the offsets length, exactly as
    /// [`DeltaStreamWriter::end_row`] left it.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty (a valid stream always starts with
    /// offset 0).
    pub fn from_parts(offsets: Vec<u64>, stream: Vec<u8>, probs: Vec<f64>, n_items: u64) -> Self {
        assert!(!offsets.is_empty(), "offsets must start with 0");
        let prob_ids = probs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    p.to_bits(),
                    ids::id_u32(i, "interned probability ids fit u32"),
                )
            })
            .collect();
        let prev = (offsets.len() - 1) as i64;
        let base = offsets.last().unwrap() - stream.len() as u64;
        DeltaStreamWriter {
            offsets,
            stream,
            probs,
            prob_ids,
            n_items,
            prev,
            base,
        }
    }
}

/// The decoding counterpart of [`DeltaStreamWriter`]: a zero-alloc
/// cursor over one row's span of a delta-compressed stream, holding the
/// rebase / zig-zag-accumulation / prob-table invariants exactly once
/// for both the edge tier and `stab-markov`'s `Q` tier.
#[derive(Debug, Clone)]
pub struct DeltaStreamReader<'a> {
    stream: &'a [u8],
    pos: usize,
    end: usize,
    /// Delta base: the row id before the first item, then the previous
    /// target.
    prev: i64,
    probs: &'a [f64],
}

impl<'a> DeltaStreamReader<'a> {
    /// A cursor over row `row` spanning `offsets[row]..offsets[row + 1]`.
    #[inline]
    pub fn new(stream: &'a [u8], offsets: &[u64], row: usize, probs: &'a [f64]) -> Self {
        DeltaStreamReader {
            stream,
            pos: offsets[row] as usize,
            end: offsets[row + 1] as usize,
            prev: row as i64,
            probs,
        }
    }

    /// Whether the row's span is exhausted.
    #[inline]
    pub fn done(&self) -> bool {
        self.pos >= self.end
    }

    /// Decodes the next item's target (call first per item, mirroring
    /// [`DeltaStreamWriter::target`]).
    #[inline]
    pub fn target(&mut self) -> u32 {
        self.prev += vbyte::unzigzag(vbyte::read(self.stream, &mut self.pos));
        ids::delta_target(self.prev, "corrupt compressed delta stream")
    }

    /// Decodes a raw payload varint.
    #[inline]
    pub fn raw(&mut self) -> u64 {
        vbyte::read(self.stream, &mut self.pos)
    }

    /// Decodes a probability-table id and resolves it.
    #[inline]
    pub fn prob(&mut self) -> f64 {
        self.probs[vbyte::read(self.stream, &mut self.pos) as usize]
    }
}

/// Counting-sort inversion shared by the compressed tiers (the flat
/// tiers use [`Csr::invert`]): builds the u32-offset reverse CSR from a
/// per-row target cursor, decoding each row twice.
///
/// # Panics
///
/// Panics if `n_entries` exceeds `u32::MAX` — the reverse CSR is
/// u32-offset (checked, never silently wrapped).
pub fn invert_target_rows<I>(
    n_rows: usize,
    n_entries: u64,
    row_targets: impl Fn(usize) -> I,
) -> Csr<u32>
where
    I: Iterator<Item = u32>,
{
    invert_target_rows_budgeted(n_rows, n_entries, row_targets, &Budget::unlimited())
        .expect("unlimited budget cannot be exhausted")
}

/// Rows decoded between two budget probes of the inversion passes.
const INVERT_PROBE_STRIDE: usize = 1 << 16;

/// [`invert_target_rows`] under a cooperative [`Budget`]: the full
/// reverse-CSR allocation (4 B/entry data + 4 B/row counts + cursor) is
/// probed on the `reverse` stage up front, and both decoding passes
/// re-probe every [`INVERT_PROBE_STRIDE`] rows — the chunk-blocked
/// external inversion runs row-sequentially, so on the disk tier chunks
/// rotate through the cache exactly once per pass.
///
/// # Errors
///
/// [`CoreError::BudgetExhausted`] when a probe trips; the partial CSR is
/// discarded.
pub fn invert_target_rows_budgeted<I>(
    n_rows: usize,
    n_entries: u64,
    row_targets: impl Fn(usize) -> I,
    budget: &Budget,
) -> Result<Csr<u32>, CoreError>
where
    I: Iterator<Item = u32>,
{
    assert!(
        n_entries <= u32::MAX as u64,
        "reverse CSR is u32-offset; {n_entries} entries exceed it"
    );
    let full_bytes = n_entries * 4 + (n_rows as u64) * 8;
    budget.probe("reverse", full_bytes, n_rows as u64)?;
    let mut counts = vec![0u32; n_rows];
    for i in 0..n_rows {
        if i % INVERT_PROBE_STRIDE == 0 && i > 0 {
            budget.probe("reverse", (n_rows as u64) * 4, i as u64)?;
        }
        for t in row_targets(i) {
            counts[t as usize] += 1;
        }
    }
    // Exclusive prefix sum = the write cursor per target row
    // (`Csr::from_counts` re-derives the offsets from `counts`).
    let mut cursor = Vec::with_capacity(n_rows);
    let mut acc = 0u32;
    for &c in &counts {
        cursor.push(acc);
        acc += c;
    }
    let mut data = vec![0u32; n_entries as usize];
    for i in 0..n_rows {
        if i % INVERT_PROBE_STRIDE == 0 && i > 0 {
            budget.probe("reverse", full_bytes, i as u64)?;
        }
        for t in row_targets(i) {
            // lint: cast-ok(row index is bounded by the u32 id width)
            data[cursor[t as usize] as usize] = i as u32;
            cursor[t as usize] += 1;
        }
    }
    Ok(Csr::from_counts(&counts, data))
}

/// Which edge-store tier a run materialises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeStoreKind {
    /// The flat `Csr<Edge>` tier: 24 B/edge, u32 offsets, slice access —
    /// the fastest store while edge memory fits.
    #[default]
    Flat,
    /// The byte-packed delta stream: ~3–6 B/edge, u64 offsets, cursor
    /// access — for instances whose flat store exceeds RAM.
    Compressed,
    /// The compressed stream spilled to CRC-framed chunk files behind a
    /// pinned-budget cache: ~3–6 B/edge *on disk*, only offsets, the
    /// probability table and the cached chunks resident — for instances
    /// whose compressed stream itself exceeds RAM.
    Disk,
}

impl EdgeStoreKind {
    /// Stable lower-case label (`"flat"` / `"compressed"` / `"disk"`)
    /// used by the bench JSON schema.
    pub fn label(self) -> &'static str {
        match self {
            EdgeStoreKind::Flat => "flat",
            EdgeStoreKind::Compressed => "compressed",
            EdgeStoreKind::Disk => "disk",
        }
    }
}

/// Read access to per-row edge storage, implemented by both tiers and by
/// the runtime-selected [`EdgeStorage`].
pub trait EdgeStore {
    /// Number of rows (explored configurations).
    fn n_rows(&self) -> usize;
    /// Total number of stored edges (u64: representable past 2³²).
    fn n_edges(&self) -> u64;
    /// Heap bytes held by the store (offsets + edge data + side tables).
    fn edge_bytes(&self) -> u64;
    /// Which tier this store is.
    fn kind(&self) -> EdgeStoreKind;
    /// Zero-alloc cursor over row `i`'s decoded edges, in `(to, movers)`
    /// order.
    fn row_iter(&self, i: usize) -> EdgeIter<'_>;
    /// Whether row `i` stores no edges (terminal configuration).
    fn row_is_empty(&self, i: usize) -> bool;
}

impl EdgeStore for Csr<Edge> {
    fn n_rows(&self) -> usize {
        Csr::n_rows(self)
    }

    fn n_edges(&self) -> u64 {
        self.n_entries() as u64
    }

    fn edge_bytes(&self) -> u64 {
        (self.n_entries() * std::mem::size_of::<Edge>()
            + (Csr::n_rows(self) + 1) * std::mem::size_of::<u32>()) as u64
    }

    fn kind(&self) -> EdgeStoreKind {
        EdgeStoreKind::Flat
    }

    fn row_iter(&self, i: usize) -> EdgeIter<'_> {
        EdgeIter::Flat(self.row(i).iter())
    }

    fn row_is_empty(&self, i: usize) -> bool {
        self.row(i).is_empty()
    }
}

/// The compressed tier: per-row zig-zag varint successor deltas plus a
/// deduplicated probability table, delimited by u64 byte offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedEdges {
    /// Byte offset of each row's encoding in `stream` (`n_rows + 1`
    /// entries, monotone).
    offsets: Vec<u64>,
    /// The packed edge stream.
    stream: Vec<u8>,
    /// Deduplicated Definition 6 probabilities, indexed by the stream's
    /// probability ids.
    probs: Vec<f64>,
    /// Total edges across all rows.
    n_edges: u64,
}

impl CompressedEdges {
    /// Number of distinct probabilities interned in the side table.
    pub fn prob_table_len(&self) -> usize {
        self.probs.len()
    }

    /// The byte offsets delimiting each row's encoding.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The packed edge stream bytes.
    pub fn stream(&self) -> &[u8] {
        &self.stream
    }

    /// The deduplicated probability table.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Reassembles a store from checkpointed parts (inverse of the
    /// accessors above).
    pub fn from_parts(offsets: Vec<u64>, stream: Vec<u8>, probs: Vec<f64>, n_edges: u64) -> Self {
        CompressedEdges {
            offsets,
            stream,
            probs,
            n_edges,
        }
    }
}

impl EdgeStore for CompressedEdges {
    fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn n_edges(&self) -> u64 {
        self.n_edges
    }

    fn edge_bytes(&self) -> u64 {
        (self.stream.len()
            + self.offsets.len() * std::mem::size_of::<u64>()
            + self.probs.len() * std::mem::size_of::<f64>()) as u64
    }

    fn kind(&self) -> EdgeStoreKind {
        EdgeStoreKind::Compressed
    }

    fn row_iter(&self, i: usize) -> EdgeIter<'_> {
        EdgeIter::Compressed(CompressedRow(DeltaStreamReader::new(
            &self.stream,
            &self.offsets,
            i,
            &self.probs,
        )))
    }

    fn row_is_empty(&self, i: usize) -> bool {
        self.offsets[i] == self.offsets[i + 1]
    }
}

/// Zero-alloc decoding cursor over one compressed edge row.
#[derive(Debug, Clone)]
pub struct CompressedRow<'a>(DeltaStreamReader<'a>);

impl Iterator for CompressedRow<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        if self.0.done() {
            return None;
        }
        Some(Edge {
            to: self.0.target(),
            movers: self.0.raw(),
            prob: self.0.prob(),
        })
    }
}

/// The disk tier: the compressed encoding of [`CompressedEdges`], but
/// with the byte stream spilled to CRC-framed chunk files (see
/// [`super::spill`]); only the u64 row offsets, the deduplicated
/// probability table and a pinned-budget chunk cache stay resident.
/// Chunks end on row boundaries, so every row decodes from exactly one
/// cached chunk.
#[derive(Debug)]
pub struct DiskEdges {
    /// Global byte offset of each row's encoding (`n_rows + 1` entries,
    /// monotone) — resident.
    offsets: Vec<u64>,
    /// Deduplicated Definition 6 probabilities — resident.
    probs: Vec<f64>,
    /// Total edges across all rows.
    n_edges: u64,
    /// The spilled chunk files plus their cache.
    store: SpillStore,
}

impl DiskEdges {
    /// Number of distinct probabilities interned in the side table.
    pub fn prob_table_len(&self) -> usize {
        self.probs.len()
    }

    /// The byte offsets delimiting each row's encoding.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The deduplicated probability table.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Bytes currently resident in RAM: offsets + probability table +
    /// cached chunks (the figure budget probes report as cache pressure).
    pub fn resident_bytes(&self) -> u64 {
        (self.offsets.len() * 8 + self.probs.len() * 8) as u64 + self.store.resident_bytes()
    }

    /// High-water mark of [`DiskEdges::resident_bytes`] across the
    /// store's lifetime (cache peak, not current occupancy).
    pub fn peak_resident_bytes(&self) -> u64 {
        (self.offsets.len() * 8 + self.probs.len() * 8) as u64 + self.store.peak_resident_bytes()
    }

    /// Total payload bytes spilled to chunk files.
    pub fn spilled_bytes(&self) -> u64 {
        self.store.spilled_bytes()
    }

    /// The spill directory holding the chunk files.
    pub fn spill_dir(&self) -> &std::path::Path {
        self.store.dir()
    }

    /// Re-validates every chunk file's frame (magic, length, CRC32C)
    /// against the recorded metadata.
    ///
    /// # Errors
    ///
    /// [`CoreError::CheckpointCorrupt`] naming the first bad chunk — a
    /// torn or bit-flipped spill file is refused, never decoded.
    pub fn verify_chunks(&self) -> Result<(), CoreError> {
        self.store.verify_chunks()
    }
}

impl EdgeStore for DiskEdges {
    fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn n_edges(&self) -> u64 {
        self.n_edges
    }

    fn edge_bytes(&self) -> u64 {
        // Total footprint (comparable across tiers): resident side
        // tables plus the spilled stream bytes.
        (self.offsets.len() * 8 + self.probs.len() * 8) as u64 + self.store.spilled_bytes()
    }

    fn kind(&self) -> EdgeStoreKind {
        EdgeStoreKind::Disk
    }

    fn row_iter(&self, i: usize) -> EdgeIter<'_> {
        EdgeIter::Disk(DiskRow {
            cur: self.store.row_cursor(&self.offsets, i),
            probs: &self.probs,
        })
    }

    fn row_is_empty(&self, i: usize) -> bool {
        self.offsets[i] == self.offsets[i + 1]
    }
}

/// Decoding cursor over one disk-tier row: owns a pinned reference to
/// the row's cached chunk, so the cache may rotate underneath it.
#[derive(Debug, Clone)]
pub struct DiskRow<'a> {
    cur: SpillCursor,
    probs: &'a [f64],
}

impl Iterator for DiskRow<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        if self.cur.done() {
            return None;
        }
        Some(Edge {
            to: self.cur.target(),
            movers: self.cur.raw(),
            prob: self.probs[self.cur.raw() as usize],
        })
    }
}

/// Cursor over one row of any tier, yielding decoded [`Edge`]s by
/// value in `(to, movers)` order.
#[derive(Debug, Clone)]
pub enum EdgeIter<'a> {
    /// Slice walk over the flat tier.
    Flat(std::slice::Iter<'a, Edge>),
    /// Varint decode over the compressed tier.
    Compressed(CompressedRow<'a>),
    /// Varint decode over a pinned chunk of the disk tier.
    Disk(DiskRow<'a>),
}

impl Iterator for EdgeIter<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        match self {
            EdgeIter::Flat(it) => it.next().copied(),
            EdgeIter::Compressed(it) => it.next(),
            EdgeIter::Disk(it) => it.next(),
        }
    }
}

/// The per-run edge store of a [`TransitionSystem`](super::TransitionSystem):
/// whichever tier [`ExploreOptions::with_edge_store`](super::ExploreOptions::with_edge_store)
/// selected.
// One instance per run, so the Disk variant's inline size is moot.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum EdgeStorage {
    /// Flat `Csr<Edge>` tier.
    Flat(Csr<Edge>),
    /// Byte-packed compressed tier.
    Compressed(CompressedEdges),
    /// Disk-spilled compressed tier.
    Disk(DiskEdges),
}

impl EdgeStorage {
    /// Row `i` as a slice — **flat tier only**: `None` on the compressed
    /// and disk tiers, whose rows exist only in decoded form (iterate
    /// [`EdgeStore::row_iter`] instead).
    pub fn try_row_slice(&self, i: usize) -> Option<&[Edge]> {
        match self {
            EdgeStorage::Flat(csr) => Some(csr.row(i)),
            EdgeStorage::Compressed(_) | EdgeStorage::Disk(_) => None,
        }
    }

    /// Row `i` as a slice — **flat tier only**.
    ///
    /// # Panics
    ///
    /// Panics on the compressed tier; prefer
    /// [`EdgeStorage::try_row_slice`] (or the typed
    /// `CoreError::FlatStoreRequired` surface of
    /// `TransitionSystem::edges`).
    pub fn row_slice(&self, i: usize) -> &[Edge] {
        self.try_row_slice(i)
            .expect("edge slices exist only on the flat store; use row_iter / edge_iter")
    }

    /// The reverse adjacency as a `Csr<u32>` (row `j` = predecessors of
    /// `j`, ascending with multiplicity), built by decoding the stream
    /// twice on the compressed and disk tiers.
    ///
    /// # Panics
    ///
    /// Panics if the edge count exceeds `u32::MAX` — the reverse CSR is
    /// u32-offset (checked, never silently wrapped).
    pub fn invert_targets(&self) -> Csr<u32> {
        self.invert_targets_budgeted(&Budget::unlimited())
            .expect("unlimited budget cannot be exhausted")
    }

    /// [`EdgeStorage::invert_targets`] under a cooperative [`Budget`]:
    /// the reverse-CSR allocation is probed on the `reverse` stage before
    /// anything is built, and the chunk-blocked decoding passes re-probe
    /// per row block, so an over-budget inversion surfaces as
    /// [`CoreError::BudgetExhausted`] (a `Degraded` study outcome)
    /// instead of an OOM.
    ///
    /// # Errors
    ///
    /// [`CoreError::BudgetExhausted`] when a probe trips.
    pub fn invert_targets_budgeted(&self, budget: &Budget) -> Result<Csr<u32>, CoreError> {
        match self {
            EdgeStorage::Flat(csr) => {
                let full_bytes = csr.n_entries() as u64 * 4 + (Csr::n_rows(csr) as u64 + 1) * 4;
                budget.probe("reverse", full_bytes, Csr::n_rows(csr) as u64)?;
                Ok(csr.invert(|e| e.to))
            }
            EdgeStorage::Compressed(c) => invert_target_rows_budgeted(
                EdgeStore::n_rows(c),
                c.n_edges(),
                |i| c.row_iter(i).map(|e| e.to),
                budget,
            ),
            EdgeStorage::Disk(d) => invert_target_rows_budgeted(
                EdgeStore::n_rows(d),
                d.n_edges(),
                |i| d.row_iter(i).map(|e| e.to),
                budget,
            ),
        }
    }

    /// Bytes currently resident in RAM: equal to
    /// [`EdgeStore::edge_bytes`] on the in-RAM tiers; on the disk tier,
    /// only the offsets, probability table and cached chunks.
    pub fn resident_bytes(&self) -> u64 {
        match self {
            EdgeStorage::Flat(_) | EdgeStorage::Compressed(_) => self.edge_bytes(),
            EdgeStorage::Disk(d) => d.resident_bytes(),
        }
    }

    /// Bytes spilled to chunk files: zero on the in-RAM tiers.
    pub fn spilled_bytes(&self) -> u64 {
        match self {
            EdgeStorage::Flat(_) | EdgeStorage::Compressed(_) => 0,
            EdgeStorage::Disk(d) => d.spilled_bytes(),
        }
    }

    /// High-water mark of [`EdgeStorage::resident_bytes`]: equal to it
    /// on the in-RAM tiers, the cache's peak on the disk tier.
    pub fn peak_resident_bytes(&self) -> u64 {
        match self {
            EdgeStorage::Flat(_) | EdgeStorage::Compressed(_) => self.edge_bytes(),
            EdgeStorage::Disk(d) => d.peak_resident_bytes(),
        }
    }
}

impl EdgeStore for EdgeStorage {
    fn n_rows(&self) -> usize {
        match self {
            EdgeStorage::Flat(c) => EdgeStore::n_rows(c),
            EdgeStorage::Compressed(c) => EdgeStore::n_rows(c),
            EdgeStorage::Disk(d) => EdgeStore::n_rows(d),
        }
    }

    fn n_edges(&self) -> u64 {
        match self {
            EdgeStorage::Flat(c) => EdgeStore::n_edges(c),
            EdgeStorage::Compressed(c) => c.n_edges(),
            EdgeStorage::Disk(d) => d.n_edges(),
        }
    }

    fn edge_bytes(&self) -> u64 {
        match self {
            EdgeStorage::Flat(c) => EdgeStore::edge_bytes(c),
            EdgeStorage::Compressed(c) => c.edge_bytes(),
            EdgeStorage::Disk(d) => EdgeStore::edge_bytes(d),
        }
    }

    fn kind(&self) -> EdgeStoreKind {
        match self {
            EdgeStorage::Flat(_) => EdgeStoreKind::Flat,
            EdgeStorage::Compressed(_) => EdgeStoreKind::Compressed,
            EdgeStorage::Disk(_) => EdgeStoreKind::Disk,
        }
    }

    fn row_iter(&self, i: usize) -> EdgeIter<'_> {
        match self {
            EdgeStorage::Flat(c) => c.row_iter(i),
            EdgeStorage::Compressed(c) => c.row_iter(i),
            EdgeStorage::Disk(d) => d.row_iter(i),
        }
    }

    fn row_is_empty(&self, i: usize) -> bool {
        match self {
            EdgeStorage::Flat(c) => EdgeStore::row_is_empty(c, i),
            EdgeStorage::Compressed(c) => c.row_is_empty(i),
            EdgeStorage::Disk(d) => d.row_is_empty(i),
        }
    }
}

/// Incremental writer for the compressed tier: rows are appended in id
/// order, each item encoded as `(target delta, movers, prob id)` through
/// the shared [`DeltaStreamWriter`].
#[derive(Debug, Default)]
pub struct CompressedEdgesBuilder {
    w: DeltaStreamWriter,
}

impl CompressedEdgesBuilder {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the next row (edges sorted by `(to, movers)`, as every
    /// exploration path produces them).
    pub fn push_row(&mut self, edges: &[Edge]) {
        for e in edges {
            self.w.target(e.to);
            self.w.raw(e.movers);
            self.w.prob(e.prob);
        }
        self.w.end_row();
    }

    /// Finalises the stream.
    pub fn finish(self) -> CompressedEdges {
        let (offsets, stream, probs, n_edges) = self.w.into_parts();
        CompressedEdges {
            offsets,
            stream,
            probs,
            n_edges,
        }
    }

    /// The underlying writer (checkpoint snapshot surface).
    pub fn writer(&self) -> &DeltaStreamWriter {
        &self.w
    }

    /// Rebuilds a builder around a restored writer.
    pub fn from_writer(w: DeltaStreamWriter) -> Self {
        CompressedEdgesBuilder { w }
    }
}

/// Incremental writer for the disk tier: identical encoding to
/// [`CompressedEdgesBuilder`], but whenever the pending stream tail
/// reaches the configured chunk size at a row boundary it is drained
/// into a CRC-framed chunk file, so the builder's resident set stays
/// bounded by one chunk regardless of system size.
#[derive(Debug)]
pub struct DiskEdgesBuilder {
    w: DeltaStreamWriter,
    sink: SpillSink,
}

impl DiskEdgesBuilder {
    /// An empty builder spilling per `cfg` (a fresh self-cleaning
    /// temporary directory when `cfg.dir` is `None`).
    pub fn new(cfg: &SpillConfig) -> Self {
        DiskEdgesBuilder {
            w: DeltaStreamWriter::new(),
            sink: SpillSink::create(cfg),
        }
    }

    /// Appends the next row (edges sorted by `(to, movers)`), spilling a
    /// chunk when the pending tail is large enough.
    pub fn push_row(&mut self, edges: &[Edge]) {
        for e in edges {
            self.w.target(e.to);
            self.w.raw(e.movers);
            self.w.prob(e.prob);
        }
        self.w.end_row();
        self.sink.maybe_spill(&mut self.w);
    }

    /// The underlying writer (checkpoint snapshot surface; its pending
    /// tail starts at [`DeltaStreamWriter::pending_base`], earlier bytes
    /// are read back through [`DiskEdgesBuilder::byte_range`]).
    pub fn writer(&self) -> &DeltaStreamWriter {
        &self.w
    }

    /// Rebuilds a builder around a restored writer; the restored stream
    /// bytes are re-spilled as rows keep arriving.
    pub fn from_writer(w: DeltaStreamWriter, cfg: &SpillConfig) -> Self {
        DiskEdgesBuilder {
            w,
            sink: SpillSink::create(cfg),
        }
    }

    /// Copies the global byte range `start..end` of the stream —
    /// re-reading spilled chunks where needed — so checkpoint frames can
    /// snapshot deltas that have already left RAM.
    pub fn byte_range(&self, start: u64, end: u64) -> Vec<u8> {
        self.sink.byte_range(&self.w, start, end)
    }

    /// Finalises: drains the pending tail into a last chunk and seals
    /// the chunk set behind its cache.
    pub fn finish(mut self) -> DiskEdges {
        if self.w.pending_len() > 0 {
            self.sink.spill(&mut self.w);
        }
        let (offsets, _stream, probs, n_edges) = self.w.into_parts();
        DiskEdges {
            offsets,
            probs,
            n_edges,
            store: self.sink.finish(),
        }
    }
}

/// Tier-selected assembly used by the exploration paths: rows (or whole
/// chunks of rows) are appended in id order and the selected store comes
/// out of [`EdgeStorageBuilder::finish`].
#[derive(Debug)]
pub enum EdgeStorageBuilder {
    /// Accumulates per-row counts + flat edges for `Csr::from_counts`.
    Flat {
        /// Per-row edge counts.
        counts: Vec<u32>,
        /// Concatenated row data.
        edges: Vec<Edge>,
    },
    /// Streams rows straight into the compressed encoding.
    Compressed(CompressedEdgesBuilder),
    /// Streams rows into the compressed encoding, spilling chunks to
    /// disk as they fill.
    Disk(DiskEdgesBuilder),
}

impl EdgeStorageBuilder {
    /// An empty builder of the selected tier (the disk tier with its
    /// default [`SpillConfig`]: a self-cleaning temporary directory).
    pub fn new(kind: EdgeStoreKind) -> Self {
        Self::with_spill(kind, &SpillConfig::default())
    }

    /// An empty builder of the selected tier, spilling per `cfg` on the
    /// disk tier (`cfg` is ignored by the in-RAM tiers).
    pub fn with_spill(kind: EdgeStoreKind, cfg: &SpillConfig) -> Self {
        match kind {
            EdgeStoreKind::Flat => EdgeStorageBuilder::Flat {
                counts: Vec::new(),
                edges: Vec::new(),
            },
            EdgeStoreKind::Compressed => {
                EdgeStorageBuilder::Compressed(CompressedEdgesBuilder::new())
            }
            EdgeStoreKind::Disk => EdgeStorageBuilder::Disk(DiskEdgesBuilder::new(cfg)),
        }
    }

    /// Heap bytes currently held by the under-construction store — the
    /// usage an exploration reports at each budget probe. On the disk
    /// tier this is the *resident* set (offsets, probability table and
    /// the pending chunk), not the spilled bytes.
    pub fn bytes_estimate(&self) -> u64 {
        match self {
            EdgeStorageBuilder::Flat { counts, edges } => {
                (edges.len() * std::mem::size_of::<Edge>() + counts.len() * 4) as u64
            }
            EdgeStorageBuilder::Compressed(b) => {
                let (offsets, stream, probs, _) = b.writer().parts();
                // lint: arith-ok(approximate size accounting over resident buffer lengths)
                (stream.len() + offsets.len() * 8 + probs.len() * 8) as u64
            }
            EdgeStorageBuilder::Disk(b) => {
                let (offsets, _, probs, _) = b.writer().parts();
                // lint: arith-ok(approximate size accounting over resident buffer lengths)
                (b.writer().pending_len() + offsets.len() * 8 + probs.len() * 8) as u64
            }
        }
    }

    /// Appends the next row.
    ///
    /// # Panics
    ///
    /// Panics on the flat tier if the row holds more than `u32::MAX`
    /// edges (u32 per-row counts).
    pub fn push_row(&mut self, row: &[Edge]) {
        match self {
            EdgeStorageBuilder::Flat { counts, edges } => {
                counts.push(u32::try_from(row.len()).expect("row length exceeds u32::MAX edges"));
                edges.extend_from_slice(row);
            }
            EdgeStorageBuilder::Compressed(b) => b.push_row(row),
            EdgeStorageBuilder::Disk(b) => b.push_row(row),
        }
    }

    /// Appends a whole chunk of rows (`chunk_counts[i]` edges each,
    /// concatenated in `chunk_edges`) — the bulk path of the parallel
    /// full sweep.
    pub fn push_chunk(&mut self, chunk_counts: &[u32], chunk_edges: &[Edge]) {
        if let EdgeStorageBuilder::Flat { counts, edges } = self {
            counts.extend_from_slice(chunk_counts);
            edges.extend_from_slice(chunk_edges);
            return;
        }
        let mut base = 0usize;
        for &c in chunk_counts {
            // lint: arith-ok(base plus per-chunk counts stays within the slice the counts describe)
            self.push_row(&chunk_edges[base..base + c as usize]);
            // lint: arith-ok(cursor stays within chunk_edges.len, itself a valid usize)
            base += c as usize;
        }
    }

    /// Finalises the selected store.
    ///
    /// # Panics
    ///
    /// Panics on the flat tier past `u32::MAX` total edges
    /// ([`Csr::from_counts`]'s checked offsets) — the compressed tiers
    /// are the supported representations at that scale.
    pub fn finish(self) -> EdgeStorage {
        match self {
            EdgeStorageBuilder::Flat { counts, edges } => {
                EdgeStorage::Flat(Csr::from_counts(&counts, edges))
            }
            EdgeStorageBuilder::Compressed(b) => EdgeStorage::Compressed(b.finish()),
            EdgeStorageBuilder::Disk(b) => EdgeStorage::Disk(b.finish()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(to: u32, movers: u64, prob: f64) -> Edge {
        Edge { to, movers, prob }
    }

    #[test]
    fn vbyte_round_trips_across_widths() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            vbyte::write(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(vbyte::read(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_is_a_bijection_on_small_deltas() {
        for v in [-3i64, -2, -1, 0, 1, 2, 3, i64::MIN / 2, i64::MAX / 2] {
            assert_eq!(vbyte::unzigzag(vbyte::zigzag(v)), v);
        }
        // Small magnitudes stay small: one-byte varints for |δ| < 64.
        assert!(vbyte::zigzag(-64) < 128);
        assert!(vbyte::zigzag(63) < 128);
    }

    #[test]
    fn compressed_round_trips_rows() {
        let rows: Vec<Vec<Edge>> = vec![
            vec![edge(0, 0b1, 0.5), edge(2, 0b10, 0.5)],
            vec![],
            vec![edge(0, 0b11, 0.25), edge(1, 0b1, 0.25), edge(1, 0b10, 0.5)],
        ];
        let mut b = CompressedEdgesBuilder::new();
        for r in &rows {
            b.push_row(r);
        }
        let store = b.finish();
        assert_eq!(EdgeStore::n_rows(&store), 3);
        assert_eq!(store.n_edges(), 5);
        // Two distinct probabilities interned.
        assert_eq!(store.prob_table_len(), 2);
        for (i, want) in rows.iter().enumerate() {
            let got: Vec<Edge> = store.row_iter(i).collect();
            assert_eq!(&got, want, "row {i}");
            assert_eq!(store.row_is_empty(i), want.is_empty());
        }
    }

    #[test]
    fn offsets_are_monotone_and_bytes_accounted() {
        let mut b = CompressedEdgesBuilder::new();
        for i in 0..50u32 {
            let row: Vec<Edge> = (0..i % 7)
                .map(|j| edge(i + j, 1 << (j % 8), 0.125))
                .collect();
            b.push_row(&row);
        }
        let store = b.finish();
        for w in store.offsets().windows(2) {
            assert!(w[0] <= w[1], "offsets monotone");
        }
        assert_eq!(
            *store.offsets().last().unwrap() as usize,
            store.edge_bytes() as usize - store.offsets().len() * 8 - store.prob_table_len() * 8
        );
    }

    #[test]
    fn storage_matches_between_tiers() {
        let rows: Vec<Vec<Edge>> = (0..20)
            .map(|i| {
                (0..(i % 5))
                    .map(|j| edge((i * 7 + j * 3) % 20, (1 << j) | 1, 1.0 / (j + 1) as f64))
                    .collect()
            })
            .collect();
        let mut flat = EdgeStorageBuilder::new(EdgeStoreKind::Flat);
        let mut comp = EdgeStorageBuilder::new(EdgeStoreKind::Compressed);
        // Tiny chunks and cache so even this 20-row system spans several
        // spill files, exercises cross-chunk row cursors, and evicts.
        let spill = SpillConfig {
            chunk_bytes: 16,
            cache_bytes: 32,
            ..SpillConfig::default()
        };
        let mut disk = EdgeStorageBuilder::with_spill(EdgeStoreKind::Disk, &spill);
        for r in &rows {
            flat.push_row(r);
            comp.push_row(r);
            disk.push_row(r);
        }
        let flat = flat.finish();
        let comp = comp.finish();
        let disk = disk.finish();
        assert_eq!(flat.kind(), EdgeStoreKind::Flat);
        assert_eq!(comp.kind(), EdgeStoreKind::Compressed);
        assert_eq!(disk.kind(), EdgeStoreKind::Disk);
        assert_eq!(flat.n_edges(), comp.n_edges());
        assert_eq!(flat.n_edges(), disk.n_edges());
        for i in 0..rows.len() {
            let a: Vec<Edge> = flat.row_iter(i).collect();
            let b: Vec<Edge> = comp.row_iter(i).collect();
            let c: Vec<Edge> = disk.row_iter(i).collect();
            assert_eq!(a, b, "row {i}");
            assert_eq!(a, c, "row {i}");
        }
        // The compressed tier beats 24 B/edge even on this tiny system.
        assert!(comp.edge_bytes() < flat.edge_bytes());
        // The disk tier keeps less than the full stream resident.
        assert!(disk.resident_bytes() < disk.edge_bytes());
    }

    #[test]
    fn push_chunk_equals_per_row_pushes() {
        let rows: Vec<Vec<Edge>> = vec![
            vec![edge(1, 1, 0.5)],
            vec![edge(0, 2, 0.25), edge(3, 1, 0.75)],
            vec![],
            vec![edge(2, 4, 1.0)],
        ];
        // lint: cast-ok(four-row test fixture)
        let counts: Vec<u32> = rows.iter().map(|r| r.len() as u32).collect();
        let flat_edges: Vec<Edge> = rows.iter().flatten().copied().collect();
        for kind in [
            EdgeStoreKind::Flat,
            EdgeStoreKind::Compressed,
            EdgeStoreKind::Disk,
        ] {
            let mut by_row = EdgeStorageBuilder::new(kind);
            for r in &rows {
                by_row.push_row(r);
            }
            let mut by_chunk = EdgeStorageBuilder::new(kind);
            by_chunk.push_chunk(&counts, &flat_edges);
            let (a, b) = (by_row.finish(), by_chunk.finish());
            for i in 0..rows.len() {
                let ra: Vec<Edge> = a.row_iter(i).collect();
                let rb: Vec<Edge> = b.row_iter(i).collect();
                assert_eq!(ra, rb);
            }
        }
    }

    #[test]
    fn invert_targets_agrees_between_tiers() {
        let rows: Vec<Vec<Edge>> = vec![
            vec![edge(1, 1, 1.0), edge(2, 2, 1.0)],
            vec![edge(2, 1, 1.0)],
            vec![edge(0, 1, 0.5), edge(2, 2, 0.5)],
        ];
        let mut flat = EdgeStorageBuilder::new(EdgeStoreKind::Flat);
        let mut comp = EdgeStorageBuilder::new(EdgeStoreKind::Compressed);
        let mut disk = EdgeStorageBuilder::new(EdgeStoreKind::Disk);
        for r in &rows {
            flat.push_row(r);
            comp.push_row(r);
            disk.push_row(r);
        }
        let (flat, comp, disk) = (flat.finish(), comp.finish(), disk.finish());
        let (ra, rb, rc) = (
            flat.invert_targets(),
            comp.invert_targets(),
            disk.invert_targets(),
        );
        assert_eq!(ra, rb);
        assert_eq!(ra, rc);
        assert_eq!(rb.row(2), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "edge slices exist only on the flat store")]
    fn compressed_row_slice_panics() {
        let mut b = EdgeStorageBuilder::new(EdgeStoreKind::Compressed);
        b.push_row(&[edge(0, 1, 1.0)]);
        let store = b.finish();
        let _ = store.row_slice(0);
    }
}
