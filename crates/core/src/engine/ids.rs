//! Checked narrowing helpers for the engine's typed id widths.
//!
//! The exploration engine stores configuration ids, edge targets,
//! probability-pool indices and CSR offsets as `u32` — a deliberate
//! memory/format decision (the durable frame and spill formats encode
//! them as 4-byte fields, and [`Plan`](crate::engine::Plan) caps
//! reachable exploration at the id width). Every narrowing from the
//! host-width `usize`/`u64`/`i64` world into those ids goes through
//! this module instead of a bare `as` cast, so overflow is either
//! routed to [`CoreError::OffsetOverflow`] (fallible constructors) or
//! aborts with a named invariant (per-edge fast paths where the bound
//! was already enforced upstream) — never silently wrapped.
//!
//! The `stab-lint` cast audit enforces the discipline: a raw narrowing
//! `as` in the engine must either call through here or carry a
//! `// lint: cast-ok(<reason>)` annotation.

use crate::CoreError;

/// Fallibly narrows a count or byte offset into a `u32` id, naming
/// `what` in the error.
///
/// ```
/// use stab_core::engine::ids;
/// assert_eq!(ids::try_u32(7, "config id").unwrap(), 7);
/// assert!(ids::try_u32(1 << 33, "config id").is_err());
/// ```
///
/// # Errors
///
/// Returns [`CoreError::OffsetOverflow`] when `value` exceeds
/// `u32::MAX`.
#[inline]
pub fn try_u32(value: u64, what: &'static str) -> Result<u32, CoreError> {
    u32::try_from(value).map_err(|_| CoreError::OffsetOverflow {
        what,
        value: value as u128,
    })
}

/// [`try_u32`] for host-width indices (lengths, `Vec` sizes).
///
/// # Errors
///
/// Returns [`CoreError::OffsetOverflow`] when `index` exceeds
/// `u32::MAX`.
#[inline]
pub fn try_id(index: usize, what: &'static str) -> Result<u32, CoreError> {
    try_u32(index as u64, what)
}

/// Narrows an in-bounds index into a `u32` id, aborting with the named
/// invariant if it does not fit.
///
/// For per-edge fast paths where the bound is already enforced upstream
/// (interning fails at the id width, `Plan` rejects caps above it), so
/// an overflow here is a logic error, not an input error. The check is
/// a single compare — cheap enough for hot loops — and turns silent
/// wrapping into a loud, named failure.
#[inline]
/// [`id_u32`] for `u64` values (full-space indices, delta cursors).
pub fn id_u32_wide(value: u64, invariant: &'static str) -> u32 {
    u32::try_from(value).unwrap_or_else(|_| panic!("{invariant}: {value} exceeds u32"))
}

pub fn id_u32(index: usize, invariant: &'static str) -> u32 {
    u32::try_from(index).unwrap_or_else(|_| panic!("{invariant}: {index} exceeds u32"))
}

/// Narrows a delta-stream cursor's running `i64` target back to the
/// `u32` id it was encoded from, aborting if the stream is corrupt
/// enough to leave the range.
///
/// Zigzag delta decoding accumulates into `i64` (deltas may be
/// negative); a well-formed stream's partial sums are exactly the
/// original `u32` targets, so leaving `[0, u32::MAX]` means the stream
/// bytes are corrupt.
#[inline]
pub fn delta_target(acc: i64, invariant: &'static str) -> u32 {
    u32::try_from(acc).unwrap_or_else(|_| panic!("{invariant}: accumulated target {acc}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_u32_round_trips_and_overflows() {
        assert_eq!(try_id(0usize, "config id"), Ok(0));
        assert_eq!(try_u32(u32::MAX as u64, "config id"), Ok(u32::MAX));
        let e = try_u32(u32::MAX as u64 + 1, "csr offset").unwrap_err();
        assert_eq!(
            e,
            CoreError::OffsetOverflow {
                what: "csr offset",
                value: u32::MAX as u128 + 1,
            }
        );
        assert!(e.to_string().contains("csr offset"));
    }

    #[test]
    fn id_u32_passes_in_range() {
        assert_eq!(id_u32(42, "test id"), 42);
        assert_eq!(id_u32(u32::MAX as usize, "test id"), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "interned ids stay below u32::MAX")]
    fn id_u32_names_the_invariant_on_overflow() {
        id_u32(u32::MAX as usize + 1, "interned ids stay below u32::MAX");
    }

    #[test]
    fn delta_target_accepts_the_u32_range() {
        assert_eq!(delta_target(0, "t"), 0);
        assert_eq!(delta_target(u32::MAX as i64, "t"), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "corrupt delta stream")]
    fn delta_target_rejects_negatives() {
        delta_target(-1, "corrupt delta stream");
    }
}
