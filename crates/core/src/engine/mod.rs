//! The flat CSR transition engine shared by the checker and the Markov
//! builder.
//!
//! # Architecture
//!
//! ```text
//!            SpaceIndexer (mixed-radix bijection C ↔ 0..total)
//!                 │
//!   ConfigCursor  │  in-place enumeration, digits kept incrementally
//!                 ▼
//!   TransitionSystem::explore  ── chunked over scoped threads ──┐
//!                 │                                             │
//!                 │  per chunk: guards + outcome deltas once    │
//!                 │  per configuration, successors by delta-    │
//!                 │  encoding (O(|activation|) per edge)        │
//!                 ▼                                             │
//!        deterministic chunk-order merge  ◄─────────────────────┘
//!                 │
//!                 ▼
//!   Csr<Edge> (forward) · Csr<u32> (reverse, lazy) · BitSet labels
//!        │                        │
//!        ▼                        ▼
//!   stab-checker               stab-markov
//!   (Tarjan/fair cycles,       (Q rows read off Edge::prob,
//!    reachability closures)     backward absorption check)
//! ```
//!
//! The engine records, per configuration, the outgoing [`Edge`]s (successor
//! id, activated-process bitmask, and the randomized-scheduler probability
//! of Definition 6), the enabled-process bitmask, and bit-packed
//! legitimate/initial sets. The checker consumes the `(to, movers)`
//! projection possibilistically; the Markov builder consumes `(to, prob)`.
//! Both projections of one exploration are guaranteed consistent by
//! construction — the seed computed them in two separate passes.
//!
//! # Exploration modes
//!
//! The diagram above shows the default *full sweep* (ids = mixed-radix
//! indices). [`TransitionSystem::explore_with`] additionally offers, per
//! run ([`ExploreOptions`]):
//!
//! * **on-the-fly reachable-only BFS** ([`ExploreOptions::reachable`]) —
//!   hash-interned ids in discovery order, CSR built incrementally from
//!   the frontier; memory scales with the reachable set instead of the
//!   product space;
//! * **symmetry-group quotienting** ([`ExploreOptions::with_quotient`]) —
//!   one id per orbit of the selected group (ring rotations, ring
//!   dihedral, or the topology-derived automorphism group — leaf
//!   permutations on stars and trees), canonicalized by
//!   [`GroupCanonicalizer`] (Booth's O(N) least rotation on rings); folded
//!   parallel edges merge with probabilities summed, so [`Edge::prob`]
//!   stays the exact Definition 6 lumping. A per-run equivariance gate
//!   rejects unsound algorithm–group combinations.
//!
//! Throughput is tracked per PR by `cargo run --release --bin exp_explore`
//! (crate `stab-bench`), which writes `BENCH_explore.json`; see ROADMAP.md
//! for the schema and the recorded speedups.

pub mod bitset;
pub mod csr;
pub mod cursor;
pub mod edgestore;
mod equivariance;
pub mod explore;
pub mod ids;
pub mod onthefly;
pub mod parallel;
pub mod plan;
pub mod quotient;
pub mod resilience;
mod rowgen;
pub mod spill;

pub use bitset::BitSet;
pub use csr::Csr;
pub use cursor::ConfigCursor;
pub use edgestore::{
    CompressedEdges, CompressedEdgesBuilder, DiskEdges, DiskEdgesBuilder, EdgeIter, EdgeStorage,
    EdgeStorageBuilder, EdgeStore, EdgeStoreKind,
};
pub use explore::{explore_count, node_mask, Edge, TransitionSystem};
pub use onthefly::{ExploreMode, ExploreOptions, Quotient, TraversalMode};
pub use plan::{Plan, PlanDecision, PlanRequest, DEFAULT_BYTE_BUDGET, DEFAULT_DISK_BYTE_BUDGET};
pub use quotient::{least_rotation, CanonScratch, GroupCanonicalizer};
pub use resilience::{Budget, CheckpointConfig, FaultPlan, RunGuard};
pub use spill::{SpillConfig, SpillStore};
