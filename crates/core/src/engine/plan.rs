//! Exploration planning: resolve *what to explore and how* before paying
//! for the exploration.
//!
//! PRs 2–4 made [`ExploreOptions`] powerful but expert-only: picking the
//! right symmetry quotient requires knowing which groups the algorithm
//! respects (and the equivariance gate rejects the rest per run), and
//! picking the edge-store tier requires estimating the flat store's
//! 24 B/edge footprint against the machine's RAM. [`Plan::compute`] makes
//! both choices mechanically, *before* exploring:
//!
//! 1. **Size estimate** — the full space size comes straight off the
//!    [`SpaceIndexer`]; the edge count is estimated by generating a
//!    deterministic stride sample of successor rows (the same `rowgen`
//!    path the exploration itself uses) and extrapolating the mean
//!    out-degree.
//! 2. **Quotient auto-selection** — candidate groups are tried best
//!    first ([`Quotient::Automorphism`], then [`Quotient::RingRotation`])
//!    through the *same* per-run equivariance gate the exploration
//!    enforces, so the plan never proposes a quotient the run would
//!    reject. The first sound group with order > 1 wins; if none is
//!    sound, the plan records why each candidate was rejected and falls
//!    back to [`Quotient::None`].
//! 3. **Edge-store auto-selection** — a three-way ladder over
//!    *analysis-time* footprints, not bare store sizes: the verdict
//!    passes materialize a reverse CSR and the Markov stage mirrors the
//!    edges into a `QStorage` of the same tier, so the resident peak is
//!    store + reverse + Q (≈ 2× the store alone). If the estimated flat
//!    analysis footprint fits the byte budget
//!    ([`PlanRequest::byte_budget`], default [`DEFAULT_BYTE_BUDGET`]),
//!    the flat tier is chosen (fastest while RAM lasts); else the
//!    compressed tier, unless even *its* analysis footprint exceeds the
//!    RAM ceiling ([`PlanRequest::disk_byte_budget`], default
//!    [`DEFAULT_DISK_BYTE_BUDGET`]) — then the edge stream spills to
//!    `WSR1` disk chunks ([`EdgeStoreKind::Disk`]) and the analyses run
//!    streaming. The full-sweep estimate is used deliberately even when
//!    a quotient was selected: quotient folding merges parallel edges
//!    nonuniformly, so the post-quotient edge count is not reliably
//!    predictable from the group order alone, and the planner prefers to
//!    err toward the memory-frugal tier.
//!
//! Every decision — auto or forced — is recorded as a [`PlanDecision`]
//! with its reason, so reports built on a plan (the facade `Study`, the
//! bench rows) can show *why* a run was configured the way it was.
//!
//! ```
//! use stab_core::engine::{EdgeStoreKind, Plan, PlanRequest, Quotient};
//! use stab_core::{Daemon, SpaceIndexer};
//! # use stab_core::{ActionId, ActionMask, Algorithm, Outcomes, Predicate, View};
//! # use stab_graph::{builders, Graph, NodeId};
//! # struct Flip { g: Graph }
//! # impl Algorithm for Flip {
//! #     type State = bool;
//! #     fn graph(&self) -> &Graph { &self.g }
//! #     fn name(&self) -> String { "flip".into() }
//! #     fn state_space(&self, _v: NodeId) -> Vec<bool> { vec![false, true] }
//! #     fn enabled_actions<V: View<bool>>(&self, v: &V) -> ActionMask {
//! #         let differs = (0..v.degree()).any(|p| v.neighbor(p.into()) != v.me());
//! #         ActionMask::when(differs, ActionId::A1)
//! #     }
//! #     fn apply<V: View<bool>>(&self, v: &V, _a: ActionId) -> Outcomes<bool> {
//! #         Outcomes::certain(!*v.me())
//! #     }
//! # }
//! let alg = Flip { g: builders::ring(6) };
//! let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
//! let spec = Predicate::new("agreement", |c: &stab_core::Configuration<bool>| {
//!     c.states().iter().all(|&b| b) || c.states().iter().all(|&b| !b)
//! });
//! let plan = Plan::compute(&alg, &ix, Daemon::Central, &spec, &PlanRequest::default()).unwrap();
//! // Anonymous uniform ring + invariant spec: the full dihedral group is
//! // sound, and 64 configurations sit far below any byte budget.
//! assert_eq!(plan.quotient, Quotient::Automorphism);
//! assert_eq!(plan.edge_store, EdgeStoreKind::Flat);
//! let opts = plan.options::<bool>();
//! assert_eq!(opts.quotient, Quotient::Automorphism);
//! ```

use std::fmt;
use std::mem::size_of;

use crate::algorithm::Algorithm;
use crate::scheduler::DaemonSpec;
use crate::space::SpaceIndexer;
use crate::spec::Legitimacy;
use crate::CoreError;

use super::edgestore::EdgeStoreKind;
use super::equivariance;
use super::explore::conflict_masks;
use super::onthefly::{ExploreOptions, Quotient};
use super::quotient::GroupCanonicalizer;
use super::rowgen::RowGen;

/// Default byte budget for the flat-tier decision: 32 MiB of
/// analysis-time flat footprint. Conservative on purpose — the
/// compressed tier costs little time (it has even been measured *faster*
/// on large sweeps, writing 4–6× fewer bytes) while the flat tier's
/// failure mode is exhausting RAM.
pub const DEFAULT_BYTE_BUDGET: u64 = 32 << 20;

/// Default RAM ceiling for the disk-tier decision: when even the
/// *compressed* analysis footprint (stream + reverse CSR + Q mirror) is
/// estimated past 4 GiB, the planner spills the edge stream to `WSR1`
/// disk chunks. Distinct from [`DEFAULT_BYTE_BUDGET`] because the two
/// budgets answer different questions: `byte_budget` is how much RAM we
/// *happily spend for speed* (flat is an optimization), the ceiling is
/// how much the machine *has* (beyond it the run must go out-of-core).
pub const DEFAULT_DISK_BYTE_BUDGET: u64 = 4 << 30;

/// Default number of successor rows sampled for the edge estimate.
pub const DEFAULT_SAMPLE_ROWS: u64 = 64;

/// Flat-tier cost per stored edge (`size_of::<Edge>()`).
const FLAT_BYTES_PER_EDGE: u64 = 24;

/// Estimated compressed-stream cost per stored edge (measured ≈ 5 B on
/// ring sweeps; 6 errs toward the memory-frugal tier).
const COMPRESSED_BYTES_PER_EDGE: u64 = 6;

/// Reverse-CSR cost per edge (`u32` target per entry).
const REVERSE_BYTES_PER_EDGE: u64 = 4;

/// Flat `QStorage` cost per entry (`(u32, f64)` target/probability pair).
const Q_FLAT_BYTES_PER_ENTRY: u64 = 16;

/// What the planner may decide, and within which budget.
///
/// `None` fields are decided automatically; `Some` fields are forced and
/// recorded as non-auto decisions (a forced choice still appears in the
/// plan, so reports show the complete configuration either way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRequest {
    /// Byte budget for the flat tier; estimated full-sweep *analysis*
    /// footprints (store + reverse CSR + Q mirror) above it select the
    /// compressed tier.
    pub byte_budget: u64,
    /// RAM ceiling for the compressed tier; estimated compressed
    /// analysis footprints above it select the disk tier.
    pub disk_byte_budget: u64,
    /// Number of rows sampled for the edge estimate.
    pub sample_rows: u64,
    /// Forced quotient (`None` = auto-select through the equivariance
    /// gate).
    pub quotient: Option<Quotient>,
    /// Forced edge-store tier (`None` = auto-select under the budget).
    pub edge_store: Option<EdgeStoreKind>,
}

impl Default for PlanRequest {
    fn default() -> Self {
        PlanRequest {
            byte_budget: DEFAULT_BYTE_BUDGET,
            disk_byte_budget: DEFAULT_DISK_BYTE_BUDGET,
            sample_rows: DEFAULT_SAMPLE_ROWS,
            quotient: None,
            edge_store: None,
        }
    }
}

impl PlanRequest {
    /// Replaces the byte budget.
    #[must_use]
    pub fn with_byte_budget(mut self, byte_budget: u64) -> Self {
        self.byte_budget = byte_budget;
        self
    }

    /// Replaces the disk-tier RAM ceiling.
    #[must_use]
    pub fn with_disk_byte_budget(mut self, disk_byte_budget: u64) -> Self {
        self.disk_byte_budget = disk_byte_budget;
        self
    }

    /// Forces the quotient instead of auto-selecting.
    #[must_use]
    pub fn with_quotient(mut self, quotient: Quotient) -> Self {
        self.quotient = Some(quotient);
        self
    }

    /// Forces the edge-store tier instead of auto-selecting.
    #[must_use]
    pub fn with_edge_store(mut self, edge_store: EdgeStoreKind) -> Self {
        self.edge_store = Some(edge_store);
        self
    }
}

/// One recorded planner decision: which setting, what was chosen, whether
/// the planner chose it (vs a forced override), and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDecision {
    /// The setting decided (`"quotient"` or `"edge_store"`).
    pub setting: &'static str,
    /// The chosen value's stable label.
    pub choice: String,
    /// Whether the planner made the choice (false = forced by the
    /// caller).
    pub auto: bool,
    /// Human-readable rationale (includes rejected candidates).
    pub reason: String,
}

impl fmt::Display for PlanDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} ({}): {}",
            self.setting,
            self.choice,
            if self.auto { "auto" } else { "forced" },
            self.reason
        )
    }
}

/// A resolved exploration plan: size estimates, the selected quotient and
/// edge-store tier, and the decision record. Convert to engine options
/// with [`Plan::options`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Full configuration-space size (`SpaceIndexer::total`).
    pub total_configs: u64,
    /// Rows actually sampled for the edge estimate.
    pub sampled_rows: u64,
    /// Mean out-degree over the sample.
    pub est_edges_per_config: f64,
    /// Estimated edge count of the full sweep.
    pub est_full_edges: u64,
    /// Estimated flat-store bytes of the full sweep (edges + offsets).
    pub est_full_flat_bytes: u64,
    /// Estimated *analysis-time* flat footprint: store + reverse CSR +
    /// mirrored flat `QStorage`. This — not the bare store — is what the
    /// flat decision compares against the budget (plans that merely fit
    /// the store used to exceed budget ≈ 2× once analyses ran).
    pub est_analysis_flat_bytes: u64,
    /// Estimated analysis-time compressed footprint: edge stream +
    /// reverse CSR + mirrored compressed `QStorage`.
    pub est_analysis_compressed_bytes: u64,
    /// The byte budget the flat-tier decision was made against.
    pub byte_budget: u64,
    /// The RAM ceiling the disk-tier decision was made against.
    pub disk_byte_budget: u64,
    /// The selected quotient ([`Quotient::None`] when no sound group was
    /// found or none was wanted).
    pub quotient: Quotient,
    /// Order of the selected group (1 without a quotient).
    pub group_order: u64,
    /// Estimated explored states after quotienting
    /// (≈ `total / group_order`, and exactly `total` without a quotient).
    pub est_explored_configs: u64,
    /// The selected edge-store tier.
    pub edge_store: EdgeStoreKind,
    /// Every decision made, with rationale.
    pub decisions: Vec<PlanDecision>,
}

impl Plan {
    /// Computes a plan for exploring `alg` under `daemon` against `spec`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::TooManyEnabled`] — row sampling hit the
    ///   distributed-daemon enumeration cap (the exploration would too);
    /// * [`CoreError::QuotientUnsupported`] — only when a quotient was
    ///   *forced* and fails structural validation (auto mode records the
    ///   rejection and falls back instead).
    pub fn compute<A, L>(
        alg: &A,
        ix: &SpaceIndexer<A::State>,
        daemon: impl Into<DaemonSpec>,
        spec: &L,
        req: &PlanRequest,
    ) -> Result<Plan, CoreError>
    where
        A: Algorithm,
        L: Legitimacy<A::State>,
    {
        let daemon = daemon.into();
        let total = ix.total();
        let (sampled_rows, est_edges_per_config) = estimate_out_degree(alg, ix, daemon, req)?;
        // lint: cast-ok(sizing estimate, not an id; ceil of a non-negative count)
        let est_full_edges = (est_edges_per_config * total as f64).ceil() as u64;
        let row_overhead = (total + 1) * size_of::<u32>() as u64;
        let est_full_flat_bytes = est_full_edges * FLAT_BYTES_PER_EDGE + row_overhead;
        // Analysis-time corrections: verdict passes materialize the
        // reverse CSR and the Markov stage mirrors the edges into a
        // `QStorage` of the same tier, so the resident peak is
        // store + reverse + Q — comparing the bare store against the
        // budget under-counted by ≈ 2×.
        let est_reverse_bytes = est_full_edges * REVERSE_BYTES_PER_EDGE + row_overhead;
        let est_analysis_flat_bytes = est_full_flat_bytes
            + est_reverse_bytes
            + est_full_edges * Q_FLAT_BYTES_PER_ENTRY
            + row_overhead;
        let est_compressed_store_bytes =
            est_full_edges * COMPRESSED_BYTES_PER_EDGE + (total + 1) * size_of::<u64>() as u64;
        let est_analysis_compressed_bytes = 2 * est_compressed_store_bytes + est_reverse_bytes;

        let mut decisions = Vec::new();
        let (quotient, group_order) = match req.quotient {
            Some(q) => {
                let order = forced_group_order(alg, ix, q)?;
                decisions.push(PlanDecision {
                    setting: "quotient",
                    choice: q.label().to_string(),
                    auto: false,
                    reason: "forced by caller".to_string(),
                });
                (q, order)
            }
            None => auto_quotient(alg, ix, daemon, spec, &mut decisions)?,
        };
        let est_explored_configs = (total / group_order).max(1);

        let edge_store = match req.edge_store {
            Some(kind) => {
                decisions.push(PlanDecision {
                    setting: "edge_store",
                    choice: kind.label().to_string(),
                    auto: false,
                    reason: "forced by caller".to_string(),
                });
                kind
            }
            None => {
                let (kind, reason) = if est_analysis_flat_bytes <= req.byte_budget {
                    (
                        EdgeStoreKind::Flat,
                        format!(
                            "estimated analysis-time flat footprint ≈ {est_analysis_flat_bytes} \
                             bytes (store + reverse CSR + Q mirror over {est_full_edges} edges) \
                             within the {}-byte budget",
                            req.byte_budget,
                        ),
                    )
                } else if est_analysis_compressed_bytes <= req.disk_byte_budget {
                    (
                        EdgeStoreKind::Compressed,
                        format!(
                            "estimated analysis-time flat footprint ≈ {est_analysis_flat_bytes} \
                             bytes (store + reverse CSR + Q mirror over {est_full_edges} edges) \
                             exceeds the {}-byte budget; compressed footprint ≈ \
                             {est_analysis_compressed_bytes} bytes stays within the {}-byte RAM \
                             ceiling",
                            req.byte_budget, req.disk_byte_budget,
                        ),
                    )
                } else {
                    (
                        EdgeStoreKind::Disk,
                        format!(
                            "estimated analysis-time compressed footprint ≈ \
                             {est_analysis_compressed_bytes} bytes (stream + reverse CSR + Q \
                             mirror over {est_full_edges} edges) exceeds the {}-byte RAM \
                             ceiling; spilling the edge stream to disk chunks",
                            req.disk_byte_budget,
                        ),
                    )
                };
                decisions.push(PlanDecision {
                    setting: "edge_store",
                    choice: kind.label().to_string(),
                    auto: true,
                    reason,
                });
                kind
            }
        };

        Ok(Plan {
            total_configs: total,
            sampled_rows,
            est_edges_per_config,
            est_full_edges,
            est_full_flat_bytes,
            est_analysis_flat_bytes,
            est_analysis_compressed_bytes,
            byte_budget: req.byte_budget,
            disk_byte_budget: req.disk_byte_budget,
            quotient,
            group_order,
            est_explored_configs,
            edge_store,
            decisions,
        })
    }

    /// The engine options this plan resolves to (always a full sweep —
    /// stabilization checks quantify over *every* initial configuration,
    /// which is what the planner plans for; reachable-mode runs remain an
    /// explicit expert option).
    pub fn options<S>(&self) -> ExploreOptions<S> {
        ExploreOptions::full()
            .with_quotient(self.quotient)
            .with_edge_store(self.edge_store)
    }

    /// Whether both the quotient and the edge-store tier were chosen by
    /// the planner (no forced overrides).
    pub fn fully_auto(&self) -> bool {
        self.decisions.iter().all(|d| d.auto)
    }
}

/// Samples successor rows on a deterministic stride and returns
/// `(rows sampled, mean out-degree)`.
fn estimate_out_degree<A>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    req: &PlanRequest,
) -> Result<(u64, f64), CoreError>
where
    A: Algorithm,
{
    let total = ix.total();
    let count = req.sample_rows.clamp(1, total);
    let stride = (total / count).max(1);
    let conflicts = conflict_masks(alg, daemon);
    let mut gen = RowGen::new();
    let mut digits = Vec::new();
    let mut edges = 0u64;
    for i in 0..count {
        let full = i * stride;
        let cfg = ix.decode(full);
        ix.write_digits(full, &mut digits);
        gen.generate(alg, ix, daemon, &conflicts, &cfg, &digits, full)?;
        edges += gen.row.len() as u64;
    }
    Ok((count, edges as f64 / count as f64))
}

/// Group order of a forced quotient (propagating structural failures —
/// the forced run would fail identically).
fn forced_group_order<A>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    quotient: Quotient,
) -> Result<u64, CoreError>
where
    A: Algorithm,
{
    Ok(match quotient {
        Quotient::None => 1,
        Quotient::RingRotation => GroupCanonicalizer::ring_rotation(alg.graph(), ix)?.group_order(),
        Quotient::RingDihedral => GroupCanonicalizer::ring_dihedral(alg.graph(), ix)?.group_order(),
        Quotient::Automorphism => GroupCanonicalizer::automorphism(alg.graph(), ix)?.group_order(),
    })
}

/// Tries candidate groups best-first through the equivariance gate and
/// returns the first sound one (or [`Quotient::None`] with every
/// rejection recorded).
fn auto_quotient<A, L>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    spec: &L,
    decisions: &mut Vec<PlanDecision>,
) -> Result<(Quotient, u64), CoreError>
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    let mut rejections = Vec::new();
    // Automorphism resolves to the topology's full group (dihedral on
    // rings, leaf permutations on stars/trees) — the largest reduction —
    // and RingRotation catches oriented ring protocols whose reflection
    // image the gate rejects.
    for candidate in [Quotient::Automorphism, Quotient::RingRotation] {
        let canon = match candidate {
            Quotient::Automorphism => GroupCanonicalizer::automorphism(alg.graph(), ix),
            Quotient::RingRotation => GroupCanonicalizer::ring_rotation(alg.graph(), ix),
            _ => unreachable!("candidate list"),
        };
        let canon = match canon {
            Ok(c) => c,
            Err(CoreError::QuotientUnsupported { reason }) => {
                rejections.push(format!("{}: {reason}", candidate.label()));
                continue;
            }
            Err(e) => return Err(e),
        };
        if canon.group_order() <= 1 {
            rejections.push(format!("{}: trivial group", candidate.label()));
            continue;
        }
        match equivariance::check_quotient_sound(alg, ix, daemon, spec, &canon) {
            Ok(()) => {
                let order = canon.group_order();
                decisions.push(PlanDecision {
                    setting: "quotient",
                    choice: candidate.label().to_string(),
                    auto: true,
                    reason: format!(
                        "group of order {order} passed the equivariance gate{}",
                        if rejections.is_empty() {
                            String::new()
                        } else {
                            format!(" (rejected: {})", rejections.join("; "))
                        }
                    ),
                });
                return Ok((candidate, order));
            }
            Err(CoreError::QuotientUnsupported { reason }) => {
                rejections.push(format!("{}: {reason}", candidate.label()));
            }
            Err(e) => return Err(e),
        }
    }
    decisions.push(PlanDecision {
        setting: "quotient",
        choice: Quotient::None.label().to_string(),
        auto: true,
        reason: format!("no sound symmetry group ({})", rejections.join("; ")),
    });
    Ok((Quotient::None, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::test_support::Infection;
    use crate::engine::TransitionSystem;
    use crate::{Configuration, Daemon, Predicate};
    use stab_graph::builders;

    fn all_ones(c: &Configuration<u8>) -> bool {
        c.states().iter().all(|&s| s == 1)
    }

    fn infection() -> (Infection, Predicate<u8>) {
        let alg = Infection {
            g: builders::path(3),
        };
        (alg, Predicate::new("all-ones", all_ones))
    }

    #[test]
    fn small_space_estimates_exactly_and_stays_flat() {
        let (alg, spec) = infection();
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let plan =
            Plan::compute(&alg, &ix, Daemon::Central, &spec, &PlanRequest::default()).unwrap();
        // 8 configurations < 64 samples: the estimate is exhaustive, so
        // it matches the real exploration exactly.
        let ts = TransitionSystem::explore(&alg, &ix, Daemon::Central, &spec).unwrap();
        assert_eq!(plan.sampled_rows, 8);
        assert_eq!(plan.est_full_edges, ts.n_edges());
        assert_eq!(plan.edge_store, EdgeStoreKind::Flat);
        assert!(plan.fully_auto());
        // Paths of length 3 have a nontrivial automorphism (reflection),
        // but infection is symmetric, so any outcome of the gate is
        // acceptable here — what matters is that the plan's options run.
        let opts = plan.options::<u8>();
        let planned = TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts);
        assert!(planned.is_ok());
    }

    #[test]
    fn tiny_budget_selects_compressed() {
        let (alg, spec) = infection();
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let req = PlanRequest::default().with_byte_budget(8);
        let plan = Plan::compute(&alg, &ix, Daemon::Central, &spec, &req).unwrap();
        assert_eq!(plan.edge_store, EdgeStoreKind::Compressed);
        let store = plan
            .decisions
            .iter()
            .find(|d| d.setting == "edge_store")
            .unwrap();
        assert!(store.auto);
        assert!(store.reason.contains("exceeds"));
        // The corrected (analysis-time) figure is what the decision
        // records — it must dominate the bare store estimate.
        assert!(plan.est_analysis_flat_bytes > plan.est_full_flat_bytes);
        assert!(store
            .reason
            .contains(&plan.est_analysis_flat_bytes.to_string()));
    }

    #[test]
    fn tiny_ram_ceiling_selects_disk() {
        let (alg, spec) = infection();
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let req = PlanRequest::default()
            .with_byte_budget(8)
            .with_disk_byte_budget(8);
        let plan = Plan::compute(&alg, &ix, Daemon::Central, &spec, &req).unwrap();
        assert_eq!(plan.edge_store, EdgeStoreKind::Disk);
        let store = plan
            .decisions
            .iter()
            .find(|d| d.setting == "edge_store")
            .unwrap();
        assert!(store.auto);
        assert!(store.reason.contains("spilling"));
        assert!(store
            .reason
            .contains(&plan.est_analysis_compressed_bytes.to_string()));
        // The planned options must actually run on the disk tier.
        let opts = plan.options::<u8>();
        assert_eq!(opts.edge_store, EdgeStoreKind::Disk);
        let planned = TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts);
        assert!(planned.is_ok());
    }

    #[test]
    fn analysis_budget_boundary_is_exact() {
        let (alg, spec) = infection();
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let probe =
            Plan::compute(&alg, &ix, Daemon::Central, &spec, &PlanRequest::default()).unwrap();
        // Budget exactly at the flat analysis estimate: flat still fits.
        let req = PlanRequest::default().with_byte_budget(probe.est_analysis_flat_bytes);
        let plan = Plan::compute(&alg, &ix, Daemon::Central, &spec, &req).unwrap();
        assert_eq!(plan.edge_store, EdgeStoreKind::Flat);
        // One byte below, with the ceiling at the compressed estimate:
        // compressed fits exactly.
        let req = PlanRequest::default()
            .with_byte_budget(probe.est_analysis_flat_bytes - 1)
            .with_disk_byte_budget(probe.est_analysis_compressed_bytes);
        let plan = Plan::compute(&alg, &ix, Daemon::Central, &spec, &req).unwrap();
        assert_eq!(plan.edge_store, EdgeStoreKind::Compressed);
        // One byte below the compressed estimate: spill.
        let req = PlanRequest::default()
            .with_byte_budget(probe.est_analysis_flat_bytes - 1)
            .with_disk_byte_budget(probe.est_analysis_compressed_bytes - 1);
        let plan = Plan::compute(&alg, &ix, Daemon::Central, &spec, &req).unwrap();
        assert_eq!(plan.edge_store, EdgeStoreKind::Disk);
    }

    #[test]
    fn forced_choices_are_recorded_as_forced() {
        let (alg, spec) = infection();
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let req = PlanRequest::default()
            .with_quotient(Quotient::None)
            .with_edge_store(EdgeStoreKind::Compressed);
        let plan = Plan::compute(&alg, &ix, Daemon::Central, &spec, &req).unwrap();
        assert_eq!(plan.quotient, Quotient::None);
        assert_eq!(plan.group_order, 1);
        assert_eq!(plan.edge_store, EdgeStoreKind::Compressed);
        assert!(!plan.fully_auto());
        assert!(plan.decisions.iter().all(|d| !d.auto));
        assert!(plan.decisions[0].to_string().contains("forced"));
    }

    #[test]
    fn unsound_algorithms_fall_back_to_no_quotient_with_reasons() {
        // A rooted (non-anonymous) ring algorithm: node 0 runs a
        // different program, so no ring quotient is sound. The spec
        // singles out node 0 as well.
        struct Rooted {
            g: stab_graph::Graph,
        }
        impl Algorithm for Rooted {
            type State = bool;
            fn graph(&self) -> &stab_graph::Graph {
                &self.g
            }
            fn name(&self) -> String {
                "rooted".into()
            }
            fn state_space(&self, _v: stab_graph::NodeId) -> Vec<bool> {
                vec![false, true]
            }
            fn enabled_actions<V: crate::View<bool>>(&self, v: &V) -> crate::ActionMask {
                crate::ActionMask::when(v.node().index() == 0 && !*v.me(), crate::ActionId::A1)
            }
            fn apply<V: crate::View<bool>>(&self, _v: &V, _a: crate::ActionId) -> Outcomes {
                crate::Outcomes::certain(true)
            }
        }
        type Outcomes = crate::Outcomes<bool>;
        let alg = Rooted {
            g: builders::ring(4),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = Predicate::new("root-set", |c: &Configuration<bool>| *c.get(0.into()));
        let plan =
            Plan::compute(&alg, &ix, Daemon::Central, &spec, &PlanRequest::default()).unwrap();
        assert_eq!(plan.quotient, Quotient::None);
        assert_eq!(plan.group_order, 1);
        let q = plan
            .decisions
            .iter()
            .find(|d| d.setting == "quotient")
            .unwrap();
        assert!(q.auto);
        assert!(q.reason.contains("no sound symmetry group"));
        assert!(q.reason.contains("automorphism"));
        assert!(q.reason.contains("ring-rotation"));
    }
}
