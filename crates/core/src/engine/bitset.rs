//! Bit-packed configuration sets.
//!
//! The checker's `legit` / `initial` / `reachable` sets over configuration
//! ids were `Vec<bool>` in the seed implementation — one byte per
//! configuration. [`BitSet`] packs them 64 per word, which both shrinks the
//! working set eightfold and turns the frequent "reachable ∧ ¬legit" style
//! combinations into word-wide operations.

/// A fixed-length set of configuration ids, one bit each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` ids.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` ids.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        s.trim();
        s
    }

    /// Builds the set of ids where `f` holds.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut s = BitSet::new(len);
        for i in 0..len {
            if f(i) {
                s.insert(i);
            }
        }
        s
    }

    /// Packs a slice of booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        Self::from_fn(bools.len(), |i| bools[i])
    }

    /// The backing 64-bit words (bit `i` of the set is bit `i % 64` of
    /// word `i / 64`) — the checkpoint serialization surface.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from its backing words (inverse of
    /// [`BitSet::words`]). Bits past `len` in the last word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly `len.div_ceil(64)` long.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let mut s = BitSet { words, len };
        s.trim();
        s
    }

    /// Universe size (number of ids, not number of members).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `i` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Inserts `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Number of members.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether every id of the universe is a member.
    pub fn is_full(&self) -> bool {
        self.count_ones() == self.len as u64
    }

    /// Iterator over the members in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// The members of `self` that are not members of `other`
    /// (`self ∖ other`), word-parallel.
    ///
    /// # Panics
    ///
    /// Panics on universe size mismatch.
    pub fn and_not(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "universe size mismatch");
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            len: self.len,
        }
    }

    /// Zeroes the bits past `len` (invariant after whole-word fills).
    fn trim(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(!s.get(129));
        s.insert(129);
        s.insert(0);
        s.insert(64);
        assert!(s.get(129) && s.get(0) && s.get(64) && !s.get(1));
        assert_eq!(s.count_ones(), 3);
        s.remove(64);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn full_respects_partial_last_word() {
        let s = BitSet::full(70);
        assert_eq!(s.count_ones(), 70);
        assert!(s.is_full());
        assert!(s.get(69));
    }

    #[test]
    fn ones_iterates_in_order() {
        let s = BitSet::from_fn(200, |i| i % 63 == 0);
        let got: Vec<usize> = s.ones().collect();
        assert_eq!(got, vec![0, 63, 126, 189]);
    }

    #[test]
    fn and_not_is_set_difference() {
        let a = BitSet::from_fn(100, |i| i < 50);
        let b = BitSet::from_fn(100, |i| i % 2 == 0);
        let d = a.and_not(&b);
        assert_eq!(d.count_ones(), 25);
        assert!(d.get(1) && !d.get(2) && !d.get(51));
    }

    #[test]
    fn from_bools_matches() {
        let s = BitSet::from_bools(&[true, false, true]);
        assert!(s.get(0) && !s.get(1) && s.get(2));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let _ = BitSet::new(3).get(3);
    }
}
