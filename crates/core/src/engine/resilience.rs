//! Checkpoint/resume, budgets, and deterministic fault injection.
//!
//! Explorations that run for hours (Herman N≥17 sweeps) used to be
//! all-or-nothing: a crash at 99% lost everything, and a blown byte budget
//! was an OOM kill rather than a reported outcome. This module makes the
//! sequential exploration paths resilient:
//!
//! * **Checkpoint frames** — [`CheckpointConfig`] (built via
//!   `ExploreOptions::with_checkpoint`) makes the engine periodically
//!   persist the exploration state as a chain of CRC32C-framed *delta*
//!   frames, each carrying only what changed since the previous frame
//!   (the compressed edge stream is sequential-append with u64 byte
//!   offsets precisely so a byte range of it is a valid delta). Total
//!   write volume over a run is therefore one copy of the final state,
//!   not O(state × frames). Frames are written atomically
//!   (temp file + rename); a torn or bit-flipped frame fails CRC or
//!   length validation and the loader falls back to the longest valid
//!   prefix — never a wrong state. Only the *final* frame is fsynced:
//!   delta frames in the page cache already survive the fault this
//!   machinery defends against (the process dying), a machine crash at
//!   worst tears a suffix the validation discards and a re-run heals,
//!   and skipping the per-frame fsync keeps the measured checkpoint
//!   overhead on a bench-sized sweep under 5% instead of ~90%.
//! * **Budgets** — [`Budget`] carries wall-time / byte / state limits and
//!   is probed cooperatively inside the exploration loops (and by the
//!   checker's Tarjan pass and the Markov Gauss–Seidel solver).
//!   Exhaustion surfaces as [`CoreError::BudgetExhausted`], which the
//!   study pipeline converts into a `Degraded` stage status instead of a
//!   panic or OOM.
//! * **Fault injection** — [`FaultPlan`] deterministically kills a run
//!   right after the k-th durable frame ([`CoreError::Interrupted`]),
//!   trips budget exhaustion at the k-th probe, and provides the
//!   truncate / bit-flip primitives the corruption test campaigns use.
//!
//! # Frame format (`ckpt-NNNNNN.bin`, version `WSR1`)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "WSR1"
//! 4       8     run fingerprint (FNV-1a over algorithm/daemon/options)
//! 12      8     sequence number (0-based, contiguous)
//! 20      1     kind: 0 = delta, 1 = final
//! 21      8     payload length
//! 29      4     CRC32C (Castagnoli) of the payload
//! 33      …     payload (little-endian delta encoding)
//! ```
//!
//! A file whose length is not exactly `33 + payload length`, whose CRC
//! does not match, or whose header fields are inconsistent is rejected,
//! and the chain ends at the previous frame. The chain is complete when
//! its last frame has kind `final`, which additionally records the state
//! identity (dense total or interned table), the symmetry canonicalizer,
//! and the quotient/traversal modes so
//! `TransitionSystem::resume` can reconstruct a bit-identical system.

// This module owns the workspace's only `unsafe` (the SSE 4.2 CRC path);
// unsafe operations inside `unsafe fn` bodies still need their own
// explicitly justified blocks.
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::fs;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::bitset::BitSet;
use super::edgestore::{
    CompressedEdgesBuilder, DeltaStreamWriter, DiskEdgesBuilder, EdgeStorageBuilder, EdgeStoreKind,
};
use super::explore::{Edge, TransitionSystem};
use super::onthefly::{Quotient, StateIds, StateTable, TraversalMode};
use super::quotient::{GroupCanonicalizer, Strategy};
use super::spill::SpillConfig;
use crate::error::CoreError;

/// Frame magic: **W**eak **S**tabilization **R**esilience, version 1.
const MAGIC: &[u8; 4] = b"WSR1";

/// Frame-format constants shared with [`super::spill`]'s chunk reader.
pub(crate) const FRAME_MAGIC: [u8; 4] = *MAGIC;
pub(crate) const FRAME_HEADER_LEN: usize = HEADER_LEN;
/// Fixed header size preceding every frame payload.
const HEADER_LEN: usize = 33;

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli, polynomial 0x82F63B78). Frame payloads reach
// hundreds of MB (the compressed edge stream rides in them), so the
// checksum is on the checkpoint critical path: the Castagnoli polynomial
// is the one x86 implements in hardware (SSE 4.2 `crc32`, ~20 GB/s), and
// the software fallback is a slice-by-8 table walk (8 bytes per step)
// with bit-identical results.
// ---------------------------------------------------------------------------

/// The Castagnoli polynomial, reflected form — the workspace's single
/// defining site (`stab-lint`'s constant audit holds it to one).
const CRC32C_POLY: u32 = 0x82F6_3B78;

const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32; // lint: cast-ok(table index < 256)
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                CRC32C_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

fn crc_update_sw(mut c: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ c;
        let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        // lint: cast-ok(u8 widens losslessly into u32)
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Bytes per lane in the 3-way interleaved hardware path. Must stay a
/// power of two: [`CRC_SHIFT_LANE`] is derived from its bit count by
/// repeated squaring.
const CRC_LANE: usize = 8192;

/// GF(2) operator appending `CRC_LANE` zero bytes to a raw (reflected,
/// no pre/post-XOR) CRC32C register state — `mat[i]` is the image of bit
/// `i`. Built by squaring the append-one-zero-bit operator
/// log2(8·CRC_LANE) times.
const CRC_SHIFT_LANE: [u32; 32] = {
    let mut mat = [0u32; 32];
    mat[0] = CRC32C_POLY;
    let mut i = 1;
    while i < 32 {
        mat[i] = 1u32 << (i - 1);
        i += 1;
    }
    let mut k = 0;
    while k < (8 * CRC_LANE).trailing_zeros() {
        // mat ← mat², via mat applied to each of its own rows.
        let mut sq = [0u32; 32];
        let mut r = 0;
        while r < 32 {
            let mut sum = 0u32;
            let mut v = mat[r];
            let mut b = 0;
            while v != 0 {
                if v & 1 != 0 {
                    sum ^= mat[b];
                }
                v >>= 1;
                b += 1;
            }
            sq[r] = sum;
            r += 1;
        }
        mat = sq;
        k += 1;
    }
    mat
};

/// Applies the zero-append operator: the register state that checksums
/// `X` followed by `CRC_LANE` zero bytes, given the state for `X`.
#[inline]
fn crc_shift_lane(c: u32) -> u32 {
    let mut sum = 0u32;
    let mut v = c;
    let mut b = 0;
    while v != 0 {
        if v & 1 != 0 {
            sum ^= CRC_SHIFT_LANE[b];
        }
        v >>= 1;
        b += 1;
    }
    sum
}

/// The SSE 4.2 `crc32` instruction has ~3-cycle latency, so a single
/// dependency chain runs at a third of its throughput; three independent
/// lanes hide the latency, and the per-round states recombine through
/// the linearity of CRC: `state(A‖B, s) = state(B, 0) ⊕ shift(state(A, s))`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
// SAFETY: callers must ensure SSE 4.2 is available — `crc_update` is the
// only caller and runtime-detects it; the pointer reads below stay
// inside `data`.
unsafe fn crc_update_hw(c: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = c;
    let mut rest = data;
    while rest.len() >= 3 * CRC_LANE {
        let pa = rest.as_ptr() as *const u64;
        let pb = rest[CRC_LANE..].as_ptr() as *const u64;
        let pd = rest[2 * CRC_LANE..].as_ptr() as *const u64;
        let (mut ca, mut cb, mut cd) = (c as u64, 0u64, 0u64);
        for i in 0..CRC_LANE / 8 {
            // SAFETY: lane `i` reads bytes `8i..8i+8` of its CRC_LANE
            // window and `rest` holds ≥ 3·CRC_LANE bytes, so every read
            // is in bounds; `read_unaligned` has no alignment demand,
            // and the intrinsic is available per this function's
            // target-feature contract.
            unsafe {
                ca = _mm_crc32_u64(ca, pa.add(i).read_unaligned());
                cb = _mm_crc32_u64(cb, pb.add(i).read_unaligned());
                cd = _mm_crc32_u64(cd, pd.add(i).read_unaligned());
            }
        }
        // lint: cast-ok(crc32 of a u64 lane occupies the low 32 bits)
        c = cd as u32 ^ crc_shift_lane(cb as u32 ^ crc_shift_lane(ca as u32));
        rest = &rest[3 * CRC_LANE..];
    }
    let mut crc = c as u64;
    let mut chunks = rest.chunks_exact(8);
    for w in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(w);
        // Safe call: the intrinsic takes plain values and this function
        // carries the matching #[target_feature].
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(word));
    }
    // lint: cast-ok(crc32 of a u64 lane occupies the low 32 bits)
    let mut c = crc as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    c
}

/// Folds `data` into a running CRC32C state (`0xFFFF_FFFF` initially;
/// XOR with `0xFFFF_FFFF` to finish). Streaming form so the frame writer
/// can checksum payload sections as it writes them.
fn crc_update(c: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("sse4.2") {
            // SAFETY: guarded by the runtime feature check above.
            return unsafe { crc_update_hw(c, data) };
        }
    }
    crc_update_sw(c, data)
}

/// CRC32C (Castagnoli, reflected, polynomial `0x82F63B78`) of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// FNV-1a fingerprinting.
// ---------------------------------------------------------------------------

/// Incremental 64-bit FNV-1a hasher — fingerprints a run's identity so a
/// checkpoint directory is never resumed by a different exploration, and
/// digests a finished system's content for bit-identity assertions.
#[derive(Debug, Clone)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Budgets.
// ---------------------------------------------------------------------------

/// Cooperative resource limits for a study run.
///
/// A `Budget` is probed at natural check-points inside the long loops —
/// exploration batches, Tarjan root visits, Gauss–Seidel sweeps. A probe
/// that finds a limit exhausted returns
/// [`CoreError::BudgetExhausted`], which callers propagate so the study
/// pipeline can record a `Degraded` stage outcome and keep whatever
/// partial results earlier stages produced. The default budget is
/// unlimited and every probe succeeds.
///
/// Wall time is measured from construction, so one budget threaded
/// through all stages enforces a study-wide deadline.
#[derive(Debug, Clone)]
pub struct Budget {
    start: Instant,
    wall_ms: Option<u64>,
    max_bytes: Option<u64>,
    max_states: Option<u64>,
    trip_at_probe: Option<u64>,
    probes: Cell<u64>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            start: Instant::now(),
            wall_ms: None,
            max_bytes: None,
            max_states: None,
            trip_at_probe: None,
            probes: Cell::new(0),
        }
    }
}

impl Budget {
    /// A budget with no limits; every probe succeeds.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps wall-clock time, measured from the budget's construction.
    #[must_use]
    pub fn with_wall_time(mut self, limit: Duration) -> Self {
        self.wall_ms = Some(limit.as_millis().min(u64::MAX as u128) as u64);
        self
    }

    /// Caps the bytes a probing stage may hold (as self-reported at each
    /// probe — edge-store bytes for exploration, solver vectors for
    /// Gauss–Seidel).
    #[must_use]
    pub fn with_max_bytes(mut self, limit: u64) -> Self {
        self.max_bytes = Some(limit);
        self
    }

    /// Caps the states processed by a probing stage.
    #[must_use]
    pub fn with_max_states(mut self, limit: u64) -> Self {
        self.max_states = Some(limit);
        self
    }

    /// Fault injection: the k-th probe (1-based, across all stages)
    /// reports exhaustion regardless of actual usage. Wired from
    /// [`FaultPlan::with_budget_trip_at_probe`] by [`RunGuard::new`].
    #[must_use]
    pub fn with_probe_trip(mut self, kth_probe: u64) -> Self {
        self.trip_at_probe = Some(kth_probe);
        self
    }

    /// Whether any limit (or injected trip) is configured.
    pub fn is_limited(&self) -> bool {
        self.wall_ms.is_some()
            || self.max_bytes.is_some()
            || self.max_states.is_some()
            || self.trip_at_probe.is_some()
    }

    /// Number of probes taken so far.
    pub fn probes_seen(&self) -> u64 {
        self.probes.get()
    }

    /// One cooperative check-point: `bytes` and `states` are the caller's
    /// current usage. Fails with [`CoreError::BudgetExhausted`] naming
    /// `stage` when a limit is exhausted (or the fault-injected probe
    /// trip fires).
    pub fn probe(&self, stage: &'static str, bytes: u64, states: u64) -> Result<(), CoreError> {
        let n = self.probes.get() + 1;
        self.probes.set(n);
        if let Some(k) = self.trip_at_probe {
            if n >= k {
                return Err(CoreError::BudgetExhausted {
                    stage,
                    resource: "fault-injected",
                    limit: k,
                    used: n,
                });
            }
        }
        if let Some(limit) = self.wall_ms {
            let used = self.start.elapsed().as_millis().min(u64::MAX as u128) as u64;
            if used >= limit {
                return Err(CoreError::BudgetExhausted {
                    stage,
                    resource: "wall-time-ms",
                    limit,
                    used,
                });
            }
        }
        if let Some(limit) = self.max_bytes {
            if bytes > limit {
                return Err(CoreError::BudgetExhausted {
                    stage,
                    resource: "bytes",
                    limit,
                    used: bytes,
                });
            }
        }
        if let Some(limit) = self.max_states {
            if states > limit {
                return Err(CoreError::BudgetExhausted {
                    stage,
                    resource: "states",
                    limit,
                    used: states,
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

/// A deterministic fault schedule for resilience testing.
///
/// Two injection points: dying right after the k-th durable checkpoint
/// frame (the frame survives on disk; the run returns
/// [`CoreError::Interrupted`] — a deterministic stand-in for SIGKILL),
/// and tripping budget exhaustion at the k-th probe. [`FaultPlan::seeded`]
/// derives a kill-point from a seed via the vendored `rand` so proptest
/// campaigns can sweep kill-points reproducibly. The associated
/// [`FaultPlan::truncate_file`] / [`FaultPlan::flip_bit`] helpers are the
/// frame-corruption primitives the CRC tests use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    kill_after_frames: Option<u64>,
    trip_at_probe: Option<u64>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Derives a kill-point (after frame 1..=8) deterministically from
    /// `seed`.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        FaultPlan {
            kill_after_frames: Some(rng.random_range(1u64..9)),
            trip_at_probe: None,
        }
    }

    /// Kill the run right after the `k`-th durable frame (1-based).
    #[must_use]
    pub fn with_kill_after_frames(mut self, k: u64) -> Self {
        self.kill_after_frames = Some(k);
        self
    }

    /// Trip budget exhaustion at the `k`-th probe (1-based).
    #[must_use]
    pub fn with_budget_trip_at_probe(mut self, k: u64) -> Self {
        self.trip_at_probe = Some(k);
        self
    }

    /// The configured kill-point, if any.
    pub fn kill_after_frames(&self) -> Option<u64> {
        self.kill_after_frames
    }

    /// The configured probe trip, if any.
    pub fn budget_trip_at_probe(&self) -> Option<u64> {
        self.trip_at_probe
    }

    /// Whether any fault is scheduled.
    pub fn is_active(&self) -> bool {
        self.kill_after_frames.is_some() || self.trip_at_probe.is_some()
    }

    /// Corruption primitive: truncates `path` to `keep` bytes (a torn
    /// write).
    pub fn truncate_file(path: &Path, keep: u64) -> std::io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(keep)
    }

    /// Corruption primitive: flips one bit of `path` (bit index taken
    /// modulo the file's bit length).
    pub fn flip_bit(path: &Path, bit: u64) -> std::io::Result<()> {
        let mut data = fs::read(path)?;
        if data.is_empty() {
            return Ok(());
        }
        let byte = (bit as usize / 8) % data.len();
        data[byte] ^= 1 << (bit % 8);
        fs::write(path, data)
    }
}

/// Bundles the [`Budget`] and [`FaultPlan`] guarding one run, passed to
/// `TransitionSystem::explore_guarded`. [`RunGuard::new`] merges the
/// plan's probe trip into the budget so exploration code only probes the
/// budget.
#[derive(Debug, Clone, Default)]
pub struct RunGuard {
    budget: Budget,
    faults: FaultPlan,
}

impl RunGuard {
    /// Combines a budget and a fault plan.
    pub fn new(budget: Budget, faults: FaultPlan) -> Self {
        let budget = match faults.trip_at_probe {
            Some(k) => budget.with_probe_trip(k),
            None => budget,
        };
        RunGuard { budget, faults }
    }

    /// The (possibly trip-armed) budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether the guard constrains the run at all. Guarded runs take the
    /// sequential exploration path so probes and checkpoints see a
    /// deterministic prefix.
    pub fn is_active(&self) -> bool {
        self.budget.is_limited() || self.faults.is_active()
    }

    /// Probes the budget (see [`Budget::probe`]).
    pub fn probe(&self, stage: &'static str, bytes: u64, states: u64) -> Result<(), CoreError> {
        self.budget.probe(stage, bytes, states)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint configuration.
// ---------------------------------------------------------------------------

/// Where and how often to write checkpoint frames (see
/// `ExploreOptions::with_checkpoint`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the `ckpt-NNNNNN.bin` frame chain (created if
    /// missing).
    pub dir: PathBuf,
    /// A delta frame is written each time this many further states have
    /// been explored since the last frame (clamped to at least 1).
    pub every_n_states: u64,
}

impl CheckpointConfig {
    /// A checkpoint cadence over `dir`.
    pub fn new(dir: impl Into<PathBuf>, every_n_states: u64) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_n_states,
        }
    }
}

/// The checkpoint frame files under `dir`, in sequence order. Empty when
/// the directory does not exist.
pub fn list_frames(dir: &Path) -> Vec<PathBuf> {
    let mut frames: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if let Some(seq) = parse_frame_seq(&path) {
            frames.push((seq, path));
        }
    }
    frames.sort_by_key(|(seq, _)| *seq);
    frames.into_iter().map(|(_, p)| p).collect()
}

fn frame_name(seq: u64) -> String {
    format!("ckpt-{seq:06}.bin")
}

/// `Some(seq)` if `path` names a committed frame file.
fn parse_frame_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".bin")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Little-endian payload codec (streaming write side).
// ---------------------------------------------------------------------------

/// Payload sections at or above this size bypass the staging buffer and
/// go straight to the file (the compressed edge stream's byte range is
/// the one such section — tens of MB per frame chain).
const DIRECT_WRITE: usize = 1 << 20;
/// Direct writes are issued in chunks of this size: one giant `write(2)`
/// measures ~2–3× slower than a loop of page-cache-friendly chunks.
const WRITE_CHUNK: usize = 8 << 20;
/// Staging-buffer flush threshold for the small sections.
const SMALL_FLUSH: usize = 1 << 19;

/// Streams one frame's payload straight to its `ckpt-NNNNNN.tmp` file,
/// folding every byte into a running CRC32C, then patches the header's
/// length/CRC fields and renames into place. Never materializes the
/// payload: the alternative (encode to a `Vec`, checksum it, write it)
/// triples the memory traffic on a payload that carries the whole
/// compressed edge stream.
///
/// I/O errors are sticky — encoding methods stay infallible like a plain
/// buffer's and the first error surfaces from [`FrameSink::finish`]. A
/// frame torn before the final header patch still carries the zeroed
/// placeholder length, so the loader's exact-length check rejects it.
///
/// Shared with [`super::spill`], which writes the disk tier's chunk
/// files in the same frame format (kind byte 2).
pub(crate) struct FrameSink {
    tmp: PathBuf,
    committed: PathBuf,
    f: fs::File,
    err: Option<std::io::Error>,
    /// Running CRC32C state over the payload (pre-final-XOR).
    crc: u32,
    /// Payload bytes emitted so far.
    len: u64,
    small: Vec<u8>,
}

impl FrameSink {
    /// Creates the `.tmp` file and writes the header with zeroed
    /// length/CRC placeholders.
    fn create(dir: &Path, seq: u64, fingerprint: u64, kind: u8) -> Result<Self, CoreError> {
        let tmp = dir.join(format!("ckpt-{seq:06}.tmp"));
        let committed = dir.join(frame_name(seq));
        Self::create_at(tmp, committed, fingerprint, seq, kind)
    }

    /// [`FrameSink::create`] for arbitrary staging/committed paths — the
    /// spill tier's chunk files reuse the frame format under their own
    /// naming scheme.
    pub(crate) fn create_at(
        tmp: PathBuf,
        committed: PathBuf,
        fingerprint: u64,
        seq: u64,
        kind: u8,
    ) -> Result<Self, CoreError> {
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(MAGIC);
        header[4..12].copy_from_slice(&fingerprint.to_le_bytes());
        header[12..20].copy_from_slice(&seq.to_le_bytes());
        header[20] = kind;
        let f = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&header).map(|()| f))
            .map_err(|e| io_err(&committed, e))?;
        Ok(FrameSink {
            tmp,
            committed,
            f,
            err: None,
            crc: 0xFFFF_FFFF,
            len: 0,
            small: Vec::with_capacity(SMALL_FLUSH),
        })
    }

    fn flush_small(&mut self) {
        if self.small.is_empty() || self.err.is_some() {
            self.small.clear();
            return;
        }
        self.crc = crc_update(self.crc, &self.small);
        match self.f.write_all(&self.small) {
            Ok(()) => self.len += self.small.len() as u64,
            Err(e) => self.err = Some(e),
        }
        self.small.clear();
    }

    fn u8(&mut self, v: u8) {
        self.raw(&[v]);
    }

    fn u32(&mut self, v: u32) {
        self.raw(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.raw(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        if bytes.len() >= DIRECT_WRITE {
            self.flush_small();
            if self.err.is_some() {
                return;
            }
            for chunk in bytes.chunks(WRITE_CHUNK) {
                self.crc = crc_update(self.crc, chunk);
                if let Err(e) = self.f.write_all(chunk) {
                    self.err = Some(e);
                    return;
                }
                self.len += chunk.len() as u64;
            }
        } else {
            self.small.extend_from_slice(bytes);
            if self.small.len() >= SMALL_FLUSH {
                self.flush_small();
            }
        }
    }

    /// A bitmap of `len` bits, 8 per byte.
    fn bitmap(&mut self, len: usize, mut bit: impl FnMut(usize) -> bool) {
        let mut packed = vec![0u8; len.div_ceil(8)];
        for (i, byte) in packed.iter_mut().enumerate() {
            for k in 0..8 {
                let idx = i * 8 + k;
                if idx < len && bit(idx) {
                    *byte |= 1 << k;
                }
            }
        }
        self.raw(&packed);
    }

    /// Patches the header's payload-length and CRC32C fields, optionally
    /// fsyncs, and renames the frame into place. `durable` is reserved
    /// for the final frame — see the module docs for the fsync policy.
    ///
    /// A durable commit fsyncs the **containing directory** after the
    /// rename as well: renaming only updates the directory entry, and an
    /// un-synced directory can lose the entry across a crash — the frame
    /// file's own `sync_all` does not cover it.
    pub(crate) fn finish(mut self, durable: bool) -> Result<(), CoreError> {
        self.flush_small();
        let commit = |sink: &mut FrameSink| -> std::io::Result<()> {
            if let Some(e) = sink.err.take() {
                return Err(e);
            }
            let mut tail = [0u8; 12];
            tail[0..8].copy_from_slice(&sink.len.to_le_bytes());
            tail[8..12].copy_from_slice(&(sink.crc ^ 0xFFFF_FFFF).to_le_bytes());
            sink.f.seek(SeekFrom::Start(21))?;
            sink.f.write_all(&tail)?;
            if durable {
                sink.f.sync_all()?;
            }
            fs::rename(&sink.tmp, &sink.committed)?;
            if durable {
                if let Some(dir) = sink.committed.parent() {
                    fs::File::open(dir)?.sync_all()?;
                }
            }
            Ok(())
        };
        commit(&mut self).map_err(|e| io_err(&self.committed, e))
    }
}

/// Fallible little-endian reader over a frame payload. Every read is
/// bounds-checked — a malformed payload yields an error string (wrapped
/// into [`CoreError::CheckpointCorrupt`] by callers), never a panic.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "payload truncated at byte {} (wanted {n} more, have {})",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// An element count whose `count × elem_bytes` must fit in the
    /// remaining payload — rejects absurd lengths without allocating.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let n = self.u64()? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(format!(
                "element count {n} exceeds remaining payload {}",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn bitmap(&mut self, len: usize) -> Result<Vec<bool>, String> {
        let packed = self.take(len.div_ceil(8))?;
        Ok((0..len)
            .map(|i| packed[i / 8] >> (i % 8) & 1 == 1)
            .collect())
    }

    fn done(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing bytes after payload", self.remaining()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------------

fn io_err(path: &Path, e: std::io::Error) -> CoreError {
    CoreError::CheckpointIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Reads and validates one frame: magic, exact length, CRC. Errors are
/// strings — the chain loader treats any error as "chain ends here".
fn read_frame(path: &Path) -> Result<(u64, u64, u8, Vec<u8>), String> {
    let buf = fs::read(path).map_err(|e| format!("read failed: {e}"))?;
    if buf.len() < HEADER_LEN {
        return Err(format!(
            "file is {} bytes, shorter than the header",
            buf.len()
        ));
    }
    if &buf[0..4] != MAGIC {
        return Err("bad magic".into());
    }
    let fingerprint = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let seq = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let kind = buf[20];
    if kind > 1 {
        return Err(format!("unknown frame kind {kind}"));
    }
    let payload_len = u64::from_le_bytes(buf[21..29].try_into().unwrap());
    if buf.len() as u64 != HEADER_LEN as u64 + payload_len {
        return Err(format!(
            "file is {} bytes but header declares {} payload bytes",
            buf.len(),
            payload_len
        ));
    }
    let want = u32::from_le_bytes(buf[29..33].try_into().unwrap());
    let payload = buf[HEADER_LEN..].to_vec();
    if crc32c(&payload) != want {
        return Err("CRC32C mismatch".into());
    }
    Ok((fingerprint, seq, kind, payload))
}

// ---------------------------------------------------------------------------
// Snapshot source: a borrowed view of in-progress exploration state.
// ---------------------------------------------------------------------------

/// Label bits come from a [`BitSet`] in the sweep paths and a `Vec<bool>`
/// in the BFS path; `Empty` stands for "all clear" (BFS has no initial
/// bitmap — the seeds carry it).
pub(super) enum LabelBits<'a> {
    Bits(&'a BitSet),
    Flags(&'a [bool]),
    Empty,
}

impl LabelBits<'_> {
    fn get(&self, i: usize) -> bool {
        match self {
            LabelBits::Bits(b) => b.get(i),
            LabelBits::Flags(f) => f[i],
            LabelBits::Empty => false,
        }
    }
}

/// A borrowed view of everything a delta frame snapshots. The exploration
/// loops hand this to [`Checkpointer::tick`] at batch boundaries; the
/// checkpointer's internal watermarks slice out just the delta.
pub(super) struct SnapshotSource<'a> {
    pub(super) builder: &'a EdgeStorageBuilder,
    pub(super) enabled: &'a [u64],
    pub(super) legit: LabelBits<'a>,
    pub(super) initial: LabelBits<'a>,
    pub(super) deterministic: bool,
    pub(super) table: Option<&'a StateTable>,
    pub(super) seeds: &'a [u32],
}

/// The extra metadata a final frame records so `resume` can reconstruct
/// the full `TransitionSystem` identity.
pub(super) struct FinalMeta<'a> {
    /// `Some(total)` for dense (full-sweep, no quotient) state ids;
    /// `None` when the interned table in the delta stream is the state
    /// identity.
    pub(super) dense_total: Option<u64>,
    pub(super) canon: Option<&'a GroupCanonicalizer>,
    pub(super) quotient: Quotient,
    pub(super) traversal: TraversalMode,
}

// ---------------------------------------------------------------------------
// Checkpointer (write side).
// ---------------------------------------------------------------------------

/// Writes the delta-frame chain for one exploration. Opened with the
/// run's fingerprint, it adopts any valid same-fingerprint prefix already
/// on disk (exposing it via [`Checkpointer::take_replay`]) and prunes
/// frames that are stale, torn, or from a different run.
pub(super) struct Checkpointer {
    dir: PathBuf,
    every: u64,
    fingerprint: u64,
    tier: EdgeStoreKind,
    /// Next frame sequence number.
    seq: u64,
    /// Cursor (states explored) at the last frame boundary.
    mark: u64,
    /// Interned-table entries already persisted.
    wm_table: usize,
    /// Flat-tier edges already persisted.
    wm_edges: usize,
    kill_after: Option<u64>,
    replay: Option<Replay>,
}

impl Checkpointer {
    /// Opens `cfg.dir`, loads the longest valid frame prefix, and prunes
    /// everything after it (and everything from a different run or
    /// tier). The adopted prefix, if any, is available once via
    /// [`Checkpointer::take_replay`].
    pub(super) fn open(
        cfg: &CheckpointConfig,
        fingerprint: u64,
        tier: EdgeStoreKind,
        faults: &FaultPlan,
    ) -> Result<Self, CoreError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err(&cfg.dir, e))?;
        let mut ck = Checkpointer {
            dir: cfg.dir.clone(),
            every: cfg.every_n_states.max(1),
            fingerprint,
            tier,
            seq: 0,
            mark: 0,
            wm_table: 0,
            wm_edges: 0,
            kill_after: faults.kill_after_frames(),
            replay: None,
        };
        match load_chain(&cfg.dir) {
            Some((fp, replay)) if fp == fingerprint && replay.tier == tier && replay.frames > 0 => {
                ck.seq = replay.frames;
                ck.mark = replay.cursor;
                ck.wm_table = replay.table.len();
                ck.wm_edges = match &replay.builder {
                    ReplayBuilder::Flat { edges, .. } => edges.len(),
                    ReplayBuilder::Compressed { .. } => 0,
                };
                prune_from(&cfg.dir, ck.seq)?;
                ck.replay = Some(replay);
            }
            _ => prune_from(&cfg.dir, 0)?,
        }
        Ok(ck)
    }

    /// The state recovered from disk, if any — taken once by the
    /// exploration loop to fast-forward past already-explored states.
    pub(super) fn take_replay(&mut self) -> Option<Replay> {
        self.replay.take()
    }

    /// Writes a delta frame if at least `every_n_states` states were
    /// explored since the last frame.
    pub(super) fn tick(&mut self, cursor: u64, src: &SnapshotSource) -> Result<(), CoreError> {
        if cursor.saturating_sub(self.mark) >= self.every {
            self.write(cursor, src, None)
        } else {
            Ok(())
        }
    }

    /// Writes the final frame carrying the trailing delta plus the
    /// system-identity metadata.
    pub(super) fn finalize(
        &mut self,
        cursor: u64,
        src: &SnapshotSource,
        meta: FinalMeta,
    ) -> Result<(), CoreError> {
        self.write(cursor, src, Some(meta))
    }

    fn write(
        &mut self,
        cursor: u64,
        src: &SnapshotSource,
        meta: Option<FinalMeta>,
    ) -> Result<(), CoreError> {
        debug_assert!(cursor >= self.mark, "checkpoint cursor went backwards");
        let from = self.mark as usize;
        let to = cursor as usize;
        let rows = to - from;
        let kind = if meta.is_some() { 1u8 } else { 0u8 };
        let mut e = FrameSink::create(&self.dir, self.seq, self.fingerprint, kind)?;
        e.u64(self.mark);
        e.u64(cursor);
        e.u8(match self.tier {
            EdgeStoreKind::Flat => 0,
            EdgeStoreKind::Compressed => 1,
            EdgeStoreKind::Disk => 2,
        });
        e.u8(src.deterministic as u8); // lint: cast-ok(bool is 0 or 1)
                                       // Interned-table delta (the quotient sweep's first frame carries
                                       // the whole pass-1 table; later frames carry nothing; BFS frames
                                       // carry the rows interned since the last frame).
        match src.table {
            Some(t) => {
                let (full_of, orbit) = t.parts();
                e.u64((full_of.len() - self.wm_table) as u64);
                for i in self.wm_table..full_of.len() {
                    e.u64(full_of[i]);
                    e.u64(orbit[i]);
                }
                self.wm_table = full_of.len();
            }
            None => e.u64(0),
        }
        // Seeds, in full every frame (tiny; replay keeps the last copy).
        e.u64(src.seeds.len() as u64);
        for &s in src.seeds {
            e.u32(s);
        }
        // Enabled-mask delta (one u64 per row).
        e.u64(rows as u64);
        for &w in &src.enabled[from..to] {
            e.u64(w);
        }
        // Legitimacy and initial bitmaps for the new rows.
        e.bitmap(rows, |i| src.legit.get(from + i));
        e.bitmap(rows, |i| src.initial.get(from + i));
        // Edge-store delta.
        match src.builder {
            EdgeStorageBuilder::Flat { counts, edges } => {
                debug_assert_eq!(self.tier, EdgeStoreKind::Flat);
                e.u64(rows as u64);
                for &c in &counts[from..to] {
                    e.u32(c);
                }
                e.u64((edges.len() - self.wm_edges) as u64);
                for edge in &edges[self.wm_edges..] {
                    e.u32(edge.to);
                    e.u64(edge.movers);
                    e.f64(edge.prob);
                }
                self.wm_edges = edges.len();
            }
            EdgeStorageBuilder::Compressed(b) => {
                debug_assert_eq!(self.tier, EdgeStoreKind::Compressed);
                let (offsets, stream, probs, n_items) = b.writer().parts();
                e.u64(rows as u64);
                for &o in &offsets[from + 1..to + 1] {
                    e.u64(o);
                }
                let bytes = &stream[offsets[from] as usize..offsets[to] as usize];
                e.u64(bytes.len() as u64);
                e.raw(bytes);
                // The interned-probability table is tiny and append-only
                // in practice, but interning order is not a row-boundary
                // invariant — persist it whole and let replay overwrite.
                e.u64(probs.len() as u64);
                for &p in probs {
                    e.f64(p);
                }
                e.u64(n_items);
            }
            EdgeStorageBuilder::Disk(b) => {
                debug_assert_eq!(self.tier, EdgeStoreKind::Disk);
                // Same frame layout as the compressed tier — the
                // checkpoint chain, not the spill directory, is the
                // durability surface, so the delta's stream bytes are
                // read back from already-spilled chunks where needed.
                let (offsets, _, probs, n_items) = b.writer().parts();
                e.u64(rows as u64);
                for &o in &offsets[from + 1..to + 1] {
                    e.u64(o);
                }
                let bytes = b.byte_range(offsets[from], offsets[to]);
                e.u64(bytes.len() as u64);
                e.raw(&bytes);
                e.u64(probs.len() as u64);
                for &p in probs {
                    e.f64(p);
                }
                e.u64(n_items);
            }
        }
        if let Some(m) = meta {
            encode_final_meta(&mut e, &m);
        }
        e.finish(kind == 1)?;
        self.mark = cursor;
        self.seq += 1;
        if let Some(k) = self.kill_after {
            if self.seq >= k {
                return Err(CoreError::Interrupted {
                    after_frames: self.seq,
                });
            }
        }
        Ok(())
    }
}

fn encode_final_meta(e: &mut FrameSink, m: &FinalMeta) {
    match m.dense_total {
        Some(total) => {
            e.u8(0);
            e.u64(total);
        }
        None => e.u8(1),
    }
    match m.canon {
        None => e.u8(0),
        Some(c) => {
            e.u8(1);
            let (pos_weights, pos_radix, node_weights, node_radix, strategy, group_order, gens) =
                c.snapshot_parts();
            e.u64(group_order);
            for vec in [pos_weights, pos_radix, node_weights, node_radix] {
                e.u64(vec.len() as u64);
                for &v in vec {
                    e.u64(v);
                }
            }
            match strategy {
                Strategy::Cycle => e.u8(0),
                Strategy::Dihedral => e.u8(1),
                Strategy::LeafClasses(classes) => {
                    e.u8(2);
                    e.u64(classes.len() as u64);
                    for class in classes {
                        e.u64(class.len() as u64);
                        for &p in class {
                            e.u64(p as u64);
                        }
                    }
                }
                Strategy::Explicit(perms) => {
                    e.u8(3);
                    e.u64(perms.len() as u64);
                    for perm in perms {
                        e.u64(perm.len() as u64);
                        for &p in perm {
                            e.u32(p);
                        }
                    }
                }
            }
            e.u64(gens.len() as u64);
            for g in gens {
                e.u64(g.len() as u64);
                for &p in g {
                    e.u32(p);
                }
            }
        }
    }
    e.u8(match m.quotient {
        Quotient::None => 0,
        Quotient::RingRotation => 1,
        Quotient::RingDihedral => 2,
        Quotient::Automorphism => 3,
    });
    e.u8(match m.traversal {
        TraversalMode::Full => 0,
        TraversalMode::Reachable => 1,
    });
}

// ---------------------------------------------------------------------------
// Replay (read side).
// ---------------------------------------------------------------------------

/// One decoded delta frame.
struct DeltaFrame {
    cursor_before: u64,
    cursor_after: u64,
    tier: EdgeStoreKind,
    deterministic: bool,
    table: Vec<(u64, u64)>,
    seeds: Vec<u32>,
    enabled: Vec<u64>,
    legit: Vec<bool>,
    initial: Vec<bool>,
    builder: BuilderDelta,
    final_meta: Option<ReplayFinal>,
}

enum BuilderDelta {
    Flat {
        counts: Vec<u32>,
        edges: Vec<Edge>,
    },
    Compressed {
        offsets: Vec<u64>,
        stream: Vec<u8>,
        probs: Vec<f64>,
        n_items: u64,
    },
}

/// Accumulated edge-store state rebuilt from the frame chain.
pub(super) enum ReplayBuilder {
    Flat {
        counts: Vec<u32>,
        edges: Vec<Edge>,
    },
    Compressed {
        offsets: Vec<u64>,
        stream: Vec<u8>,
        probs: Vec<f64>,
        n_items: u64,
    },
}

impl ReplayBuilder {
    fn new(tier: EdgeStoreKind) -> Self {
        match tier {
            EdgeStoreKind::Flat => ReplayBuilder::Flat {
                counts: Vec::new(),
                edges: Vec::new(),
            },
            // The disk tier replays through the compressed accumulator —
            // the chain carries the stream bytes; they are re-spilled to
            // chunks as the resumed builder fills back up.
            EdgeStoreKind::Compressed | EdgeStoreKind::Disk => ReplayBuilder::Compressed {
                offsets: vec![0],
                stream: Vec::new(),
                probs: Vec::new(),
                n_items: 0,
            },
        }
    }

    /// Converts into the live builder the exploration loop appends to
    /// (`tier`/`spill` route the compressed accumulator back to a
    /// disk-spilling builder when the chain was a disk-tier run).
    pub(super) fn into_builder(
        self,
        tier: EdgeStoreKind,
        spill: &SpillConfig,
    ) -> EdgeStorageBuilder {
        match self {
            ReplayBuilder::Flat { counts, edges } => EdgeStorageBuilder::Flat { counts, edges },
            ReplayBuilder::Compressed {
                offsets,
                stream,
                probs,
                n_items,
            } => {
                let w = DeltaStreamWriter::from_parts(offsets, stream, probs, n_items);
                if tier == EdgeStoreKind::Disk {
                    EdgeStorageBuilder::Disk(DiskEdgesBuilder::from_writer(w, spill))
                } else {
                    EdgeStorageBuilder::Compressed(CompressedEdgesBuilder::from_writer(w))
                }
            }
        }
    }
}

/// Final-frame metadata, owned.
pub(super) struct ReplayFinal {
    pub(super) dense_total: Option<u64>,
    pub(super) canon: Option<GroupCanonicalizer>,
    pub(super) quotient: Quotient,
    pub(super) traversal: TraversalMode,
}

/// Exploration state recovered from a checkpoint directory's longest
/// valid frame prefix.
pub(super) struct Replay {
    /// States explored (== rows committed in the builder).
    pub(super) cursor: u64,
    pub(super) tier: EdgeStoreKind,
    pub(super) deterministic: bool,
    pub(super) table: Vec<(u64, u64)>,
    pub(super) seeds: Vec<u32>,
    pub(super) enabled: Vec<u64>,
    pub(super) legit: Vec<bool>,
    pub(super) initial: Vec<bool>,
    pub(super) builder: ReplayBuilder,
    /// Frames consumed.
    pub(super) frames: u64,
    /// Present when the chain ended with a final frame — the exploration
    /// completed and the system can be reconstructed outright.
    pub(super) complete: Option<ReplayFinal>,
}

impl Replay {
    fn new(tier: EdgeStoreKind) -> Self {
        Replay {
            cursor: 0,
            tier,
            deterministic: true,
            table: Vec::new(),
            seeds: Vec::new(),
            enabled: Vec::new(),
            legit: Vec::new(),
            initial: Vec::new(),
            builder: ReplayBuilder::new(tier),
            frames: 0,
            complete: None,
        }
    }

    /// Checks the delta chains onto the current state; on success the
    /// mutation is unconditional (all validation happens up front so a
    /// rejected frame leaves the replay untouched).
    fn apply(&mut self, d: DeltaFrame) -> Result<(), String> {
        if d.cursor_before != self.cursor {
            return Err(format!(
                "frame resumes at cursor {} but chain is at {}",
                d.cursor_before, self.cursor
            ));
        }
        if d.tier != self.tier {
            return Err("edge-store tier changed mid-chain".into());
        }
        if self.complete.is_some() {
            return Err("frame follows a final frame".into());
        }
        let rows = (d.cursor_after - d.cursor_before) as usize;
        match (&self.builder, &d.builder) {
            (ReplayBuilder::Flat { .. }, BuilderDelta::Flat { counts, edges }) => {
                let total: u64 = counts.iter().map(|&c| c as u64).sum();
                if total != edges.len() as u64 {
                    return Err(format!(
                        "flat delta declares {total} edges but carries {}",
                        edges.len()
                    ));
                }
            }
            (
                ReplayBuilder::Compressed {
                    offsets, stream, ..
                },
                BuilderDelta::Compressed {
                    offsets: new_offsets,
                    stream: new_stream,
                    ..
                },
            ) => {
                let mut prev = *offsets.last().expect("offsets start non-empty");
                for &o in new_offsets {
                    if o < prev {
                        return Err("stream offsets are not monotonic".into());
                    }
                    prev = o;
                }
                let end = stream.len() as u64 + new_stream.len() as u64;
                if new_offsets.last().copied().unwrap_or(prev) != end
                    && !(new_offsets.is_empty() && new_stream.is_empty())
                {
                    return Err("stream offsets disagree with stream length".into());
                }
            }
            _ => return Err("edge-store delta tier mismatch".into()),
        }
        // Validated — mutate.
        self.deterministic = d.deterministic;
        self.table.extend(d.table);
        self.seeds = d.seeds;
        self.enabled.extend(d.enabled);
        self.legit.extend(d.legit);
        self.initial.extend(d.initial);
        match (&mut self.builder, d.builder) {
            (
                ReplayBuilder::Flat { counts, edges },
                BuilderDelta::Flat {
                    counts: nc,
                    edges: ne,
                },
            ) => {
                counts.extend(nc);
                edges.extend(ne);
            }
            (
                ReplayBuilder::Compressed {
                    offsets,
                    stream,
                    probs,
                    n_items,
                },
                BuilderDelta::Compressed {
                    offsets: no,
                    stream: ns,
                    probs: np,
                    n_items: nn,
                },
            ) => {
                offsets.extend(no);
                stream.extend(ns);
                *probs = np;
                *n_items = nn;
            }
            _ => unreachable!("tier checked above"),
        }
        debug_assert_eq!(self.enabled.len(), d.cursor_after as usize);
        let _ = rows;
        self.cursor = d.cursor_after;
        self.frames += 1;
        self.complete = d.final_meta;
        Ok(())
    }

    /// Reconstructs the finished [`TransitionSystem`] from a complete
    /// chain. Errors with [`CoreError::CheckpointIncomplete`] when the
    /// chain has no final frame.
    pub(super) fn into_transition_system(self, dir: &Path) -> Result<TransitionSystem, CoreError> {
        let Some(fin) = self.complete else {
            return Err(CoreError::CheckpointIncomplete {
                dir: dir.display().to_string(),
            });
        };
        let n = self.cursor as usize;
        let spill = SpillConfig {
            dir: Some(dir.join("spill")),
            ..SpillConfig::default()
        };
        let forward = self.builder.into_builder(self.tier, &spill).finish();
        let mut legit = BitSet::new(n);
        for (i, &l) in self.legit.iter().enumerate() {
            if l {
                legit.insert(i);
            }
        }
        let mut initial = BitSet::new(n);
        match fin.traversal {
            TraversalMode::Reachable => {
                for &s in &self.seeds {
                    initial.insert(s as usize);
                }
            }
            TraversalMode::Full => {
                for (i, &b) in self.initial.iter().enumerate() {
                    if b {
                        initial.insert(i);
                    }
                }
            }
        }
        let states = match fin.dense_total {
            Some(total) => StateIds::Dense { total },
            None => {
                let (full_of, orbit) = self.table.into_iter().unzip();
                StateIds::Interned(StateTable::from_parts(full_of, orbit))
            }
        };
        Ok(TransitionSystem::assemble(
            forward,
            self.enabled,
            legit,
            initial,
            self.deterministic,
            states,
            fin.canon,
            fin.quotient,
            fin.traversal,
        ))
    }
}

fn decode_payload(payload: &[u8], kind: u8) -> Result<DeltaFrame, String> {
    let mut d = Dec::new(payload);
    let cursor_before = d.u64()?;
    let cursor_after = d.u64()?;
    if cursor_after < cursor_before {
        return Err("cursor went backwards".into());
    }
    let rows = (cursor_after - cursor_before) as usize;
    let tier = match d.u8()? {
        0 => EdgeStoreKind::Flat,
        1 => EdgeStoreKind::Compressed,
        2 => EdgeStoreKind::Disk,
        t => return Err(format!("unknown edge-store tier {t}")),
    };
    let deterministic = d.u8()? != 0;
    let n_table = d.count(16)?;
    let mut table = Vec::with_capacity(n_table);
    for _ in 0..n_table {
        table.push((d.u64()?, d.u64()?));
    }
    let n_seeds = d.count(4)?;
    let mut seeds = Vec::with_capacity(n_seeds);
    for _ in 0..n_seeds {
        seeds.push(d.u32()?);
    }
    let n_enabled = d.count(8)?;
    if n_enabled != rows {
        return Err(format!(
            "enabled delta has {n_enabled} rows, cursor moved {rows}"
        ));
    }
    let mut enabled = Vec::with_capacity(rows);
    for _ in 0..rows {
        enabled.push(d.u64()?);
    }
    let legit = d.bitmap(rows)?;
    let initial = d.bitmap(rows)?;
    let builder = match tier {
        EdgeStoreKind::Flat => {
            let n_counts = d.count(4)?;
            if n_counts != rows {
                return Err(format!(
                    "flat delta has {n_counts} rows, cursor moved {rows}"
                ));
            }
            let mut counts = Vec::with_capacity(rows);
            for _ in 0..rows {
                counts.push(d.u32()?);
            }
            let n_edges = d.count(20)?;
            let mut edges = Vec::with_capacity(n_edges);
            for _ in 0..n_edges {
                edges.push(Edge {
                    to: d.u32()?,
                    movers: d.u64()?,
                    prob: d.f64()?,
                });
            }
            BuilderDelta::Flat { counts, edges }
        }
        // The disk tier shares the compressed tier's frame layout: the
        // checkpoint chain carries the stream bytes themselves, so a
        // resume never depends on (and re-creates) the spill directory.
        EdgeStoreKind::Compressed | EdgeStoreKind::Disk => {
            let n_offsets = d.count(8)?;
            if n_offsets != rows {
                return Err(format!(
                    "compressed delta has {n_offsets} rows, cursor moved {rows}"
                ));
            }
            let mut offsets = Vec::with_capacity(rows);
            for _ in 0..rows {
                offsets.push(d.u64()?);
            }
            let n_bytes = d.count(1)?;
            let stream = d.take(n_bytes)?.to_vec();
            let n_probs = d.count(8)?;
            let mut probs = Vec::with_capacity(n_probs);
            for _ in 0..n_probs {
                probs.push(d.f64()?);
            }
            let n_items = d.u64()?;
            BuilderDelta::Compressed {
                offsets,
                stream,
                probs,
                n_items,
            }
        }
    };
    let final_meta = if kind == 1 {
        Some(decode_final_meta(&mut d)?)
    } else {
        None
    };
    d.done()?;
    Ok(DeltaFrame {
        cursor_before,
        cursor_after,
        tier,
        deterministic,
        table,
        seeds,
        enabled,
        legit,
        initial,
        builder,
        final_meta,
    })
}

fn decode_final_meta(d: &mut Dec) -> Result<ReplayFinal, String> {
    let dense_total = match d.u8()? {
        0 => Some(d.u64()?),
        1 => None,
        t => return Err(format!("unknown states kind {t}")),
    };
    let canon = match d.u8()? {
        0 => None,
        1 => {
            let group_order = d.u64()?;
            let mut vecs: [Vec<u64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
            for vec in &mut vecs {
                let n = d.count(8)?;
                vec.reserve(n);
                for _ in 0..n {
                    vec.push(d.u64()?);
                }
            }
            let strategy = match d.u8()? {
                0 => Strategy::Cycle,
                1 => Strategy::Dihedral,
                2 => {
                    let n_classes = d.count(8)?;
                    let mut classes = Vec::with_capacity(n_classes);
                    for _ in 0..n_classes {
                        let n = d.count(8)?;
                        let mut class = Vec::with_capacity(n);
                        for _ in 0..n {
                            class.push(d.u64()? as usize);
                        }
                        classes.push(class);
                    }
                    Strategy::LeafClasses(classes)
                }
                3 => {
                    let n_perms = d.count(8)?;
                    let mut perms = Vec::with_capacity(n_perms);
                    for _ in 0..n_perms {
                        let n = d.count(4)?;
                        let mut perm = Vec::with_capacity(n);
                        for _ in 0..n {
                            perm.push(d.u32()?);
                        }
                        perms.push(perm);
                    }
                    Strategy::Explicit(perms)
                }
                t => return Err(format!("unknown strategy tag {t}")),
            };
            let n_gens = d.count(8)?;
            let mut gens = Vec::with_capacity(n_gens);
            for _ in 0..n_gens {
                let n = d.count(4)?;
                let mut g = Vec::with_capacity(n);
                for _ in 0..n {
                    g.push(d.u32()?);
                }
                gens.push(g);
            }
            let [pos_weights, pos_radix, node_weights, node_radix] = vecs;
            Some(GroupCanonicalizer::from_snapshot_parts(
                pos_weights,
                pos_radix,
                node_weights,
                node_radix,
                strategy,
                group_order,
                gens,
            ))
        }
        t => return Err(format!("unknown canonicalizer tag {t}")),
    };
    let quotient = match d.u8()? {
        0 => Quotient::None,
        1 => Quotient::RingRotation,
        2 => Quotient::RingDihedral,
        3 => Quotient::Automorphism,
        t => return Err(format!("unknown quotient tag {t}")),
    };
    let traversal = match d.u8()? {
        0 => TraversalMode::Full,
        1 => TraversalMode::Reachable,
        t => return Err(format!("unknown traversal tag {t}")),
    };
    Ok(ReplayFinal {
        dense_total,
        canon,
        quotient,
        traversal,
    })
}

/// Loads the longest valid frame prefix under `dir`: contiguous sequence
/// numbers from 0, one shared fingerprint, every frame passing CRC and
/// structural validation, every delta chaining onto the previous cursor.
/// Any failure ends the chain at the previous frame — a corrupted frame
/// yields the last good snapshot, never a wrong state. Returns the chain
/// fingerprint and the accumulated replay (`None` if no valid frame 0).
pub(super) fn load_chain(dir: &Path) -> Option<(u64, Replay)> {
    let mut chain_fp: Option<u64> = None;
    let mut replay: Option<Replay> = None;
    for seq in 0u64.. {
        let path = dir.join(frame_name(seq));
        if !path.exists() {
            break;
        }
        let frame = read_frame(&path).and_then(|(fp, fseq, kind, payload)| {
            if fseq != seq {
                return Err("header sequence number disagrees with file name".into());
            }
            if let Some(first) = chain_fp {
                if fp != first {
                    return Err("fingerprint changed mid-chain".into());
                }
            }
            Ok((fp, decode_payload(&payload, kind)?))
        });
        let Ok((fp, delta)) = frame else { break };
        let r = replay.get_or_insert_with(|| Replay::new(delta.tier));
        if r.apply(delta).is_err() {
            break;
        }
        chain_fp = Some(fp);
    }
    let replay = replay?;
    if replay.frames == 0 {
        return None;
    }
    Some((chain_fp?, replay))
}

/// Deletes committed frames with sequence ≥ `from_seq` and every
/// leftover temp file — stale state a shorter resumed run must not see.
fn prune_from(dir: &Path, from_seq: u64) -> Result<(), CoreError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".tmp"));
        let stale = parse_frame_seq(&path).is_some_and(|seq| seq >= from_seq);
        if is_tmp || stale {
            fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
    }
    Ok(())
}

/// Reconstructs a completed exploration from its checkpoint directory
/// (backs `TransitionSystem::resume`).
pub(super) fn resume_from_dir(dir: &Path) -> Result<TransitionSystem, CoreError> {
    match load_chain(dir) {
        Some((_fp, replay)) => replay.into_transition_system(dir),
        None => Err(CoreError::CheckpointIncomplete {
            dir: dir.display().to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "stab-resilience-{}-{}-{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32c_matches_reference_vector() {
        // The canonical CRC32C (Castagnoli) check value, e.g. RFC 3720
        // §B.4 — and the software table walk must agree with the
        // hardware path bit for bit.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // Sizes around the 3-lane threshold (3 × CRC_LANE) and with
        // ragged tails, so the interleaved hardware path, its
        // single-chain remainder, and the table walk must all agree.
        for n in [4099usize, 3 * CRC_LANE - 1, 3 * CRC_LANE, 100_003] {
            // lint: cast-ok(test sizes stay far below both id widths)
            let data: Vec<u8> = (0..n as u32).map(|i| (i * 31 % 251) as u8).collect();
            assert_eq!(
                crc_update_sw(0xFFFF_FFFF, &data) ^ 0xFFFF_FFFF,
                crc32c(&data)
            );
        }
    }

    #[test]
    fn budget_unlimited_always_passes() {
        let b = Budget::unlimited();
        for _ in 0..100 {
            b.probe("explore", u64::MAX, u64::MAX).unwrap();
        }
        assert_eq!(b.probes_seen(), 100);
    }

    #[test]
    fn budget_limits_trip_with_typed_error() {
        let b = Budget::unlimited().with_max_bytes(1000);
        b.probe("explore", 1000, 0).unwrap();
        let err = b.probe("explore", 1001, 0).unwrap_err();
        assert_eq!(
            err,
            CoreError::BudgetExhausted {
                stage: "explore",
                resource: "bytes",
                limit: 1000,
                used: 1001,
            }
        );
        let b = Budget::unlimited().with_max_states(5);
        assert!(b.probe("verdicts", 0, 6).is_err());
        let b = Budget::unlimited().with_wall_time(Duration::from_millis(0));
        assert!(matches!(
            b.probe("solver", 0, 0),
            Err(CoreError::BudgetExhausted {
                resource: "wall-time-ms",
                ..
            })
        ));
    }

    #[test]
    fn fault_plan_probe_trip_fires_on_kth_probe() {
        let guard = RunGuard::new(
            Budget::unlimited(),
            FaultPlan::none().with_budget_trip_at_probe(3),
        );
        assert!(guard.is_active());
        guard.probe("explore", 0, 0).unwrap();
        guard.probe("explore", 0, 0).unwrap();
        let err = guard.probe("explore", 0, 0).unwrap_err();
        assert!(matches!(
            err,
            CoreError::BudgetExhausted {
                resource: "fault-injected",
                ..
            }
        ));
    }

    #[test]
    fn seeded_fault_plans_are_deterministic_and_in_range() {
        for seed in 0..50 {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            assert_eq!(a, b);
            let k = a.kill_after_frames().unwrap();
            assert!((1..=8).contains(&k), "kill point {k} out of range");
        }
    }

    /// Drives a tiny synthetic flat-tier "exploration" through the
    /// checkpointer: 6 rows, one frame every 2 rows, then a final frame.
    fn write_synthetic_chain(dir: &Path, faults: &FaultPlan) -> Result<(), CoreError> {
        let cfg = CheckpointConfig::new(dir, 2);
        let mut ck = Checkpointer::open(&cfg, 0xFEED, EdgeStoreKind::Flat, faults)?;
        assert!(ck.take_replay().is_none());
        let mut counts = Vec::new();
        let mut edges = Vec::new();
        let mut enabled = Vec::new();
        let mut legit = Vec::new();
        for row in 0u32..6 {
            counts.push(1);
            edges.push(Edge {
                to: (row + 1) % 6,
                movers: 1 << row,
                prob: 1.0,
            });
            enabled.push(u64::from(row) + 10);
            legit.push(row % 2 == 0);
            let builder = EdgeStorageBuilder::Flat {
                counts: counts.clone(),
                edges: edges.clone(),
            };
            let src = SnapshotSource {
                builder: &builder,
                enabled: &enabled,
                legit: LabelBits::Flags(&legit),
                initial: LabelBits::Empty,
                deterministic: true,
                table: None,
                seeds: &[],
            };
            let cursor = u64::from(row) + 1;
            if cursor < 6 {
                ck.tick(cursor, &src)?;
            } else {
                ck.finalize(
                    cursor,
                    &src,
                    FinalMeta {
                        dense_total: Some(6),
                        canon: None,
                        quotient: Quotient::None,
                        traversal: TraversalMode::Full,
                    },
                )?;
            }
        }
        Ok(())
    }

    #[test]
    fn frame_chain_roundtrips() {
        let dir = tmp_dir("roundtrip");
        write_synthetic_chain(&dir, &FaultPlan::none()).unwrap();
        // Frames at cursors 2, 4 and the final at 6.
        assert_eq!(list_frames(&dir).len(), 3);
        let (fp, replay) = load_chain(&dir).unwrap();
        assert_eq!(fp, 0xFEED);
        assert_eq!(replay.cursor, 6);
        assert_eq!(replay.frames, 3);
        assert!(replay.complete.is_some());
        assert_eq!(replay.enabled, vec![10, 11, 12, 13, 14, 15]);
        assert_eq!(replay.legit, vec![true, false, true, false, true, false]);
        match &replay.builder {
            ReplayBuilder::Flat { counts, edges } => {
                assert_eq!(counts.len(), 6);
                assert_eq!(edges.len(), 6);
                assert_eq!(edges[5].movers, 1 << 5);
            }
            _ => panic!("expected flat builder"),
        }
        let ts = replay.into_transition_system(&dir).unwrap();
        assert_eq!(ts.n_configs(), 6);
        assert_eq!(ts.n_edges(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_falls_back_to_previous_snapshot() {
        for bit in [0u64, 40, 170, 260, 400] {
            let dir = tmp_dir("corrupt");
            write_synthetic_chain(&dir, &FaultPlan::none()).unwrap();
            let frames = list_frames(&dir);
            FaultPlan::flip_bit(&frames[2], bit).unwrap();
            // The last frame is now invalid; the chain ends at frame 2.
            let (_, replay) = load_chain(&dir).unwrap();
            assert_eq!(replay.frames, 2);
            assert_eq!(replay.cursor, 4);
            assert!(replay.complete.is_none());
            assert!(matches!(
                resume_from_dir(&dir),
                Err(CoreError::CheckpointIncomplete { .. })
            ));
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn truncated_frame_falls_back_to_previous_snapshot() {
        for keep in [0u64, 10, 33, 60] {
            let dir = tmp_dir("truncate");
            write_synthetic_chain(&dir, &FaultPlan::none()).unwrap();
            let frames = list_frames(&dir);
            FaultPlan::truncate_file(&frames[1], keep).unwrap();
            // Frame 1 torn: only frame 0 survives; frame 2 is pruned on
            // the next open, and load_chain alone stops at the break.
            let (_, replay) = load_chain(&dir).unwrap();
            assert_eq!(replay.frames, 1);
            assert_eq!(replay.cursor, 2);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn kill_point_interrupts_after_durable_frame_and_reopen_adopts_prefix() {
        let dir = tmp_dir("kill");
        let err =
            write_synthetic_chain(&dir, &FaultPlan::none().with_kill_after_frames(2)).unwrap_err();
        assert_eq!(err, CoreError::Interrupted { after_frames: 2 });
        // Both frames written before the injected death are durable.
        assert_eq!(list_frames(&dir).len(), 2);
        let cfg = CheckpointConfig::new(&dir, 2);
        let mut ck =
            Checkpointer::open(&cfg, 0xFEED, EdgeStoreKind::Flat, &FaultPlan::none()).unwrap();
        let replay = ck.take_replay().unwrap();
        assert_eq!(replay.cursor, 4);
        assert!(replay.complete.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Kill-point battery over *every* frame of the synthetic chain,
    /// including the durable final commit (frame 3): the kill fires
    /// after `FrameSink::finish` returns, i.e. after the fsync → rename
    /// → **directory fsync** sequence, so surviving this battery means
    /// every frame the writer reported durable really is reloadable.
    /// The last arm simulates the pre-fix failure mode — a final-frame
    /// rename lost because the directory entry was never synced — and
    /// asserts the loader degrades to the previous snapshot instead of
    /// resuming a wrong state.
    #[test]
    fn kill_point_battery_covers_durable_rename_and_dir_fsync() {
        for k in 1u64..=3 {
            let dir = tmp_dir("battery");
            let res = write_synthetic_chain(&dir, &FaultPlan::none().with_kill_after_frames(k));
            assert_eq!(res.unwrap_err(), CoreError::Interrupted { after_frames: k });
            assert_eq!(list_frames(&dir).len(), k as usize, "kill at {k}");
            let (fp, replay) = load_chain(&dir).unwrap();
            assert_eq!(fp, 0xFEED);
            assert_eq!(replay.frames, k);
            assert_eq!(replay.cursor, 2 * k);
            if k == 3 {
                // The kill landed *after* the durable final frame: the
                // chain is complete and the run resumes to the full
                // system — the death cost nothing.
                assert!(replay.complete.is_some());
                let ts = replay.into_transition_system(&dir).unwrap();
                assert_eq!(ts.n_configs(), 6);
            } else {
                assert!(replay.complete.is_none());
                assert!(matches!(
                    resume_from_dir(&dir),
                    Err(CoreError::CheckpointIncomplete { .. })
                ));
            }
            fs::remove_dir_all(&dir).unwrap();
        }
        // Lost-rename simulation: without the directory fsync a crash
        // can forget the final frame's directory entry even though the
        // writer reported success. The loader must fall back to the
        // frame-2 prefix, never fabricate a complete chain.
        let dir = tmp_dir("battery-lost");
        write_synthetic_chain(&dir, &FaultPlan::none()).unwrap();
        let frames = list_frames(&dir);
        fs::remove_file(&frames[2]).unwrap();
        let (_, replay) = load_chain(&dir).unwrap();
        assert_eq!(replay.frames, 2);
        assert_eq!(replay.cursor, 4);
        assert!(replay.complete.is_none());
        assert!(matches!(
            resume_from_dir(&dir),
            Err(CoreError::CheckpointIncomplete { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_discards_foreign_chain() {
        let dir = tmp_dir("foreign");
        write_synthetic_chain(&dir, &FaultPlan::none()).unwrap();
        let cfg = CheckpointConfig::new(&dir, 2);
        let mut ck =
            Checkpointer::open(&cfg, 0xBEEF, EdgeStoreKind::Flat, &FaultPlan::none()).unwrap();
        assert!(ck.take_replay().is_none());
        assert!(list_frames(&dir).is_empty(), "foreign frames pruned");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_from_dir_requires_a_final_frame() {
        let dir = tmp_dir("incomplete");
        assert!(matches!(
            resume_from_dir(&dir),
            Err(CoreError::CheckpointIncomplete { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
