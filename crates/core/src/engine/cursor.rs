//! In-place mixed-radix enumeration of configuration spaces.
//!
//! The seed exploration called [`SpaceIndexer::decode`] once per
//! configuration — an `O(n)` loop *and* a fresh `Vec` allocation each time.
//! [`ConfigCursor`] walks the space in index order keeping one mutable
//! [`Configuration`] and its digit vector, updating only the digits that
//! actually change on each increment (amortised `O(1)` per step).

use crate::config::Configuration;
use crate::space::SpaceIndexer;
use crate::LocalState;
use stab_graph::NodeId;

/// A cursor over `start..total` of a [`SpaceIndexer`]'s configuration
/// space, maintaining the current configuration in place.
#[derive(Debug)]
pub struct ConfigCursor<'a, S> {
    ix: &'a SpaceIndexer<S>,
    id: u64,
    digits: Vec<u32>,
    cfg: Configuration<S>,
}

impl<'a, S: LocalState> ConfigCursor<'a, S> {
    /// Positions a cursor at configuration id `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= ix.total()`.
    pub fn new(ix: &'a SpaceIndexer<S>, start: u64) -> Self {
        let mut digits = Vec::new();
        ix.write_digits(start, &mut digits);
        let cfg = Configuration::from_vec(
            digits
                .iter()
                .enumerate()
                .map(|(v, &d)| ix.state_at(NodeId::new(v), d as usize).clone())
                .collect(),
        );
        ConfigCursor {
            ix,
            id: start,
            digits,
            cfg,
        }
    }

    /// The current configuration id.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The current configuration.
    #[inline]
    pub fn config(&self) -> &Configuration<S> {
        &self.cfg
    }

    /// The current mixed-radix digits (digit `v` = rank of node `v`'s
    /// state in its alphabet).
    #[inline]
    pub fn digits(&self) -> &[u32] {
        &self.digits
    }

    /// The digit of node `v`.
    #[inline]
    pub fn digit(&self, v: NodeId) -> u32 {
        self.digits[v.index()]
    }

    /// Steps to the next configuration in index order, updating only the
    /// digits that roll. Returns `false` (leaving the cursor past the end)
    /// once the space is exhausted.
    pub fn advance(&mut self) -> bool {
        self.id += 1;
        if self.id >= self.ix.total() {
            return false;
        }
        for v in 0..self.digits.len() {
            let node = NodeId::new(v);
            let next = self.digits[v] + 1;
            if (next as usize) < self.ix.radix(node) {
                self.digits[v] = next;
                self.cfg
                    .set(node, self.ix.state_at(node, next as usize).clone());
                return true;
            }
            self.digits[v] = 0;
            self.cfg.set(node, self.ix.state_at(node, 0).clone());
        }
        unreachable!("id < total implies some digit can advance");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionMask};
    use crate::algorithm::Algorithm;
    use crate::outcome::Outcomes;
    use crate::view::View;
    use stab_graph::{builders, Graph};

    struct Mixed {
        g: Graph,
    }

    impl Algorithm for Mixed {
        type State = u8;

        fn graph(&self) -> &Graph {
            &self.g
        }

        fn name(&self) -> String {
            "mixed".into()
        }

        fn state_space(&self, node: NodeId) -> Vec<u8> {
            if node.index() == 1 {
                vec![0, 1, 2]
            } else {
                vec![0, 1]
            }
        }

        fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
            ActionMask::empty()
        }

        fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
            unreachable!("never enabled")
        }
    }

    #[test]
    fn cursor_matches_decode_everywhere() {
        let ix = SpaceIndexer::new(
            &Mixed {
                g: builders::path(3),
            },
            1 << 20,
        )
        .unwrap();
        let mut cursor = ConfigCursor::new(&ix, 0);
        for id in 0..ix.total() {
            assert_eq!(cursor.id(), id);
            assert_eq!(cursor.config(), &ix.decode(id), "id {id}");
            assert_eq!(ix.encode(cursor.config()), id);
            let advanced = cursor.advance();
            assert_eq!(advanced, id + 1 < ix.total());
        }
    }

    #[test]
    fn cursor_can_start_mid_space() {
        let ix = SpaceIndexer::new(
            &Mixed {
                g: builders::path(3),
            },
            1 << 20,
        )
        .unwrap();
        let mut cursor = ConfigCursor::new(&ix, 7);
        assert_eq!(cursor.config(), &ix.decode(7));
        cursor.advance();
        assert_eq!(cursor.config(), &ix.decode(8));
    }
}
