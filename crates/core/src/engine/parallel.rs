//! Deterministic fork-join over configuration id ranges.
//!
//! The id space `0..total` is split into contiguous chunks, each processed
//! by a scoped OS thread (`std::thread::scope` — the build environment has
//! no network access, so `rayon` is replaced by this ~60-line equivalent).
//! Results are merged **in chunk order**, so the assembled transition
//! system is bit-for-bit identical regardless of thread count or
//! interleaving.

use std::ops::Range;

/// Minimum ids per chunk: below this, threading overhead dominates and the
/// whole range runs on the calling thread.
const MIN_CHUNK: u64 = 4096;

/// Splits `0..total` into at most `parts` contiguous near-equal ranges.
pub fn partition(total: u64, parts: usize) -> Vec<Range<u64>> {
    let parts = (parts as u64).clamp(1, total.max(1));
    (0..parts)
        .map(|i| (total * i / parts)..(total * (i + 1) / parts))
        .filter(|r| !r.is_empty())
        .collect()
}

/// The number of worker threads to use for `total` ids.
pub fn thread_count(total: u64) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    ((total / MIN_CHUNK).min(hw as u64).max(1)) as usize
}

/// Maps `f` over the chunks of `0..total` in parallel and returns the
/// chunk results **in chunk order**, failing fast on the first error (in
/// chunk order, for determinism).
pub fn map_chunks<T, E, F>(total: u64, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<u64>) -> Result<T, E> + Sync,
{
    let chunks = partition(total, thread_count(total));
    if chunks.len() <= 1 {
        return chunks.into_iter().map(&f).collect();
    }
    let results: Vec<Result<T, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|range| scope.spawn(|| f(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exploration worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_range_without_overlap() {
        for total in [0u64, 1, 7, 100, 4097] {
            for parts in [1usize, 2, 3, 8] {
                let chunks = partition(total, parts);
                let mut expect = 0;
                for c in &chunks {
                    assert_eq!(c.start, expect);
                    expect = c.end;
                }
                assert_eq!(expect, total);
            }
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        let out = map_chunks::<_, (), _>(100_000, |r| Ok(r.start)).unwrap();
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn map_chunks_propagates_errors() {
        let err = map_chunks(100_000, |r| {
            if r.end == 100_000 {
                Err("boom")
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom");
    }
}
