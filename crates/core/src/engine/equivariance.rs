//! Per-run behavioural soundness gate for symmetry quotients: decides
//! `QuotientUnsupported` **per algorithm**, not per topology.
//!
//! A group quotient is sound when the algorithm respects the group and the
//! specification is invariant under it. Structural validation (ring shape,
//! equal alphabets) lives in [`super::quotient`]; this module samples the
//! *behaviour*:
//!
//! 1. **Spec invariance** — `spec(γ) = spec(π·γ)` for every generator `π`
//!    on a deterministic stride sample (exhaustive on small spaces).
//!    Catches Dijkstra's rooted ring (privileges count differently after
//!    rotating away from the root) and the `m ≥ 3` oriented token ring
//!    under reflection (token count is direction-sensitive).
//! 2. **Strict equivariance** — the successor row of `π·γ` equals the
//!    `π`-image of the row of `γ` edge for edge (targets, mover masks,
//!    probabilities). Sufficient for every analysis; holds for
//!    undirected/anonymous protocols (coloring, leaf programs) and for
//!    oriented rings under rotations.
//! 3. **Lumped fallback** — generators that fail strict equivariance (an
//!    oriented ring under reflection maps the protocol to its
//!    mirror-image) are still sound when the *absorption dynamics* are
//!    direction-blind: the gate compares the step-`k` absorbed-mass series
//!    of `γ` and `π·γ` under the Definition 6 kernel, budget-bounded.
//!    Herman's ring passes — its hitting-time law is invariant under
//!    reversal even though single steps are not — while asymmetric
//!    protocols diverge within a step or two.
//!
//! The gate is a sampled filter, not a proof. In particular the lumped
//! fallback certifies the *absorption law* (hitting times, absorption
//! probabilities, CDFs); for possibilistic analyses over a
//! lumped-admitted quotient (Herman's reachability sets fold exactly,
//! one-step supports do not) agreement is pinned empirically by the
//! quotient differential suites (`quotient_differential.rs`,
//! `quotient_chain.rs`, `group_canonicalizer_props.rs`) across the zoo
//! under all four daemons rather than guaranteed a priori — strictly
//! equivariant algorithms need no such caveat.

use std::collections::HashMap;

use crate::algorithm::Algorithm;
use crate::scheduler::DaemonSpec;
use crate::space::SpaceIndexer;
use crate::spec::Legitimacy;
use crate::CoreError;

use super::explore::conflict_masks;
use super::quotient::GroupCanonicalizer;
use super::rowgen::RowGen;

/// A cached kernel row: legitimacy, enabled mask, and the successor
/// distribution aggregated by target.
type KernelRow = (bool, u64, Vec<(u64, f64)>);

/// Stride-sample size for the (cheap) spec-invariance pass.
const SPEC_SAMPLES: u64 = 2048;
/// Stride-sample size for the strict row-equivariance pass.
const STRICT_SAMPLES: u64 = 96;
/// Stride-sample size for the lumped absorption-dynamics fallback.
const LUMPED_SAMPLES: u64 = 16;
/// Longest absorbed-mass series compared by the lumped fallback.
const LUMPED_MAX_STEPS: usize = 12;
/// Distribution-support cap per evolution step (the series is truncated,
/// never approximated, when branching exceeds it).
const LUMPED_SUPPORT_CAP: usize = 512;
/// Successor-row generations each absorbed-series evolution may spend
/// (per sample, so later samples are never starved into a vacuous
/// comparison; divergence between an algorithm and its mirror image
/// shows within a step or two, and the cap keeps the gate a vanishing
/// fraction of the explore it guards).
const LUMPED_WORK_BUDGET: usize = 400;
/// Probability comparison tolerance.
const PROB_TOL: f64 = 1e-9;

/// A deterministic stride sample of `0..total` with at most `count`
/// entries (exhaustive when `total <= count`).
fn samples(total: u64, count: u64) -> impl Iterator<Item = u64> {
    let count = count.min(total);
    let stride = (total / count).max(1);
    (0..count).map(move |i| i * stride)
}

/// Applies a node permutation to an enabled/mover bitmask.
fn permute_mask(mask: u64, perm: &[u32]) -> u64 {
    let mut out = 0u64;
    let mut rest = mask;
    while rest != 0 {
        let v = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        out |= 1u64 << perm[v];
    }
    out
}

/// Checks that quotienting `alg` under `daemon` and `spec` by `canon`'s
/// group is behaviourally sound, per the module docs.
///
/// # Errors
///
/// [`CoreError::QuotientUnsupported`] naming the first witness of a
/// violated condition; [`CoreError::TooManyEnabled`] propagated from row
/// generation.
pub(super) fn check_quotient_sound<A, L>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    spec: &L,
    canon: &GroupCanonicalizer,
) -> Result<(), CoreError>
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    let total = ix.total();

    // Pass 1: spec invariance under every generator.
    for perm in canon.generators() {
        for full in samples(total, SPEC_SAMPLES) {
            let image = canon.apply_perm(full, perm);
            if spec.is_legitimate(&ix.decode(full)) != spec.is_legitimate(&ix.decode(image)) {
                return Err(CoreError::QuotientUnsupported {
                    reason: format!(
                        "specification '{}' is not invariant under the quotient group: \
                         {:?} and its symmetric image {:?} disagree",
                        spec.name(),
                        ix.decode(full),
                        ix.decode(image),
                    ),
                });
            }
        }
    }

    // Pass 2 (+3): row equivariance per generator, with the lumped
    // absorption-dynamics fallback for generators that conjugate the
    // algorithm into its mirror image.
    let conflicts = conflict_masks(alg, daemon);
    let mut kernel = Kernel {
        alg,
        ix,
        daemon,
        spec,
        conflicts,
        gen: RowGen::new(),
        rows: HashMap::new(),
        legit: HashMap::new(),
        work: 0,
    };
    for perm in canon.generators() {
        if strict_generator_equivariance(&mut kernel, canon, perm)? {
            continue;
        }
        lumped_generator_soundness(&mut kernel, canon, perm)?;
    }
    Ok(())
}

/// Whether the sampled rows of `π·γ` equal the `π`-images of the rows of
/// `γ` exactly (targets, movers, probabilities, enabled masks).
fn strict_generator_equivariance<A, L>(
    kernel: &mut Kernel<'_, A, L>,
    canon: &GroupCanonicalizer,
    perm: &[u32],
) -> Result<bool, CoreError>
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    let total = kernel.ix.total();
    let mut mapped: Vec<(u64, u64, f64)> = Vec::new();
    for full in samples(total, STRICT_SAMPLES) {
        let image = canon.apply_perm(full, perm);
        let (mask_x, row_x) = kernel.raw_row(full)?;
        mapped.clear();
        mapped.extend(row_x.iter().map(|&(to, movers, prob)| {
            (canon.apply_perm(to, perm), permute_mask(movers, perm), prob)
        }));
        mapped.sort_unstable_by_key(|&(to, movers, _)| (to, movers));
        let mapped_mask = permute_mask(mask_x, perm);
        let (mask_img, row_img) = kernel.raw_row(image)?;
        let equal = mask_img == mapped_mask
            && row_img.len() == mapped.len()
            && row_img
                .iter()
                .zip(&mapped)
                .all(|(&(to, movers, p), &(mto, mmovers, mp))| {
                    to == mto && movers == mmovers && (p - mp).abs() <= PROB_TOL
                });
        if !equal {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Fallback acceptance for a strictly non-equivariant generator: the
/// absorbed-mass series (`P(T_L <= k)` for `k = 0, 1, …`) of sampled
/// configurations and their images must coincide, and so must their
/// enabled-process counts (terminality in particular).
fn lumped_generator_soundness<A, L>(
    kernel: &mut Kernel<'_, A, L>,
    canon: &GroupCanonicalizer,
    perm: &[u32],
) -> Result<(), CoreError>
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    let total = kernel.ix.total();
    for full in samples(total, LUMPED_SAMPLES) {
        let image = canon.apply_perm(full, perm);
        let mask_x = kernel.row(full)?.1;
        let mask_img = kernel.row(image)?.1;
        if mask_x.count_ones() != mask_img.count_ones() {
            return Err(CoreError::QuotientUnsupported {
                reason: format!(
                    "algorithm does not respect the quotient group: {:?} has {} enabled \
                     processes but its symmetric image {:?} has {}",
                    kernel.ix.decode(full),
                    mask_x.count_ones(),
                    kernel.ix.decode(image),
                    mask_img.count_ones(),
                ),
            });
        }
        let series_x = kernel.absorbed_series(full)?;
        let series_img = kernel.absorbed_series(image)?;
        let horizon = series_x.len().min(series_img.len());
        for k in 0..horizon {
            if (series_x[k] - series_img[k]).abs() > PROB_TOL {
                return Err(CoreError::QuotientUnsupported {
                    reason: format!(
                        "algorithm does not respect the quotient group: the absorption \
                         dynamics of {:?} and its symmetric image {:?} diverge at step {k} \
                         (P(T<=k) = {} vs {})",
                        kernel.ix.decode(full),
                        kernel.ix.decode(image),
                        series_x[k],
                        series_img[k],
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Cached Definition 6 kernel rows over full-space indices; `work` counts
/// row generations so each lumped-fallback evolution can budget itself.
struct Kernel<'a, A: Algorithm, L> {
    alg: &'a A,
    ix: &'a SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    spec: &'a L,
    conflicts: Vec<u64>,
    gen: RowGen,
    /// full index → (legitimate, enabled mask, successor distribution
    /// aggregated by target).
    rows: HashMap<u64, KernelRow>,
    /// full index → legitimacy (far cheaper than a row; successors only
    /// need this).
    legit: HashMap<u64, bool>,
    /// Total row generations spent (read per-sample by
    /// [`Kernel::absorbed_series`] for its budget).
    work: usize,
}

impl<A, L> Kernel<'_, A, L>
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    /// The uncached raw row of `full`: enabled mask plus
    /// `(to, movers, prob)` edges sorted by `(to, movers)`.
    #[allow(clippy::type_complexity)]
    fn raw_row(&mut self, full: u64) -> Result<(u64, Vec<(u64, u64, f64)>), CoreError> {
        let cfg = self.ix.decode(full);
        let mut digits = Vec::new();
        self.ix.write_digits(full, &mut digits);
        let (mask, _) = self.gen.generate(
            self.alg,
            self.ix,
            self.daemon,
            &self.conflicts,
            &cfg,
            &digits,
            full,
        )?;
        Ok((
            mask,
            self.gen
                .row
                .iter()
                .map(|e| (e.to, e.movers, e.prob))
                .collect(),
        ))
    }

    /// The cached legitimacy of `full` (no row generation).
    fn is_legit(&mut self, full: u64) -> bool {
        if let Some(&l) = self.legit.get(&full) {
            return l;
        }
        let l = self.spec.is_legitimate(&self.ix.decode(full));
        self.legit.insert(full, l);
        l
    }

    /// The cached kernel row of `full` (distribution aggregated by
    /// target), counting one unit of work on a cache miss.
    fn row(&mut self, full: u64) -> Result<&KernelRow, CoreError> {
        if !self.rows.contains_key(&full) {
            self.work += 1;
            let cfg = self.ix.decode(full);
            let legit = self.spec.is_legitimate(&cfg);
            let mut digits = Vec::new();
            self.ix.write_digits(full, &mut digits);
            let (mask, _) = self.gen.generate(
                self.alg,
                self.ix,
                self.daemon,
                &self.conflicts,
                &cfg,
                &digits,
                full,
            )?;
            // Movers are irrelevant to absorption dynamics: aggregate by
            // target (rows are already sorted by target first).
            let mut dist: Vec<(u64, f64)> = Vec::new();
            for e in &self.gen.row {
                match dist.last_mut() {
                    Some(last) if last.0 == e.to => last.1 += e.prob,
                    _ => dist.push((e.to, e.prob)),
                }
            }
            self.rows.insert(full, (legit, mask, dist));
        }
        Ok(&self.rows[&full])
    }

    /// The absorbed-mass series `P(T_L <= k)` for `k = 0..`, evolved until
    /// [`LUMPED_MAX_STEPS`], the support cap, or this call's (per-sample)
    /// work budget truncates it — the first step is always completed, so
    /// every sample pair is compared at horizon `u_1` at least.
    fn absorbed_series(&mut self, start: u64) -> Result<Vec<f64>, CoreError> {
        let work_at_entry = self.work;
        let mut series = Vec::new();
        let mut dist: HashMap<u64, f64> = HashMap::new();
        let mut absorbed = 0.0f64;
        if self.is_legit(start) {
            absorbed = 1.0;
        } else {
            dist.insert(start, 1.0);
        }
        series.push(absorbed);
        let mut next: HashMap<u64, f64> = HashMap::new();
        for step in 0..LUMPED_MAX_STEPS {
            let spent = self.work - work_at_entry;
            if dist.is_empty()
                || dist.len() > LUMPED_SUPPORT_CAP
                || (step > 0 && spent > LUMPED_WORK_BUDGET)
            {
                break;
            }
            next.clear();
            let states: Vec<(u64, f64)> = dist.iter().map(|(&s, &p)| (s, p)).collect();
            for (state, p) in states {
                let (terminal, row) = {
                    let entry = self.row(state)?;
                    (entry.1 == 0, entry.2.clone())
                };
                if terminal {
                    // Terminal illegitimate configuration: mass stays put.
                    *next.entry(state).or_insert(0.0) += p;
                    continue;
                }
                for (to, q) in row {
                    if self.is_legit(to) {
                        absorbed += p * q;
                    } else {
                        *next.entry(to).or_insert(0.0) += p * q;
                    }
                }
            }
            std::mem::swap(&mut dist, &mut next);
            series.push(absorbed);
        }
        Ok(series)
    }
}
