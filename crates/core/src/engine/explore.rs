//! The shared flat-CSR transition engine.
//!
//! [`TransitionSystem::explore`] enumerates the full configuration space of
//! an algorithm under a daemon and materialises the labelled transition
//! graph that both the checker (`stab-checker`) and the Markov builder
//! (`stab-markov`) analyse; [`TransitionSystem::explore_with`] selects
//! between three traversals per run:
//!
//! * **full sweep** ([`ExploreOptions::full`]) — the PR 1 path: in-place
//!   mixed-radix [`ConfigCursor`] enumeration over `0..total`, chunked
//!   across scoped threads, configuration ids equal to mixed-radix
//!   indices;
//! * **full sweep over a symmetry quotient**
//!   ([`ExploreOptions::with_quotient`]: ring rotations, ring dihedral, or
//!   the topology-derived automorphism group — leaf permutations on stars
//!   and trees) — only the lexicographically-least orbit member gets an
//!   id; successor edges are canonicalized (Booth's O(N) algorithm on
//!   rings, plus a per-row memo of repeated successors), and parallel
//!   edges produced by the folding are merged with their probabilities
//!   summed. A per-run equivariance/spec-invariance gate rejects
//!   algorithm–group combinations the quotient is unsound for
//!   ([`CoreError::QuotientUnsupported`]);
//! * **on-the-fly reachable-only BFS** ([`ExploreOptions::reachable`]) —
//!   breadth-first search from a designated initial set with hash-interned
//!   configurations: only configurations reachable from the seeds get ids
//!   (discovery order), and the CSR is built incrementally from the
//!   frontier, so the explored size is bounded by the reachable set, not
//!   the product space. Composes with the rotation quotient.
//!
//! The per-configuration successor computation (outcome sharing,
//! delta-encoding, Gray-code subset walks) is shared by all three modes
//! (`rowgen`). Every edge carries the uniform-randomized-scheduler
//! probability of Definition 6 (`1/#activations ×` the product of outcome
//! probabilities), so the Markov builder reads its `Q` rows straight off
//! the same structure the checker uses possibilistically.
//!
//! ```
//! use stab_core::engine::{ExploreOptions, TransitionSystem};
//! use stab_core::{
//!     ActionId, ActionMask, Algorithm, Daemon, Outcomes, Predicate, SpaceIndexer, View,
//! };
//! use stab_graph::{builders, Graph, NodeId};
//!
//! /// One bit per ring node; a node flips when it differs from *some*
//! /// neighbour (anonymous and uniform, hence rotation-equivariant).
//! struct Flip { g: Graph }
//! impl Algorithm for Flip {
//!     type State = bool;
//!     fn graph(&self) -> &Graph { &self.g }
//!     fn name(&self) -> String { "flip".into() }
//!     fn state_space(&self, _v: NodeId) -> Vec<bool> { vec![false, true] }
//!     fn enabled_actions<V: View<bool>>(&self, v: &V) -> ActionMask {
//!         let differs = (0..v.degree()).any(|p| v.neighbor(p.into()) != v.me());
//!         ActionMask::when(differs, ActionId::A1)
//!     }
//!     fn apply<V: View<bool>>(&self, v: &V, _a: ActionId) -> Outcomes<bool> {
//!         Outcomes::certain(!*v.me())
//!     }
//! }
//!
//! let alg = Flip { g: builders::ring(5) };
//! let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
//! let spec = Predicate::new("agreement", |c: &stab_core::Configuration<bool>| {
//!     c.states().iter().all(|&b| b) || c.states().iter().all(|&b| !b)
//! });
//!
//! // Full sweep: 2^5 = 32 configurations.
//! let full = TransitionSystem::explore(&alg, &ix, Daemon::Central, &spec).unwrap();
//! assert_eq!(full.n_configs(), 32);
//!
//! // Rotation quotient: 8 binary necklaces represent all 32.
//! let opts = ExploreOptions::full().with_ring_quotient();
//! let quot = TransitionSystem::explore_with(&alg, &ix, Daemon::Central, &spec, &opts).unwrap();
//! assert_eq!(quot.n_configs(), 8);
//! assert_eq!(quot.represented_configs(), 32);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use stab_graph::NodeId;

use crate::algorithm::Algorithm;
use crate::scheduler::{DaemonSpec, Distribution};
use crate::space::SpaceIndexer;
use crate::spec::Legitimacy;
use crate::{CoreError, LocalState};

use super::bitset::BitSet;
use super::csr::Csr;
use super::cursor::ConfigCursor;
use super::edgestore::{EdgeIter, EdgeStorage, EdgeStorageBuilder, EdgeStore, EdgeStoreKind};
use super::equivariance;
use super::ids;
use super::onthefly::{self, ExploreMode, ExploreOptions, Quotient, StateIds, TraversalMode};
use super::parallel;
use super::quotient::GroupCanonicalizer;
use super::resilience::{
    self, Budget, Checkpointer, FinalMeta, Fnv, LabelBits, Replay, RunGuard, SnapshotSource,
};
use super::rowgen::RowGen;
use super::spill::SpillConfig;

/// Configurations per sequential batch when streaming a compressed store:
/// bounds the transient flat rows to one batch while the byte stream
/// grows, which is the whole point of the compressed tier.
pub(super) const COMPRESSED_BATCH: u64 = 2048;

/// Process-wide exploration counter, incremented once per
/// [`TransitionSystem::explore_with`] entry.
static EXPLORE_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of engine explorations performed by this process so far.
/// Exploration is the dominant cost of every pipeline, so pipelines that
/// promise to *share* one exploration across stages (the facade `Study`)
/// pin that promise by asserting this counter advanced exactly once per
/// run.
pub fn explore_count() -> u64 {
    EXPLORE_CALLS.load(Ordering::Relaxed)
}

/// One transition: activating the processes in `movers` (bit `i` =
/// process `Pi`) can lead to configuration `to`, and does so with
/// probability `prob` under the randomized scheduler (Definition 6).
///
/// In a quotient system `to` is the id of the successor's *orbit
/// representative*, and `prob` sums every concrete edge of the row that
/// folds onto the same `(to, movers)` pair, so row probabilities remain
/// exactly stochastic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Successor configuration id.
    pub to: u32,
    /// Bitmask of activated processes.
    pub movers: u64,
    /// `P(activation) × P(outcome)` under the uniform randomized daemon.
    pub prob: f64,
}

/// The explored transition system of `(algorithm, daemon)`: flat CSR
/// edges, per-configuration enabled masks, bit-packed label sets, and the
/// id ↔ configuration mapping of the traversal that built it.
#[derive(Debug)]
pub struct TransitionSystem {
    forward: EdgeStorage,
    reverse: OnceLock<Csr<u32>>,
    /// Bitmask of enabled processes per configuration.
    enabled: Vec<u64>,
    legit: BitSet,
    initial: BitSet,
    deterministic: bool,
    /// id ↔ full-space-index mapping.
    states: StateIds,
    /// Present when the system is a symmetry quotient.
    canon: Option<GroupCanonicalizer>,
    /// Which group the ids quotient by.
    quotient: Quotient,
    traversal: TraversalMode,
}

impl TransitionSystem {
    /// Explores the full configuration space of `alg` under `daemon` (any
    /// [`DaemonSpec`] lattice point, or a legacy
    /// [`Daemon`](crate::Daemon) value), labelling configurations with
    /// `spec`. `ix` must be the indexer of `alg`'s space. Equivalent to
    /// [`TransitionSystem::explore_with`] under [`ExploreOptions::full`].
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::TooManyEnabled`] from subset-daemon
    /// enumeration past
    /// [`DISTRIBUTED_ENUM_CAP`](crate::scheduler::DISTRIBUTED_ENUM_CAP)
    /// simultaneously enabled processes.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than 64 processes (bitmask encoding)
    /// or the space has more than `u32::MAX` configurations.
    pub fn explore<A, L>(
        alg: &A,
        ix: &SpaceIndexer<A::State>,
        daemon: impl Into<DaemonSpec>,
        spec: &L,
    ) -> Result<Self, CoreError>
    where
        A: Algorithm + Sync,
        A::State: Sync,
        L: Legitimacy<A::State> + Sync,
    {
        Self::explore_with(alg, ix, daemon, spec, &ExploreOptions::full())
    }

    /// Explores `alg` under `daemon` with an explicit traversal mode and
    /// optional ring-rotation quotient (see the module docs for the three
    /// traversals).
    ///
    /// # Errors
    ///
    /// * [`CoreError::TooManyEnabled`] — subset-daemon enumeration
    ///   past the cap;
    /// * [`CoreError::QuotientUnsupported`] — the requested group does not
    ///   apply to the topology (e.g. a ring quotient on a path), the state
    ///   alphabets break the symmetry, or the per-run equivariance gate
    ///   finds the algorithm or the specification not to respect the group
    ///   (e.g. Dijkstra's rooted ring under any ring quotient, or the
    ///   oriented token ring under a reflection quotient);
    /// * [`CoreError::StateSpaceTooLarge`] — a reachable-mode BFS interned
    ///   more states than [`ExploreOptions::max_states`].
    ///
    /// # Panics
    ///
    /// Panics if the network has more than 64 processes, or if the number
    /// of *explored* states exceeds `u32::MAX` (for the plain full sweep,
    /// the number of explored states is the full space).
    pub fn explore_with<A, L>(
        alg: &A,
        ix: &SpaceIndexer<A::State>,
        daemon: impl Into<DaemonSpec>,
        spec: &L,
        opts: &ExploreOptions<A::State>,
    ) -> Result<Self, CoreError>
    where
        A: Algorithm + Sync,
        A::State: Sync,
        L: Legitimacy<A::State> + Sync,
    {
        Self::explore_guarded(alg, ix, daemon, spec, opts, &RunGuard::default())
    }

    /// [`TransitionSystem::explore_with`] under a [`RunGuard`]: the
    /// guard's [`Budget`](super::Budget) is probed cooperatively at batch
    /// boundaries (exhaustion surfaces as
    /// [`CoreError::BudgetExhausted`] instead of an OOM kill), and its
    /// [`FaultPlan`](super::FaultPlan) injects deterministic kill-points
    /// after durable checkpoint frames
    /// ([`CoreError::Interrupted`]). Guarded runs traverse sequentially
    /// so every probe and frame sees a deterministic prefix.
    pub fn explore_guarded<A, L>(
        alg: &A,
        ix: &SpaceIndexer<A::State>,
        daemon: impl Into<DaemonSpec>,
        spec: &L,
        opts: &ExploreOptions<A::State>,
        guard: &RunGuard,
    ) -> Result<Self, CoreError>
    where
        A: Algorithm + Sync,
        A::State: Sync,
        L: Legitimacy<A::State> + Sync,
    {
        let daemon = daemon.into();
        EXPLORE_CALLS.fetch_add(1, Ordering::Relaxed);
        let n = alg.n();
        assert!(n <= 64, "bitmask encoding supports at most 64 processes");
        assert!(
            ix.total() <= i64::MAX as u64,
            "mixed-radix indices must fit in i64 for delta encoding"
        );
        let canon = match opts.quotient {
            Quotient::None => None,
            Quotient::RingRotation => Some(GroupCanonicalizer::ring_rotation(alg.graph(), ix)?),
            Quotient::RingDihedral => Some(GroupCanonicalizer::ring_dihedral(alg.graph(), ix)?),
            Quotient::Automorphism => Some(GroupCanonicalizer::automorphism(alg.graph(), ix)?),
        };
        if let Some(canon) = &canon {
            equivariance::check_quotient_sound(alg, ix, daemon, spec, canon)?;
        }
        match (&opts.mode, canon) {
            (ExploreMode::Full, None) => Self::explore_full(alg, ix, daemon, spec, opts, guard),
            (ExploreMode::Full, Some(canon)) => {
                onthefly::explore_quotient_sweep(alg, ix, daemon, spec, canon, opts, guard)
            }
            (ExploreMode::Reachable { seeds }, canon) => {
                onthefly::explore_reachable(alg, ix, daemon, spec, seeds, canon, opts, guard)
            }
        }
    }

    /// Reconstructs the completed exploration checkpointed under `dir`
    /// (see [`ExploreOptions::with_checkpoint`]) — bit-identical to the
    /// system the original run returned, without re-running the
    /// algorithm.
    ///
    /// # Errors
    ///
    /// * [`CoreError::CheckpointIncomplete`] — the frame chain has no
    ///   final frame (the exploration never finished; re-run it with the
    ///   same checkpoint directory to continue);
    /// * [`CoreError::CheckpointIo`] — the directory is unreadable.
    ///
    /// A torn or corrupted frame simply ends the chain early (CRC32 and
    /// structural validation), which reads as an incomplete chain here —
    /// never as a wrong system.
    pub fn resume(dir: impl AsRef<std::path::Path>) -> Result<Self, CoreError> {
        resilience::resume_from_dir(dir.as_ref())
    }

    /// The PR 1 full sweep: dense ids, parallel chunking onto the flat
    /// store. With a compressed store — or any checkpoint or active
    /// guard — the sweep runs in bounded *sequential* batches instead:
    /// the compressed tier streams each batch's rows into the byte
    /// encoding so peak memory stays `O(stream + batch)` rather than
    /// `O(flat edges)`, and checkpoint frames / budget probes need a
    /// deterministic prefix to snapshot.
    fn explore_full<A, L>(
        alg: &A,
        ix: &SpaceIndexer<A::State>,
        daemon: DaemonSpec,
        spec: &L,
        opts: &ExploreOptions<A::State>,
        guard: &RunGuard,
    ) -> Result<Self, CoreError>
    where
        A: Algorithm + Sync,
        A::State: Sync,
        L: Legitimacy<A::State> + Sync,
    {
        let kind = opts.edge_store;
        let total = ix.total();
        assert!(
            total <= u32::MAX as u64,
            "configuration ids must fit in u32"
        );
        let conflicts = conflict_masks(alg, daemon);
        let spill = opts.effective_spill();
        let mut merge = MergeState::new(kind, total as usize, &spill);
        let mut ck = match &opts.checkpoint {
            Some(cfg) => Some(Checkpointer::open(
                cfg,
                run_fingerprint(alg, ix, daemon, opts),
                kind,
                guard.faults(),
            )?),
            None => None,
        };
        let sequential = kind != EdgeStoreKind::Flat || ck.is_some() || guard.is_active();
        if !sequential {
            let chunks = parallel::map_chunks(total, |range| {
                explore_chunk(alg, ix, daemon, spec, &conflicts, range)
            })?;
            for chunk in chunks {
                merge.absorb(chunk);
            }
        } else {
            let mut start = 0u64;
            if let Some(ck) = &mut ck {
                if let Some(replay) = ck.take_replay() {
                    if replay.complete.is_some() {
                        let dir = &opts.checkpoint.as_ref().expect("checkpoint configured").dir;
                        return replay.into_transition_system(dir);
                    }
                    start = replay.cursor;
                    merge = MergeState::from_replay(kind, total as usize, replay, &spill);
                }
            }
            while start < total {
                guard.probe("explore", merge.bytes_estimate(), start)?;
                let end = (start + COMPRESSED_BATCH).min(total);
                let chunk = explore_chunk(alg, ix, daemon, spec, &conflicts, start..end)?;
                merge.absorb(chunk);
                start = end;
                if let Some(ck) = &mut ck {
                    ck.tick(start, &merge.snapshot_source(None, &[]))?;
                }
            }
            if let Some(ck) = &mut ck {
                ck.finalize(
                    total,
                    &merge.snapshot_source(None, &[]),
                    FinalMeta {
                        dense_total: Some(total),
                        canon: None,
                        quotient: Quotient::None,
                        traversal: TraversalMode::Full,
                    },
                )?;
            }
        }
        let (forward, enabled, legit, initial, deterministic) = merge.finish();
        Ok(TransitionSystem {
            forward,
            reverse: OnceLock::new(),
            enabled,
            legit,
            initial,
            deterministic,
            states: StateIds::Dense { total },
            canon: None,
            quotient: Quotient::None,
            traversal: TraversalMode::Full,
        })
    }

    /// Assembles a system from the non-dense exploration paths.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn assemble(
        forward: EdgeStorage,
        enabled: Vec<u64>,
        legit: BitSet,
        initial: BitSet,
        deterministic: bool,
        states: StateIds,
        canon: Option<GroupCanonicalizer>,
        quotient: Quotient,
        traversal: TraversalMode,
    ) -> Self {
        TransitionSystem {
            forward,
            reverse: OnceLock::new(),
            enabled,
            legit,
            initial,
            deterministic,
            states,
            canon,
            quotient,
            traversal,
        }
    }

    /// Assembles a transition system from raw parts with dense ids.
    /// Exposed for the differential test suites, which build reference
    /// systems through the seed enumeration path and compare analyses;
    /// production code goes through [`TransitionSystem::explore`].
    #[doc(hidden)]
    pub fn from_raw_parts(
        forward: Csr<Edge>,
        enabled: Vec<u64>,
        legit: BitSet,
        initial: BitSet,
        deterministic: bool,
    ) -> Self {
        assert_eq!(forward.n_rows(), enabled.len());
        assert_eq!(forward.n_rows(), legit.len());
        assert_eq!(forward.n_rows(), initial.len());
        let total = forward.n_rows() as u64;
        TransitionSystem {
            forward: EdgeStorage::Flat(forward),
            reverse: OnceLock::new(),
            enabled,
            legit,
            initial,
            deterministic,
            states: StateIds::Dense { total },
            canon: None,
            quotient: Quotient::None,
            traversal: TraversalMode::Full,
        }
    }

    /// Number of explored configurations (orbit representatives in a
    /// quotient system; reached states in a reachable-mode system).
    #[inline]
    pub fn n_configs(&self) -> u32 {
        ids::id_u32(self.forward.n_rows(), "explored rows fit the u32 id width")
    }

    /// Total number of stored edges (u64 — representable past 2³² on the
    /// compressed store).
    #[inline]
    pub fn n_edges(&self) -> u64 {
        self.forward.n_edges()
    }

    /// Which edge-store tier holds the forward edges.
    #[inline]
    pub fn edge_store_kind(&self) -> EdgeStoreKind {
        self.forward.kind()
    }

    /// Heap bytes held by the forward edge store (offsets + edge data +
    /// side tables) — the quantity `BENCH_explore.json` reports as
    /// `edge_bytes`.
    #[inline]
    pub fn edge_bytes(&self) -> u64 {
        self.forward.edge_bytes()
    }

    /// How the system was traversed ([`TraversalMode::Full`] sweep or
    /// [`TraversalMode::Reachable`] BFS).
    #[inline]
    pub fn traversal(&self) -> TraversalMode {
        self.traversal
    }

    /// Which symmetry group the ids quotient by ([`Quotient::None`]
    /// outside quotient mode).
    #[inline]
    pub fn quotient(&self) -> Quotient {
        self.quotient
    }

    /// The order of the quotient group (1 outside quotient mode). Every
    /// orbit size divides it, so
    /// `represented_configs() <= n_configs() × group_order()`.
    #[inline]
    pub fn group_order(&self) -> u64 {
        self.canon.as_ref().map_or(1, |c| c.group_order())
    }

    /// The quotient canonicalizer, when the system is a quotient.
    #[inline]
    pub fn canonicalizer(&self) -> Option<&GroupCanonicalizer> {
        self.canon.as_ref()
    }

    /// The full-space mixed-radix index behind configuration id `id`.
    #[inline]
    pub fn full_index_of(&self, id: u32) -> u64 {
        match &self.states {
            StateIds::Dense { .. } => id as u64,
            StateIds::Interned(table) => table.full_of(id),
        }
    }

    /// The id of the configuration with full-space index `full`, if it was
    /// explored. In a quotient system, `full` is canonicalized first, so
    /// any member of an explored orbit resolves.
    pub fn id_of_full_index(&self, full: u64) -> Option<u32> {
        let full = match &self.canon {
            None => full,
            Some(c) => c.canonical_owned(full),
        };
        match &self.states {
            // lint: cast-ok(dense totals are capped at the u32 id width by Plan)
            StateIds::Dense { total } => (full < *total).then_some(full as u32),
            StateIds::Interned(table) => table.lookup(full),
        }
    }

    /// The number of concrete configurations id `id` stands for: its
    /// group-orbit size in a quotient system, 1 otherwise.
    #[inline]
    pub fn orbit_size(&self, id: u32) -> u64 {
        match &self.states {
            StateIds::Dense { .. } => 1,
            StateIds::Interned(table) => table.orbit(id),
        }
    }

    /// Total number of concrete configurations represented: the sum of
    /// orbit sizes (equals [`TransitionSystem::n_configs`] outside
    /// quotient mode).
    pub fn represented_configs(&self) -> u64 {
        match &self.states {
            StateIds::Dense { .. } => self.n_configs() as u64,
            StateIds::Interned(table) => table.represented(),
        }
    }

    /// Outgoing edges of configuration `id`, sorted by `(to, movers)`, as
    /// a borrowed slice — **flat store only**.
    ///
    /// # Errors
    ///
    /// [`CoreError::FlatStoreRequired`] on a compressed store, whose rows
    /// exist only in decoded form; iterate
    /// [`TransitionSystem::edge_iter`] instead, which works on both
    /// tiers (every analysis in the checker does).
    #[inline]
    pub fn edges(&self, id: u32) -> Result<&[Edge], CoreError> {
        self.forward
            .try_row_slice(id as usize)
            .ok_or(CoreError::FlatStoreRequired {
                op: "TransitionSystem::edges",
            })
    }

    /// Zero-alloc cursor over the outgoing edges of `id`, in `(to,
    /// movers)` order — works on both store tiers.
    #[inline]
    pub fn edge_iter(&self, id: u32) -> EdgeIter<'_> {
        self.forward.row_iter(id as usize)
    }

    /// Whether configuration `id` stores no outgoing edges.
    #[inline]
    pub fn edge_row_is_empty(&self, id: u32) -> bool {
        self.forward.row_is_empty(id as usize)
    }

    /// The forward edge store itself (whichever tier the run selected).
    #[inline]
    pub fn edge_store(&self) -> &EdgeStorage {
        &self.forward
    }

    /// The reverse CSR: row `j` lists the predecessors of `j` (with
    /// multiplicity, ascending). Built once on first use — streamed row
    /// by row on the non-flat tiers, never from a decoded flat copy.
    ///
    /// Unbudgeted convenience wrapper over
    /// [`TransitionSystem::reverse_budgeted`]; analyses that run under
    /// a byte budget must use the budgeted form, which turns "the
    /// reverse CSR would not fit" into a typed
    /// [`CoreError::BudgetExhausted`] (the degraded-study path)
    /// instead of an OOM kill.
    pub fn reverse(&self) -> &Csr<u32> {
        self.reverse_budgeted(&Budget::unlimited())
            .expect("unlimited budget cannot trip")
    }

    /// Budget-probed reverse CSR: probes stage `"reverse"` with the
    /// full materialised size *before* allocating and again at block
    /// strides while filling, so a too-small byte budget surfaces as
    /// [`CoreError::BudgetExhausted`] before peak memory doubles
    /// (previously the `OnceLock` init bypassed every probe).
    pub fn reverse_budgeted(&self, budget: &Budget) -> Result<&Csr<u32>, CoreError> {
        if let Some(r) = self.reverse.get() {
            return Ok(r);
        }
        let r = self.forward.invert_targets_budgeted(budget)?;
        Ok(self.reverse.get_or_init(|| r))
    }

    /// Resident-set bytes of the forward store (full footprint on the
    /// in-RAM tiers; offsets + probability table + pinned chunk cache
    /// on the disk tier) — the cache-pressure figure analyses feed
    /// their [`Budget`] probes.
    pub fn resident_edge_bytes(&self) -> u64 {
        self.forward.resident_bytes()
    }

    /// Bytes of the forward store spilled to chunk files — zero on the
    /// in-RAM tiers.
    pub fn spilled_edge_bytes(&self) -> u64 {
        self.forward.spilled_bytes()
    }

    /// High-water mark of [`TransitionSystem::resident_edge_bytes`]:
    /// the figure the out-of-core acceptance gate compares against the
    /// plan's byte budget.
    pub fn peak_resident_edge_bytes(&self) -> u64 {
        self.forward.peak_resident_bytes()
    }

    /// Bitmask of processes enabled in configuration `id`.
    #[inline]
    pub fn enabled_mask(&self, id: u32) -> u64 {
        self.enabled[id as usize]
    }

    /// Whether configuration `id` is terminal (no enabled process).
    #[inline]
    pub fn is_terminal(&self, id: u32) -> bool {
        self.enabled[id as usize] == 0
    }

    /// Whether configuration `id` is legitimate.
    #[inline]
    pub fn is_legit(&self, id: u32) -> bool {
        self.legit.get(id as usize)
    }

    /// Whether configuration `id` is an admissible initial configuration.
    /// In reachable mode, the initial set is exactly the designated seeds.
    #[inline]
    pub fn is_initial(&self, id: u32) -> bool {
        self.initial.get(id as usize)
    }

    /// The legitimate set.
    #[inline]
    pub fn legit(&self) -> &BitSet {
        &self.legit
    }

    /// The initial set.
    #[inline]
    pub fn initial(&self) -> &BitSet {
        &self.initial
    }

    /// Number of legitimate explored configurations (representatives in a
    /// quotient system — weigh by [`TransitionSystem::orbit_size`] for
    /// concrete counts).
    pub fn legit_count(&self) -> u64 {
        self.legit.count_ones()
    }

    /// Whether the algorithm was deterministic on every explored
    /// configuration (mutually exclusive guards and singleton outcomes).
    #[inline]
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// FNV-1a digest over the system's entire observable content: every
    /// edge (including exact probability bits), enabled mask, label bit,
    /// id ↔ full-index mapping, orbit size, and the quotient/traversal
    /// identity. Two systems with equal digests are bit-identical for
    /// every analysis downstream — the resilience test campaigns pin
    /// "resume equals uninterrupted run" on this.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.n_configs() as u64);
        h.write_u64(self.n_edges());
        for id in 0..self.n_configs() {
            h.write_u64(self.enabled[id as usize]);
            h.write_u64(self.full_index_of(id));
            h.write_u64(self.orbit_size(id));
            for e in self.edge_iter(id) {
                h.write_u64(e.to as u64);
                h.write_u64(e.movers);
                h.write_u64(e.prob.to_bits());
            }
        }
        for &w in self.legit.words() {
            h.write_u64(w);
        }
        for &w in self.initial.words() {
            h.write_u64(w);
        }
        h.write_u64(self.deterministic as u64);
        h.write(self.quotient.label().as_bytes());
        h.write_u64(self.group_order());
        h.write_u64(matches!(self.traversal, TraversalMode::Reachable) as u64);
        h.finish()
    }

    /// The forward-reachable closure of `seeds`.
    pub fn forward_closure(&self, seeds: &BitSet) -> BitSet {
        let mut seen = seeds.clone();
        let mut stack: Vec<u32> = seeds
            .ones()
            .map(|i| ids::id_u32(i, "seed ids fit the u32 id width"))
            .collect();
        while let Some(id) = stack.pop() {
            for e in self.edge_iter(id) {
                if !seen.get(e.to as usize) {
                    seen.insert(e.to as usize);
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// The backward-reachable closure of `seeds` (configurations with some
    /// path *into* `seeds`) — unbudgeted wrapper over
    /// [`TransitionSystem::backward_closure_budgeted`].
    pub fn backward_closure(&self, seeds: &BitSet) -> BitSet {
        self.backward_closure_budgeted(seeds, &Budget::unlimited())
            .expect("unlimited budget cannot trip")
    }

    /// Budget-probed backward closure. The in-RAM tiers run the usual
    /// BFS over the (budget-probed) reverse CSR; the disk tier never
    /// materialises a reverse CSR at all — it iterates streaming
    /// forward sweeps to the fixpoint (mark a row once some successor
    /// is marked), rotating chunks through the pinned cache, with one
    /// `"reverse"` probe per sweep carrying the resident-set bytes as
    /// the cache-pressure figure.
    pub fn backward_closure_budgeted(
        &self,
        seeds: &BitSet,
        budget: &Budget,
    ) -> Result<BitSet, CoreError> {
        if self.edge_store_kind() != EdgeStoreKind::Disk {
            let reverse = self.reverse_budgeted(budget)?;
            let mut seen = seeds.clone();
            let mut stack: Vec<u32> = seeds
                .ones()
                .map(|i| ids::id_u32(i, "seed ids fit the u32 id width"))
                .collect();
            while let Some(id) = stack.pop() {
                for &p in reverse.row(id as usize) {
                    if !seen.get(p as usize) {
                        seen.insert(p as usize);
                        stack.push(p);
                    }
                }
            }
            return Ok(seen);
        }
        let mut seen = seeds.clone();
        let mut sweeps = 0u64;
        loop {
            sweeps += 1;
            budget.probe("reverse", self.resident_edge_bytes(), sweeps)?;
            let mut changed = false;
            for id in 0..self.n_configs() {
                if seen.get(id as usize) {
                    continue;
                }
                for e in self.edge_iter(id) {
                    if seen.get(e.to as usize) {
                        seen.insert(id as usize);
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                return Ok(seen);
            }
        }
    }
}

/// Bitmask of a node list.
pub fn node_mask(nodes: &[NodeId]) -> u64 {
    nodes.iter().fold(0u64, |m, v| m | (1u64 << v.index()))
}

/// Per-node adjacency bitmasks for the locally-central independence test.
pub(super) fn adjacency_masks<A: Algorithm>(alg: &A) -> Vec<u64> {
    let graph = alg.graph();
    (0..alg.n())
        .map(|v| node_mask(graph.neighbors(NodeId::new(v))))
        .collect()
}

/// Per-node conflict bitmasks for `daemon`'s pairwise-spread constraint:
/// `masks[v]` holds every node within the spec's locality radius of `v`
/// (excluding `v`). Radius 0 yields all-zero masks (no constraint — the
/// distributed point), radius 1 the adjacency masks (locally central),
/// larger radii a bounded BFS ball per node.
pub(super) fn conflict_masks<A: Algorithm>(alg: &A, daemon: DaemonSpec) -> Vec<u64> {
    let radius = match daemon.distribution {
        Distribution::KCentral { radius, .. } => radius,
        Distribution::Synchronous => 0,
    };
    match radius {
        0 => vec![0u64; alg.n()],
        1 => adjacency_masks(alg),
        r => {
            let graph = alg.graph();
            let n = alg.n();
            (0..n)
                .map(|v| {
                    let start = NodeId::new(v);
                    let mut dist = vec![u32::MAX; n];
                    dist[v] = 0;
                    let mut queue = std::collections::VecDeque::from([start]);
                    let mut mask = 0u64;
                    while let Some(u) = queue.pop_front() {
                        let d = dist[u.index()];
                        if d >= r {
                            continue;
                        }
                        for &w in graph.neighbors(u) {
                            if dist[w.index()] == u32::MAX {
                                dist[w.index()] = d + 1;
                                mask |= 1u64 << w.index();
                                queue.push_back(w);
                            }
                        }
                    }
                    mask
                })
                .collect()
        }
    }
}

/// Per-chunk exploration output, merged in chunk order (shared with the
/// quotient sweep in `onthefly`).
pub(super) struct Chunk {
    pub(super) counts: Vec<u32>,
    pub(super) edges: Vec<Edge>,
    pub(super) enabled: Vec<u64>,
    pub(super) legit: Vec<bool>,
    pub(super) initial: Vec<bool>,
    pub(super) deterministic: bool,
}

impl Chunk {
    pub(super) fn with_capacity(size: usize) -> Self {
        Chunk {
            counts: Vec::with_capacity(size),
            edges: Vec::new(),
            enabled: Vec::with_capacity(size),
            legit: Vec::with_capacity(size),
            initial: Vec::with_capacity(size),
            deterministic: true,
        }
    }
}

/// Chunk-order accumulator feeding the selected edge store plus the
/// per-configuration label vectors (shared by the full and quotient
/// sweeps).
pub(super) struct MergeState {
    builder: EdgeStorageBuilder,
    enabled: Vec<u64>,
    legit: BitSet,
    initial: BitSet,
    deterministic: bool,
    base: usize,
}

impl MergeState {
    pub(super) fn new(kind: EdgeStoreKind, total: usize, spill: &SpillConfig) -> Self {
        MergeState {
            builder: EdgeStorageBuilder::with_spill(kind, spill),
            enabled: Vec::with_capacity(total),
            legit: BitSet::new(total),
            initial: BitSet::new(total),
            deterministic: true,
            base: 0,
        }
    }

    pub(super) fn absorb(&mut self, chunk: Chunk) {
        self.builder.push_chunk(&chunk.counts, &chunk.edges);
        self.enabled.extend_from_slice(&chunk.enabled);
        for (i, &l) in chunk.legit.iter().enumerate() {
            if l {
                // lint: arith-ok(chunk-local index added to a state count bounded by the explored set)
                self.legit.insert(self.base + i);
            }
        }
        for (i, &l) in chunk.initial.iter().enumerate() {
            if l {
                // lint: arith-ok(chunk-local index added to a state count bounded by the explored set)
                self.initial.insert(self.base + i);
            }
        }
        self.deterministic &= chunk.deterministic;
        // lint: arith-ok(state cursor advances by chunk sizes summing to the explored state count)
        self.base += chunk.counts.len();
    }

    #[allow(clippy::type_complexity)]
    pub(super) fn finish(self) -> (EdgeStorage, Vec<u64>, BitSet, BitSet, bool) {
        (
            self.builder.finish(),
            self.enabled,
            self.legit,
            self.initial,
            self.deterministic,
        )
    }

    /// Heap bytes the edge builder currently holds (budget-probe input).
    pub(super) fn bytes_estimate(&self) -> u64 {
        self.builder.bytes_estimate()
    }

    /// The checkpoint view of the accumulated state (see
    /// [`SnapshotSource`]); `table`/`seeds` are the traversal's
    /// non-dense extras, empty for the plain full sweep.
    pub(super) fn snapshot_source<'a>(
        &'a self,
        table: Option<&'a onthefly::StateTable>,
        seeds: &'a [u32],
    ) -> SnapshotSource<'a> {
        SnapshotSource {
            builder: &self.builder,
            enabled: &self.enabled,
            legit: LabelBits::Bits(&self.legit),
            initial: LabelBits::Bits(&self.initial),
            deterministic: self.deterministic,
            table,
            seeds,
        }
    }

    /// Rebuilds the accumulator from a checkpoint replay so the sweep
    /// continues from `replay.cursor` as if it had never stopped.
    pub(super) fn from_replay(
        kind: EdgeStoreKind,
        total: usize,
        replay: Replay,
        spill: &SpillConfig,
    ) -> Self {
        debug_assert_eq!(replay.tier, kind);
        let base = replay.cursor as usize;
        let mut legit = BitSet::new(total);
        for (i, &l) in replay.legit.iter().enumerate() {
            if l {
                legit.insert(i);
            }
        }
        let mut initial = BitSet::new(total);
        for (i, &l) in replay.initial.iter().enumerate() {
            if l {
                initial.insert(i);
            }
        }
        MergeState {
            builder: replay.builder.into_builder(kind, spill),
            enabled: replay.enabled,
            legit,
            initial,
            deterministic: replay.deterministic,
            base,
        }
    }
}

/// FNV-1a fingerprint of a run's identity — algorithm, space, daemon,
/// traversal mode (with seed indices), quotient, and edge-store tier. A
/// checkpoint directory records it in every frame so a resumed run only
/// adopts frames written by the same exploration.
pub(super) fn run_fingerprint<A: Algorithm>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    opts: &ExploreOptions<A::State>,
) -> u64 {
    let mut h = Fnv::new();
    h.write(alg.name().as_bytes());
    h.write_u64(alg.n() as u64);
    h.write_u64(ix.total());
    h.write(daemon.name().as_bytes());
    h.write(opts.quotient.label().as_bytes());
    h.write(opts.edge_store.label().as_bytes());
    match &opts.mode {
        ExploreMode::Full => h.write_u64(0),
        ExploreMode::Reachable { seeds } => {
            h.write_u64(1);
            h.write_u64(seeds.len() as u64);
            for cfg in seeds {
                h.write_u64(ix.encode(cfg));
            }
        }
    }
    h.finish()
}

fn explore_chunk<A, L>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: DaemonSpec,
    spec: &L,
    conflicts: &[u64],
    range: Range<u64>,
) -> Result<Chunk, CoreError>
where
    A: Algorithm,
    A::State: LocalState,
    L: Legitimacy<A::State>,
{
    let size = (range.end - range.start) as usize;
    let mut chunk = Chunk::with_capacity(size);
    if size == 0 {
        return Ok(chunk);
    }
    let mut gen = RowGen::new();
    let mut cursor = ConfigCursor::new(ix, range.start);
    for id in range.clone() {
        let cfg = cursor.config();
        chunk.legit.push(spec.is_legitimate(cfg));
        chunk.initial.push(alg.is_initial(cfg));
        let (mask, det) = gen.generate(alg, ix, daemon, conflicts, cfg, cursor.digits(), id)?;
        chunk.deterministic &= det;
        chunk.enabled.push(mask);
        chunk
            .counts
            .push(ids::id_u32(gen.row.len(), "per-row edge count fits u32"));
        chunk.edges.extend(gen.row.iter().map(|e| Edge {
            to: ids::id_u32_wide(e.to, "target config ids fit the u32 id width"),
            movers: e.movers,
            prob: e.prob,
        }));
        if id + 1 < range.end {
            cursor.advance();
        }
    }
    Ok(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::test_support::Infection;
    use crate::scheduler::Daemon;
    use crate::{semantics, Predicate};
    use stab_graph::builders;

    fn infection_system(daemon: Daemon) -> (Infection, SpaceIndexer<u8>, TransitionSystem) {
        let alg = Infection {
            g: builders::path(3),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = Predicate::new("all-ones", |c: &crate::Configuration<u8>| {
            c.states().iter().all(|&s| s == 1)
        });
        let ts = TransitionSystem::explore(&alg, &ix, daemon, &spec).unwrap();
        (alg, ix, ts)
    }

    #[test]
    fn engine_matches_reference_semantics_on_infection() {
        for daemon in Daemon::ALL {
            let (alg, ix, ts) = infection_system(daemon);
            assert_eq!(ts.n_configs() as u64, ix.total());
            for idv in 0..ix.total() {
                let cfg = ix.decode(idv);
                // Reference: the seed's per-configuration enumeration.
                let mut expect: Vec<(u32, u64)> = Vec::new();
                for (act, dist) in semantics::all_steps(&alg, daemon, &cfg).unwrap() {
                    let movers = node_mask(act.nodes());
                    for (_, next) in dist {
                        // lint: cast-ok(tiny test space, ids stay below u32)
                        expect.push((ix.encode(&next) as u32, movers));
                    }
                }
                expect.sort_unstable();
                expect.dedup();
                let got: Vec<(u32, u64)> = ts
                    // lint: cast-ok(tiny test space, ids stay below u32)
                    .edges(idv as u32)
                    .unwrap()
                    .iter()
                    .map(|e| (e.to, e.movers))
                    .collect();
                assert_eq!(got, expect, "config {cfg:?} under {daemon}");
                assert_eq!(
                    // lint: cast-ok(tiny test space, ids stay below u32)
                    ts.enabled_mask(idv as u32),
                    node_mask(&alg.enabled_nodes(&cfg)),
                );
            }
        }
    }

    #[test]
    fn edge_probabilities_sum_to_one_per_nonterminal_config() {
        for daemon in Daemon::ALL {
            let (_, _, ts) = infection_system(daemon);
            for id in 0..ts.n_configs() {
                if ts.is_terminal(id) {
                    assert!(ts.edges(id).unwrap().is_empty());
                    continue;
                }
                let mass: f64 = ts.edges(id).unwrap().iter().map(|e| e.prob).sum();
                assert!(
                    (mass - 1.0).abs() < 1e-9,
                    "config {id} mass {mass} under {daemon}"
                );
            }
        }
    }

    #[test]
    fn closures_and_labels_are_consistent() {
        let (_, ix, ts) = infection_system(Daemon::Central);
        // Legitimate: exactly the all-ones configuration.
        assert_eq!(ts.legit_count(), 1);
        assert!(ts.deterministic());
        let legit_id = ix.encode(&crate::Configuration::from_vec(vec![1, 1, 1]));
        // lint: cast-ok(tiny test space, ids stay below u32)
        assert!(ts.is_legit(legit_id as u32));
        // Everything is initial (I = C).
        assert!(ts.initial().is_full());
        // Backward closure of L: all configurations with some infected
        // process can reach all-ones; all-zero cannot.
        let can = ts.backward_closure(ts.legit());
        let dead = ix.encode(&crate::Configuration::from_vec(vec![0, 0, 0]));
        assert!(!can.get(dead as usize));
        assert_eq!(can.count_ones(), ix.total() - 1);
        // Forward closure from the all-zero configuration is itself.
        let mut seed = BitSet::new(ts.n_configs() as usize);
        seed.insert(dead as usize);
        assert_eq!(ts.forward_closure(&seed).count_ones(), 1);
    }

    #[test]
    fn dense_mapping_is_the_identity() {
        let (_, ix, ts) = infection_system(Daemon::Central);
        assert_eq!(ts.traversal(), TraversalMode::Full);
        assert_eq!(ts.quotient(), Quotient::None);
        assert!(ts.canonicalizer().is_none());
        assert_eq!(ts.represented_configs(), ix.total());
        for id in 0..ts.n_configs() {
            assert_eq!(ts.full_index_of(id), id as u64);
            assert_eq!(ts.id_of_full_index(id as u64), Some(id));
            assert_eq!(ts.orbit_size(id), 1);
        }
        assert_eq!(ts.id_of_full_index(ix.total()), None);
    }

    #[test]
    fn locally_central_respects_independence() {
        let (_, _, ts) = infection_system(Daemon::LocallyCentral);
        let g = builders::path(3);
        for id in 0..ts.n_configs() {
            for e in ts.edges(id).unwrap() {
                let nodes: Vec<NodeId> = (0..3)
                    .filter(|i| e.movers & (1 << i) != 0)
                    .map(NodeId::new)
                    .collect();
                for (i, &a) in nodes.iter().enumerate() {
                    for &b in &nodes[i + 1..] {
                        assert!(!g.are_adjacent(a, b), "dependent movers {:b}", e.movers);
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_enabled_is_reported() {
        // 22 always-enabled processes under the distributed daemon.
        struct AllOn {
            g: stab_graph::Graph,
        }
        impl Algorithm for AllOn {
            type State = bool;
            fn graph(&self) -> &stab_graph::Graph {
                &self.g
            }
            fn name(&self) -> String {
                "all-on".into()
            }
            fn state_space(&self, _v: NodeId) -> Vec<bool> {
                vec![false, true]
            }
            fn enabled_actions<V: crate::View<bool>>(&self, _v: &V) -> crate::ActionMask {
                crate::ActionMask::single(crate::ActionId::A1)
            }
            fn apply<V: crate::View<bool>>(
                &self,
                v: &V,
                _a: crate::ActionId,
            ) -> crate::Outcomes<bool> {
                crate::Outcomes::certain(!*v.me())
            }
        }
        let alg = AllOn {
            g: builders::ring(22),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 30).unwrap();
        let spec = Predicate::new("none", |_: &crate::Configuration<bool>| false);
        let err = TransitionSystem::explore(&alg, &ix, Daemon::Distributed, &spec).unwrap_err();
        assert!(matches!(err, CoreError::TooManyEnabled { enabled: 22, .. }));
    }
}
