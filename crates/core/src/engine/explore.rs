//! The shared flat-CSR transition engine.
//!
//! [`TransitionSystem::explore`] enumerates the full configuration space of
//! an algorithm under a daemon and materialises the labelled transition
//! graph that both the checker (`stab-checker`) and the Markov builder
//! (`stab-markov`) analyse. Compared to the seed implementation
//! (single-threaded, one `Vec<Edge>` per configuration, a full `decode`
//! plus per-successor `encode` on every step) it is:
//!
//! * **flat** — one [`Csr`] of [`Edge`]s plus bit-packed
//!   legitimate/initial sets ([`BitSet`]);
//! * **allocation-free per configuration** — the space is walked with an
//!   in-place mixed-radix [`ConfigCursor`], and all per-configuration
//!   scratch lives in reusable buffers;
//! * **delta-encoded** — a successor's id is
//!   `id + Σ_{v moved} (digit'(v) − digit(v)) · weight(v)`, touching only
//!   the activated processes instead of re-encoding all `n` digits with a
//!   binary search each;
//! * **outcome-shared** — each enabled process's outcome distribution is
//!   evaluated once per configuration and reused by every activation
//!   containing it (sound because all activated processes read the *pre*
//!   configuration), where the seed re-evaluated guards and statements per
//!   activation — an exponential factor under the distributed daemon;
//! * **parallel** — the id range is chunked across scoped threads and
//!   merged deterministically in chunk order.
//!
//! Every edge carries the uniform-randomized-scheduler probability of
//! Definition 6 (`1/#activations ×` the product of outcome probabilities),
//! so the Markov builder reads its `Q` rows straight off the same
//! structure the checker uses possibilistically.

use std::ops::Range;
use std::sync::OnceLock;

use stab_graph::NodeId;

use crate::algorithm::Algorithm;
use crate::scheduler::{Daemon, DISTRIBUTED_ENUM_CAP};
use crate::space::SpaceIndexer;
use crate::spec::Legitimacy;
use crate::{CoreError, LocalState};

use super::bitset::BitSet;
use super::csr::Csr;
use super::cursor::ConfigCursor;
use super::parallel;

/// One transition: activating the processes in `movers` (bit `i` =
/// process `Pi`) can lead to configuration `to`, and does so with
/// probability `prob` under the randomized scheduler (Definition 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Successor configuration id.
    pub to: u32,
    /// Bitmask of activated processes.
    pub movers: u64,
    /// `P(activation) × P(outcome)` under the uniform randomized daemon.
    pub prob: f64,
}

/// The fully explored transition system of `(algorithm, daemon)`: flat CSR
/// edges, per-configuration enabled masks, and bit-packed label sets.
#[derive(Debug)]
pub struct TransitionSystem {
    forward: Csr<Edge>,
    reverse: OnceLock<Csr<u32>>,
    /// Bitmask of enabled processes per configuration.
    enabled: Vec<u64>,
    legit: BitSet,
    initial: BitSet,
    deterministic: bool,
}

impl TransitionSystem {
    /// Explores the full configuration space of `alg` under `daemon`,
    /// labelling configurations with `spec`. `ix` must be the indexer of
    /// `alg`'s space.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::TooManyEnabled`] from distributed-daemon
    /// enumeration past [`DISTRIBUTED_ENUM_CAP`] simultaneously enabled
    /// processes.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than 64 processes (bitmask encoding)
    /// or the space has more than `u32::MAX` configurations.
    pub fn explore<A, L>(
        alg: &A,
        ix: &SpaceIndexer<A::State>,
        daemon: Daemon,
        spec: &L,
    ) -> Result<Self, CoreError>
    where
        A: Algorithm + Sync,
        A::State: Sync,
        L: Legitimacy<A::State> + Sync,
    {
        let n = alg.n();
        assert!(n <= 64, "bitmask encoding supports at most 64 processes");
        let total = ix.total();
        assert!(
            total <= u32::MAX as u64,
            "configuration ids must fit in u32"
        );
        // Per-node adjacency bitmasks for the locally-central independence
        // test.
        let graph = alg.graph();
        let adjacency: Vec<u64> = (0..n)
            .map(|v| node_mask(graph.neighbors(NodeId::new(v))))
            .collect();

        let chunks = parallel::map_chunks(total, |range| {
            explore_chunk(alg, ix, daemon, spec, &adjacency, range)
        })?;

        let mut counts: Vec<u32> = Vec::with_capacity(total as usize);
        let mut edges: Vec<Edge> = Vec::new();
        let mut enabled: Vec<u64> = Vec::with_capacity(total as usize);
        let mut legit = BitSet::new(total as usize);
        let mut initial = BitSet::new(total as usize);
        let mut deterministic = true;
        let mut base = 0usize;
        for chunk in chunks {
            counts.extend_from_slice(&chunk.counts);
            edges.extend_from_slice(&chunk.edges);
            enabled.extend_from_slice(&chunk.enabled);
            for (i, &l) in chunk.legit.iter().enumerate() {
                if l {
                    legit.insert(base + i);
                }
            }
            for (i, &l) in chunk.initial.iter().enumerate() {
                if l {
                    initial.insert(base + i);
                }
            }
            deterministic &= chunk.deterministic;
            base += chunk.counts.len();
        }
        Ok(TransitionSystem {
            forward: Csr::from_counts(&counts, edges),
            reverse: OnceLock::new(),
            enabled,
            legit,
            initial,
            deterministic,
        })
    }

    /// Assembles a transition system from raw parts. Exposed for the
    /// differential test suites, which build reference systems through the
    /// seed enumeration path and compare analyses; production code goes
    /// through [`TransitionSystem::explore`].
    #[doc(hidden)]
    pub fn from_raw_parts(
        forward: Csr<Edge>,
        enabled: Vec<u64>,
        legit: BitSet,
        initial: BitSet,
        deterministic: bool,
    ) -> Self {
        assert_eq!(forward.n_rows(), enabled.len());
        assert_eq!(forward.n_rows(), legit.len());
        assert_eq!(forward.n_rows(), initial.len());
        TransitionSystem {
            forward,
            reverse: OnceLock::new(),
            enabled,
            legit,
            initial,
            deterministic,
        }
    }

    /// Number of configurations.
    #[inline]
    pub fn n_configs(&self) -> u32 {
        self.forward.n_rows() as u32
    }

    /// Total number of stored edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.forward.n_entries()
    }

    /// Outgoing edges of configuration `id`, sorted by `(to, movers)`.
    #[inline]
    pub fn edges(&self, id: u32) -> &[Edge] {
        self.forward.row(id as usize)
    }

    /// The forward CSR itself.
    #[inline]
    pub fn forward(&self) -> &Csr<Edge> {
        &self.forward
    }

    /// The reverse CSR: row `j` lists the predecessors of `j` (with
    /// multiplicity, ascending). Built once on first use.
    pub fn reverse(&self) -> &Csr<u32> {
        self.reverse.get_or_init(|| self.forward.invert(|e| e.to))
    }

    /// Bitmask of processes enabled in configuration `id`.
    #[inline]
    pub fn enabled_mask(&self, id: u32) -> u64 {
        self.enabled[id as usize]
    }

    /// Whether configuration `id` is terminal (no enabled process).
    #[inline]
    pub fn is_terminal(&self, id: u32) -> bool {
        self.enabled[id as usize] == 0
    }

    /// Whether configuration `id` is legitimate.
    #[inline]
    pub fn is_legit(&self, id: u32) -> bool {
        self.legit.get(id as usize)
    }

    /// Whether configuration `id` is an admissible initial configuration.
    #[inline]
    pub fn is_initial(&self, id: u32) -> bool {
        self.initial.get(id as usize)
    }

    /// The legitimate set.
    #[inline]
    pub fn legit(&self) -> &BitSet {
        &self.legit
    }

    /// The initial set.
    #[inline]
    pub fn initial(&self) -> &BitSet {
        &self.initial
    }

    /// Number of legitimate configurations.
    pub fn legit_count(&self) -> u64 {
        self.legit.count_ones()
    }

    /// Whether the algorithm was deterministic on every configuration
    /// (mutually exclusive guards and singleton outcomes).
    #[inline]
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// The forward-reachable closure of `seeds`.
    pub fn forward_closure(&self, seeds: &BitSet) -> BitSet {
        let mut seen = seeds.clone();
        let mut stack: Vec<u32> = seeds.ones().map(|i| i as u32).collect();
        while let Some(id) = stack.pop() {
            for e in self.edges(id) {
                if !seen.get(e.to as usize) {
                    seen.insert(e.to as usize);
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// The backward-reachable closure of `seeds` (configurations with some
    /// path *into* `seeds`), over the precomputed reverse CSR.
    pub fn backward_closure(&self, seeds: &BitSet) -> BitSet {
        let reverse = self.reverse();
        let mut seen = seeds.clone();
        let mut stack: Vec<u32> = seeds.ones().map(|i| i as u32).collect();
        while let Some(id) = stack.pop() {
            for &p in reverse.row(id as usize) {
                if !seen.get(p as usize) {
                    seen.insert(p as usize);
                    stack.push(p);
                }
            }
        }
        seen
    }
}

/// Bitmask of a node list.
pub fn node_mask(nodes: &[NodeId]) -> u64 {
    nodes.iter().fold(0u64, |m, v| m | (1u64 << v.index()))
}

/// Per-chunk exploration output, merged in chunk order.
struct Chunk {
    counts: Vec<u32>,
    edges: Vec<Edge>,
    enabled: Vec<u64>,
    legit: Vec<bool>,
    initial: Vec<bool>,
    deterministic: bool,
}

/// Reusable per-thread scratch: nothing here is allocated per
/// configuration once the buffers have grown to their working sizes.
struct Scratch {
    /// Enabled nodes of the current configuration, ascending.
    enabled_nodes: Vec<NodeId>,
    /// Per enabled node (same order), its span in `deltas`.
    delta_spans: Vec<(u32, u32)>,
    /// Flat `(id delta, probability)` outcome entries.
    deltas: Vec<(i64, f64)>,
    /// Activation masks over *global* node bits.
    activations: Vec<u64>,
    /// Successor accumulation (double-buffered product construction).
    branches: Vec<(i64, f64)>,
    branches_next: Vec<(i64, f64)>,
    /// The assembled row before sorting.
    row: Vec<Edge>,
}

fn explore_chunk<A, L>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: Daemon,
    spec: &L,
    adjacency: &[u64],
    range: Range<u64>,
) -> Result<Chunk, CoreError>
where
    A: Algorithm,
    A::State: LocalState,
    L: Legitimacy<A::State>,
{
    let size = (range.end - range.start) as usize;
    let mut chunk = Chunk {
        counts: Vec::with_capacity(size),
        edges: Vec::new(),
        enabled: Vec::with_capacity(size),
        legit: Vec::with_capacity(size),
        initial: Vec::with_capacity(size),
        deterministic: true,
    };
    if size == 0 {
        return Ok(chunk);
    }
    let mut scratch = Scratch {
        enabled_nodes: Vec::new(),
        delta_spans: Vec::new(),
        deltas: Vec::new(),
        activations: Vec::new(),
        branches: Vec::new(),
        branches_next: Vec::new(),
        row: Vec::new(),
    };
    let mut cursor = ConfigCursor::new(ix, range.start);
    for id in range.clone() {
        explore_one(
            alg,
            ix,
            daemon,
            spec,
            adjacency,
            &cursor,
            &mut scratch,
            &mut chunk,
        )?;
        if id + 1 < range.end {
            cursor.advance();
        }
    }
    Ok(chunk)
}

#[allow(clippy::too_many_arguments)]
fn explore_one<A, L>(
    alg: &A,
    ix: &SpaceIndexer<A::State>,
    daemon: Daemon,
    spec: &L,
    adjacency: &[u64],
    cursor: &ConfigCursor<'_, A::State>,
    s: &mut Scratch,
    chunk: &mut Chunk,
) -> Result<(), CoreError>
where
    A: Algorithm,
    L: Legitimacy<A::State>,
{
    let cfg = cursor.config();
    let id = cursor.id() as i64;
    let total = ix.total();
    chunk.legit.push(spec.is_legitimate(cfg));
    chunk.initial.push(alg.is_initial(cfg));

    // One pass over the processes: guards, determinism audit, and the
    // delta-encoded outcome distribution of every enabled process. All
    // activations read the *pre* configuration, so one evaluation per
    // process serves every activation below.
    s.enabled_nodes.clear();
    s.delta_spans.clear();
    s.deltas.clear();
    let mut enabled_mask = 0u64;
    for v in alg.graph().nodes() {
        let view = alg.view(cfg, v);
        let mask = alg.enabled_actions(&view);
        if mask.len() > 1 {
            chunk.deterministic = false;
        }
        let Some(action) = mask.selected() else {
            continue;
        };
        enabled_mask |= 1u64 << v.index();
        s.enabled_nodes.push(v);
        let outcomes = alg.apply(&view, action);
        if !outcomes.is_certain() {
            chunk.deterministic = false;
        }
        let weight = ix.weight(v) as i64;
        let digit = cursor.digit(v) as i64;
        let start = s.deltas.len() as u32;
        for (p, state) in outcomes.entries() {
            let delta = (ix.digit_of(v, state) as i64 - digit) * weight;
            s.deltas.push((delta, *p));
        }
        s.delta_spans.push((start, s.deltas.len() as u32));
    }
    chunk.enabled.push(enabled_mask);

    let k = s.enabled_nodes.len();
    if k == 0 {
        chunk.counts.push(0);
        return Ok(());
    }
    // Whether every enabled process is deterministic here (singleton
    // outcome): unlocks the O(1)-per-activation Gray-code subset walk.
    let all_certain = s.delta_spans.iter().all(|&(lo, hi)| hi - lo == 1);

    s.row.clear();
    match daemon {
        Daemon::Central => {
            // Single-mover activations: outcome states are pairwise
            // distinct, so successors need no merging.
            let act_prob = 1.0 / k as f64;
            for (i, &v) in s.enabled_nodes.iter().enumerate() {
                let movers = 1u64 << v.index();
                let (lo, hi) = s.delta_spans[i];
                for &(delta, p) in &s.deltas[lo as usize..hi as usize] {
                    push_edge(&mut s.row, total, id + delta, movers, act_prob * p);
                }
            }
        }
        Daemon::Synchronous => {
            let movers = enabled_mask;
            product_branches(s, id, movers);
            for bi in 0..s.branches.len() {
                let (to, p) = s.branches[bi];
                push_edge(&mut s.row, total, to, movers, p);
            }
        }
        Daemon::Distributed | Daemon::LocallyCentral => {
            if k > DISTRIBUTED_ENUM_CAP {
                return Err(CoreError::TooManyEnabled {
                    enabled: k,
                    cap: DISTRIBUTED_ENUM_CAP,
                });
            }
            let independent_only = daemon == Daemon::LocallyCentral;
            if all_certain {
                // Gray-code subset walk: toggling one process in or out
                // updates the successor id, the mover mask, and the
                // locally-central conflict count in O(1) per subset.
                let mut movers = 0u64;
                let mut delta = 0i64;
                let mut conflicts = 0i64;
                for g in 1u64..(1u64 << k) {
                    let i = g.trailing_zeros() as usize;
                    let v = s.enabled_nodes[i];
                    let bit = 1u64 << v.index();
                    let d = s.deltas[s.delta_spans[i].0 as usize].0;
                    if movers & bit == 0 {
                        conflicts += (adjacency[v.index()] & movers).count_ones() as i64;
                        movers |= bit;
                        delta += d;
                    } else {
                        movers &= !bit;
                        delta -= d;
                        conflicts -= (adjacency[v.index()] & movers).count_ones() as i64;
                    }
                    if independent_only && conflicts > 0 {
                        continue;
                    }
                    push_edge(&mut s.row, total, id + delta, movers, 1.0);
                }
                // The uniform activation probability is only known once
                // the independent subsets are counted.
                let act_prob = 1.0 / s.row.len() as f64;
                for e in &mut s.row {
                    e.prob = act_prob;
                }
            } else {
                enumerate_activations(daemon, &s.enabled_nodes, adjacency, &mut s.activations)?;
                let act_prob = 1.0 / s.activations.len() as f64;
                for ai in 0..s.activations.len() {
                    let movers = s.activations[ai];
                    product_branches(s, id, movers);
                    for bi in 0..s.branches.len() {
                        let (to, p) = s.branches[bi];
                        push_edge(&mut s.row, total, to, movers, act_prob * p);
                    }
                }
            }
        }
    }
    s.row.sort_unstable_by_key(|e| (e.to, e.movers));
    chunk.counts.push(s.row.len() as u32);
    chunk.edges.extend_from_slice(&s.row);
    Ok(())
}

/// Appends one delta-encoded edge.
#[inline]
fn push_edge(row: &mut Vec<Edge>, total: u64, to: i64, movers: u64, prob: f64) {
    debug_assert!(to >= 0 && (to as u64) < total, "delta-encoded id in range");
    let _ = total;
    row.push(Edge {
        to: to as u32,
        movers,
        prob,
    });
}

/// Computes the successor distribution of one activation into
/// `s.branches`: the product of the movers' outcome deltas, merged by
/// successor id whenever a probabilistic expansion could collide.
fn product_branches(s: &mut Scratch, id: i64, movers: u64) {
    s.branches.clear();
    s.branches.push((id, 1.0));
    for (i, &v) in s.enabled_nodes.iter().enumerate() {
        if movers & (1u64 << v.index()) == 0 {
            continue;
        }
        let (lo, hi) = s.delta_spans[i];
        if hi - lo == 1 {
            // Certain outcome: shift every branch, no collisions possible.
            let (delta, _) = s.deltas[lo as usize];
            for b in &mut s.branches {
                b.0 += delta;
            }
            continue;
        }
        s.branches_next.clear();
        for &(base, p) in &s.branches {
            for &(delta, q) in &s.deltas[lo as usize..hi as usize] {
                s.branches_next.push((base + delta, p * q));
            }
        }
        std::mem::swap(&mut s.branches, &mut s.branches_next);
        merge_sorted_by_id(&mut s.branches);
    }
}

/// Sorts branches by successor id and merges duplicates, summing
/// probabilities (ascending-id summation order, deterministic).
fn merge_sorted_by_id(branches: &mut Vec<(i64, f64)>) {
    if branches.len() <= 1 {
        return;
    }
    branches.sort_unstable_by_key(|&(id, _)| id);
    let mut write = 0;
    for read in 1..branches.len() {
        if branches[read].0 == branches[write].0 {
            branches[write].1 += branches[read].1;
        } else {
            write += 1;
            branches[write] = branches[read];
        }
    }
    branches.truncate(write + 1);
}

/// Enumerates the daemon's activations over `enabled` as global node
/// bitmasks, into `out` (cleared first). Matches [`Daemon::activations`]
/// up to representation.
fn enumerate_activations(
    daemon: Daemon,
    enabled: &[NodeId],
    adjacency: &[u64],
    out: &mut Vec<u64>,
) -> Result<(), CoreError> {
    out.clear();
    let k = enabled.len();
    if k == 0 {
        return Ok(());
    }
    match daemon {
        Daemon::Central => {
            out.extend(enabled.iter().map(|v| 1u64 << v.index()));
        }
        Daemon::Synchronous => {
            out.push(node_mask(enabled));
        }
        Daemon::Distributed | Daemon::LocallyCentral => {
            if k > DISTRIBUTED_ENUM_CAP {
                return Err(CoreError::TooManyEnabled {
                    enabled: k,
                    cap: DISTRIBUTED_ENUM_CAP,
                });
            }
            let independent_only = daemon == Daemon::LocallyCentral;
            'subset: for local in 1u64..(1u64 << k) {
                let mut movers = 0u64;
                let mut rest = local;
                while rest != 0 {
                    let i = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let v = enabled[i];
                    if independent_only && adjacency[v.index()] & movers != 0 {
                        continue 'subset;
                    }
                    movers |= 1u64 << v.index();
                }
                // The incremental adjacency test above only checks each new
                // member against *earlier* members, which is exactly
                // pairwise independence.
                out.push(movers);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::test_support::Infection;
    use crate::{semantics, Predicate};
    use stab_graph::builders;

    fn infection_system(daemon: Daemon) -> (Infection, SpaceIndexer<u8>, TransitionSystem) {
        let alg = Infection {
            g: builders::path(3),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let spec = Predicate::new("all-ones", |c: &crate::Configuration<u8>| {
            c.states().iter().all(|&s| s == 1)
        });
        let ts = TransitionSystem::explore(&alg, &ix, daemon, &spec).unwrap();
        (alg, ix, ts)
    }

    #[test]
    fn engine_matches_reference_semantics_on_infection() {
        for daemon in Daemon::ALL {
            let (alg, ix, ts) = infection_system(daemon);
            assert_eq!(ts.n_configs() as u64, ix.total());
            for idv in 0..ix.total() {
                let cfg = ix.decode(idv);
                // Reference: the seed's per-configuration enumeration.
                let mut expect: Vec<(u32, u64)> = Vec::new();
                for (act, dist) in semantics::all_steps(&alg, daemon, &cfg).unwrap() {
                    let movers = node_mask(act.nodes());
                    for (_, next) in dist {
                        expect.push((ix.encode(&next) as u32, movers));
                    }
                }
                expect.sort_unstable();
                expect.dedup();
                let got: Vec<(u32, u64)> = ts
                    .edges(idv as u32)
                    .iter()
                    .map(|e| (e.to, e.movers))
                    .collect();
                assert_eq!(got, expect, "config {cfg:?} under {daemon}");
                assert_eq!(
                    ts.enabled_mask(idv as u32),
                    node_mask(&alg.enabled_nodes(&cfg)),
                );
            }
        }
    }

    #[test]
    fn edge_probabilities_sum_to_one_per_nonterminal_config() {
        for daemon in Daemon::ALL {
            let (_, _, ts) = infection_system(daemon);
            for id in 0..ts.n_configs() {
                if ts.is_terminal(id) {
                    assert!(ts.edges(id).is_empty());
                    continue;
                }
                let mass: f64 = ts.edges(id).iter().map(|e| e.prob).sum();
                assert!(
                    (mass - 1.0).abs() < 1e-9,
                    "config {id} mass {mass} under {daemon}"
                );
            }
        }
    }

    #[test]
    fn closures_and_labels_are_consistent() {
        let (_, ix, ts) = infection_system(Daemon::Central);
        // Legitimate: exactly the all-ones configuration.
        assert_eq!(ts.legit_count(), 1);
        assert!(ts.deterministic());
        let legit_id = ix.encode(&crate::Configuration::from_vec(vec![1, 1, 1]));
        assert!(ts.is_legit(legit_id as u32));
        // Everything is initial (I = C).
        assert!(ts.initial().is_full());
        // Backward closure of L: all configurations with some infected
        // process can reach all-ones; all-zero cannot.
        let can = ts.backward_closure(ts.legit());
        let dead = ix.encode(&crate::Configuration::from_vec(vec![0, 0, 0]));
        assert!(!can.get(dead as usize));
        assert_eq!(can.count_ones(), ix.total() - 1);
        // Forward closure from the all-zero configuration is itself.
        let mut seed = BitSet::new(ts.n_configs() as usize);
        seed.insert(dead as usize);
        assert_eq!(ts.forward_closure(&seed).count_ones(), 1);
    }

    #[test]
    fn locally_central_respects_independence() {
        let (_, _, ts) = infection_system(Daemon::LocallyCentral);
        let g = builders::path(3);
        for id in 0..ts.n_configs() {
            for e in ts.edges(id) {
                let nodes: Vec<NodeId> = (0..3)
                    .filter(|i| e.movers & (1 << i) != 0)
                    .map(NodeId::new)
                    .collect();
                for (i, &a) in nodes.iter().enumerate() {
                    for &b in &nodes[i + 1..] {
                        assert!(!g.are_adjacent(a, b), "dependent movers {:b}", e.movers);
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_enabled_is_reported() {
        // 25 always-enabled processes under the distributed daemon.
        let alg = Infection {
            g: builders::path(2),
        };
        let _ = alg; // the infection never has >20 enabled; craft directly:
        struct AllOn {
            g: stab_graph::Graph,
        }
        impl Algorithm for AllOn {
            type State = bool;
            fn graph(&self) -> &stab_graph::Graph {
                &self.g
            }
            fn name(&self) -> String {
                "all-on".into()
            }
            fn state_space(&self, _v: NodeId) -> Vec<bool> {
                vec![false, true]
            }
            fn enabled_actions<V: crate::View<bool>>(&self, _v: &V) -> crate::ActionMask {
                crate::ActionMask::single(crate::ActionId::A1)
            }
            fn apply<V: crate::View<bool>>(
                &self,
                v: &V,
                _a: crate::ActionId,
            ) -> crate::Outcomes<bool> {
                crate::Outcomes::certain(!*v.me())
            }
        }
        let alg = AllOn {
            g: builders::ring(22),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 30).unwrap();
        let spec = Predicate::new("none", |_: &crate::Configuration<bool>| false);
        let err = TransitionSystem::explore(&alg, &ix, Daemon::Distributed, &spec).unwrap_err();
        assert!(matches!(err, CoreError::TooManyEnabled { enabled: 22, .. }));
    }
}
