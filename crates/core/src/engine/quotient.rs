//! Symmetry-group quotienting: orbit canonicalization of mixed-radix
//! configuration indices under a permutation group of the communication
//! graph.
//!
//! The paper's Definition 6 lumping argument is valid for *any*
//! automorphism group of the graph, not just ring rotations: the group
//! partitions the configuration space into orbits, and every analysis —
//! possibilistic (closure, reachability, fair cycles) and probabilistic
//! (the Definition 6 Markov chain) — can run on one representative per
//! orbit whenever the algorithm and the legitimacy predicate respect the
//! symmetry (checked per run by the engine's equivariance gate).
//!
//! [`GroupCanonicalizer`] picks the representative: the orbit member whose
//! digit sequence, read in canonical position order, is
//! **lexicographically least**. Four group strategies are supported, each
//! with a canonicalization specialised to its structure:
//!
//! | group                          | canonicalization            | cost   |
//! |--------------------------------|-----------------------------|--------|
//! | ring rotations `C_N`           | Booth's least rotation      | O(N)   |
//! | ring dihedral `D_N`            | Booth, both directions      | O(N)   |
//! | leaf permutations `∏ Sym(cᵢ)`  | sort digits within classes  | O(N log N) |
//! | explicit permutation set       | least image over the group  | O(N·\|G\|) |
//!
//! Canonicalization works directly on mixed-radix indices (no
//! configuration allocation), so it is cheap enough to run per successor
//! edge during exploration. [`least_rotation`] (Booth's algorithm) is
//! exported so the property-test battery can pin it against the naive
//! N-rotation sweep.

use std::collections::HashSet;

use stab_graph::trees::leaf_classes;
use stab_graph::{builders, Graph, NodeId, RingRotations};

use crate::space::SpaceIndexer;
use crate::{CoreError, LocalState};

/// Booth's algorithm: the index `k` (in `0..seq.len()`) such that the
/// rotation `seq[(j + k) mod n]` is lexicographically least among all `n`
/// rotations, in O(N) time and O(N) scratch.
///
/// ```
/// use stab_core::engine::quotient::least_rotation;
/// let k = least_rotation(&[2, 1, 0, 1]);
/// assert_eq!(k, 2); // ⟨0, 1, 2, 1⟩ is the least rotation
/// assert_eq!(least_rotation(&[0, 0, 0]), 0);
/// ```
pub fn least_rotation(seq: &[u32]) -> usize {
    let mut seq2 = seq.to_vec();
    seq2.extend_from_slice(seq);
    least_rotation_doubled(&seq2, &mut Vec::new())
}

/// Booth over a pre-doubled sequence (`seq2 = seq ++ seq`, length `2N`)
/// with caller-provided scratch for the failure function — the engine's
/// hot path: allocation-free once grown, and no modulo per access.
fn least_rotation_doubled(seq2: &[u32], f: &mut Vec<i64>) -> usize {
    let nn = seq2.len();
    let n = nn / 2;
    if n <= 1 {
        return 0;
    }
    f.clear();
    f.resize(nn, -1);
    let mut k: usize = 0;
    for j in 1..nn {
        let sj = seq2[j];
        let mut i = f[j - k - 1];
        while i != -1 && sj != seq2[k + i as usize + 1] {
            if sj < seq2[k + i as usize + 1] {
                k = j - i as usize - 1;
            }
            i = f[i as usize];
        }
        if i == -1 && sj != seq2[k] {
            if sj < seq2[k] {
                k = j;
            }
            f[j - k] = -1;
        } else {
            f[j - k] = i + 1;
        }
    }
    k % n
}

/// Reusable scratch for [`GroupCanonicalizer`] calls: nothing is allocated
/// per call once the buffers have grown to the working size.
#[derive(Debug, Default, Clone)]
pub struct CanonScratch {
    /// Digits of the argument in position order.
    digits: Vec<u32>,
    /// Second sequence (reversal, permutation images).
    alt: Vec<u32>,
    /// Best image so far (explicit strategy) / sort area (leaf classes).
    best: Vec<u32>,
    /// Orbit enumeration area (explicit strategy).
    orbit_ids: Vec<u64>,
    /// Booth failure-function area.
    booth: Vec<i64>,
}

/// The group structure a [`GroupCanonicalizer`] exploits.
#[derive(Debug, Clone)]
pub(super) enum Strategy {
    /// Cyclic rotations of a ring (positions in cycle order).
    Cycle,
    /// Rotations and reflections of a ring (positions in cycle order).
    Dihedral,
    /// Products of symmetric groups over interchangeable-leaf classes
    /// (positions = node indices; each entry lists class positions
    /// ascending).
    LeafClasses(Vec<Vec<usize>>),
    /// An explicit, composition-closed permutation list over positions
    /// (positions = node indices; `perm[v]` = image position of `v`).
    Explicit(Vec<Vec<u32>>),
}

/// Maps mixed-radix configuration indices to the index of the
/// lexicographically-least member of their orbit under a permutation group
/// of the nodes.
///
/// Built by [`GroupCanonicalizer::ring_rotation`],
/// [`GroupCanonicalizer::ring_dihedral`],
/// [`GroupCanonicalizer::leaf_permutation`] (topology-derived groups) or
/// [`GroupCanonicalizer::from_permutations`] (an explicit generator set,
/// e.g. `stab_checker::Automorphism::all`). Construction validates what is
/// checkable structurally — group applicability to the topology and equal
/// state alphabets along every node orbit; behavioural soundness
/// (equivariance of the algorithm, invariance of the specification) is
/// checked per exploration by the engine's equivariance gate.
#[derive(Debug, Clone)]
pub struct GroupCanonicalizer {
    /// Mixed-radix weight of the node at position `j`.
    pos_weights: Vec<u64>,
    /// Alphabet size of the node at position `j`.
    pos_radix: Vec<u64>,
    /// Node-indexed weights (for applying node permutations).
    node_weights: Vec<u64>,
    /// Node-indexed radixes.
    node_radix: Vec<u64>,
    strategy: Strategy,
    /// Order of the quotient group.
    group_order: u64,
    /// Node-space generator permutations (`perm[v]` = image node of `v`),
    /// consumed by the per-run equivariance gate.
    generators: Vec<Vec<u32>>,
}

/// Validates that `a` and `b` have identical state alphabets.
fn require_equal_alphabets<S: LocalState>(
    ix: &SpaceIndexer<S>,
    a: NodeId,
    b: NodeId,
) -> Result<(), CoreError> {
    if ix.states_of(a) != ix.states_of(b) {
        return Err(CoreError::QuotientUnsupported {
            reason: format!(
                "state alphabets differ between symmetric nodes (node {a} has {}, {b} has {})",
                ix.states_of(a).len(),
                ix.states_of(b).len()
            ),
        });
    }
    Ok(())
}

impl GroupCanonicalizer {
    /// The cyclic rotation group `C_N` of a uniform ring (the PR 2
    /// quotient, now Booth-accelerated).
    ///
    /// # Errors
    ///
    /// [`CoreError::QuotientUnsupported`] if `g` is not a ring (including
    /// all graphs with fewer than 3 nodes) or its nodes have unequal state
    /// alphabets.
    pub fn ring_rotation<S: LocalState>(
        g: &Graph,
        ix: &SpaceIndexer<S>,
    ) -> Result<Self, CoreError> {
        Self::ring(g, ix, false)
    }

    /// The full dihedral group `D_N` (rotations and reflections) of a
    /// uniform ring: up to `2N`-fold state reduction, at the same O(N)
    /// per-canonicalization cost as the rotation quotient.
    ///
    /// # Errors
    ///
    /// As [`GroupCanonicalizer::ring_rotation`].
    pub fn ring_dihedral<S: LocalState>(
        g: &Graph,
        ix: &SpaceIndexer<S>,
    ) -> Result<Self, CoreError> {
        Self::ring(g, ix, true)
    }

    fn ring<S: LocalState>(
        g: &Graph,
        ix: &SpaceIndexer<S>,
        dihedral: bool,
    ) -> Result<Self, CoreError> {
        let rot = RingRotations::of(g).map_err(|_| CoreError::QuotientUnsupported {
            reason: format!("the {}-node topology is not a ring", g.n()),
        })?;
        let order = rot.order();
        for &v in &order[1..] {
            require_equal_alphabets(ix, order[0], v)?;
        }
        let n = order.len();
        let radix = ix.states_of(order[0]).len() as u64;
        let mut generators = vec![node_perm(&rot.permutation(1))];
        if dihedral {
            generators.push(node_perm(&rot.reflection()));
        }
        Ok(GroupCanonicalizer {
            pos_weights: order.iter().map(|&v| ix.weight(v)).collect(),
            pos_radix: vec![radix; n],
            node_weights: (0..n).map(|v| ix.weight(NodeId::new(v))).collect(),
            node_radix: (0..n).map(|v| ix.radix(NodeId::new(v)) as u64).collect(),
            strategy: if dihedral {
                Strategy::Dihedral
            } else {
                Strategy::Cycle
            },
            group_order: if dihedral { 2 * n as u64 } else { n as u64 },
            generators,
        })
    }

    /// The leaf-permutation group `∏_c Sym(c)` over the
    /// interchangeable-leaf classes of a star or tree
    /// ([`stab_graph::trees::leaf_classes`]): up to `∏ |c|!`-fold reduction
    /// without ever materialising the (factorially large) group.
    ///
    /// # Errors
    ///
    /// [`CoreError::QuotientUnsupported`] if `g` has no class of at least
    /// two same-parent leaves, if class alphabets are unequal, or if the
    /// group order overflows `u64`.
    pub fn leaf_permutation<S: LocalState>(
        g: &Graph,
        ix: &SpaceIndexer<S>,
    ) -> Result<Self, CoreError> {
        let classes = leaf_classes(g);
        if classes.is_empty() {
            return Err(CoreError::QuotientUnsupported {
                reason: format!(
                    "the {}-node topology has no class of two or more same-parent leaves",
                    g.n()
                ),
            });
        }
        let mut group_order: u64 = 1;
        let mut generators = Vec::new();
        for class in &classes {
            for &v in &class[1..] {
                require_equal_alphabets(ix, class[0], v)?;
            }
            for pair in class.windows(2) {
                generators.push(transposition(g.n(), pair[0], pair[1]));
            }
            group_order = (1..=class.len() as u64)
                .try_fold(group_order, |acc, k| acc.checked_mul(k))
                .ok_or_else(|| CoreError::QuotientUnsupported {
                    reason: "leaf-permutation group order overflows u64".into(),
                })?;
        }
        let n = g.n();
        Ok(GroupCanonicalizer {
            pos_weights: (0..n).map(|v| ix.weight(NodeId::new(v))).collect(),
            pos_radix: (0..n).map(|v| ix.radix(NodeId::new(v)) as u64).collect(),
            node_weights: (0..n).map(|v| ix.weight(NodeId::new(v))).collect(),
            node_radix: (0..n).map(|v| ix.radix(NodeId::new(v)) as u64).collect(),
            strategy: Strategy::LeafClasses(
                classes
                    .iter()
                    .map(|c| c.iter().map(|v| v.index()).collect())
                    .collect(),
            ),
            group_order,
            generators,
        })
    }

    /// The topology-derived full-automorphism quotient: the dihedral group
    /// on rings (`Aut(ring) = D_N` exactly), the reflection group on
    /// builder-labelled grids (`Aut(grid) = C₂ × C₂`, or `D₄` when
    /// square), and the leaf-permutation subgroup on stars and trees (for
    /// stars the full `Sym(leaves) = Aut`, for trees the sound subgroup
    /// generated by same-parent leaf swaps).
    ///
    /// # Errors
    ///
    /// [`CoreError::QuotientUnsupported`] if the topology is neither a
    /// ring, a grid with a nontrivial reflection, nor a graph with
    /// interchangeable leaves, or alphabets break the symmetry.
    pub fn automorphism<S: LocalState>(g: &Graph, ix: &SpaceIndexer<S>) -> Result<Self, CoreError> {
        if g.is_ring() {
            return Self::ring_dihedral(g, ix);
        }
        // Grids before leaf classes: a 1 × n grid is a path, whose leaves
        // have distinct parents, so only the reflection group applies.
        if let Some((rows, cols)) = builders::grid_dims(g) {
            if rows * cols > 1 {
                return Self::grid_reflections(ix, rows, cols);
            }
        }
        Self::leaf_permutation(g, ix).map_err(|e| CoreError::QuotientUnsupported {
            reason: format!(
                "no topology-derived automorphism group for the {}-node graph \
                 (not a ring or grid; {e})",
                g.n()
            ),
        })
    }

    /// The reflection group of a row-major `rows × cols` grid
    /// ([`stab_graph::builders::grid`]): the row flip, the column flip,
    /// and — when the grid is square — the transpose, closed under
    /// composition (order 4 for proper rectangles, 8 for squares, 2 for
    /// degenerate `1 × n` paths).
    ///
    /// # Errors
    ///
    /// [`CoreError::QuotientUnsupported`] if the dimensions do not match
    /// the space, the grid is `1 × 1` (no nontrivial reflection), or
    /// reflected nodes have unequal state alphabets.
    pub fn grid_reflections<S: LocalState>(
        ix: &SpaceIndexer<S>,
        rows: usize,
        cols: usize,
    ) -> Result<Self, CoreError> {
        let n = rows * cols;
        if n != ix.n() {
            return Err(CoreError::QuotientUnsupported {
                reason: format!(
                    "{rows}×{cols} grid dimensions do not match the {}-node space",
                    ix.n()
                ),
            });
        }
        if n <= 1 {
            return Err(CoreError::QuotientUnsupported {
                reason: "a 1×1 grid has no nontrivial reflection".into(),
            });
        }
        let at = |r: usize, c: usize| NodeId::new(r * cols + c);
        let mut perms: Vec<Vec<NodeId>> = Vec::new();
        if rows > 1 {
            perms.push((0..n).map(|v| at(rows - 1 - v / cols, v % cols)).collect());
        }
        if cols > 1 {
            perms.push((0..n).map(|v| at(v / cols, cols - 1 - v % cols)).collect());
        }
        if rows == cols && rows > 1 {
            perms.push((0..n).map(|v| at(v % cols, v / cols)).collect());
        }
        Self::from_permutations(ix, &perms)
    }

    /// An explicit permutation set (e.g. from
    /// `stab_checker::Automorphism::all` or a hand-picked generator list),
    /// closed under composition internally. Canonicalization costs
    /// O(N·|G|) per call, so prefer the structured constructors when the
    /// group is a known ring or leaf symmetry.
    ///
    /// # Errors
    ///
    /// [`CoreError::QuotientUnsupported`] if some entry is not a
    /// permutation of the space's nodes, maps between nodes with unequal
    /// alphabets, or the composition closure exceeds
    /// [`GroupCanonicalizer::EXPLICIT_GROUP_CAP`] elements.
    pub fn from_permutations<S: LocalState>(
        ix: &SpaceIndexer<S>,
        perms: &[Vec<NodeId>],
    ) -> Result<Self, CoreError> {
        let n = ix.n();
        let mut generators: Vec<Vec<u32>> = Vec::new();
        for perm in perms {
            if perm.len() != n {
                return Err(CoreError::QuotientUnsupported {
                    reason: format!(
                        "permutation over {} nodes does not match the {n}-node space",
                        perm.len()
                    ),
                });
            }
            let mut seen = vec![false; n];
            for (v, &img) in perm.iter().enumerate() {
                if img.index() >= n || seen[img.index()] {
                    return Err(CoreError::QuotientUnsupported {
                        reason: "group entry is not a permutation of the nodes".into(),
                    });
                }
                seen[img.index()] = true;
                require_equal_alphabets(ix, NodeId::new(v), img)?;
            }
            generators.push(node_perm(perm));
        }
        let group = close_under_composition(n, &generators)?;
        Ok(GroupCanonicalizer {
            pos_weights: (0..n).map(|v| ix.weight(NodeId::new(v))).collect(),
            pos_radix: (0..n).map(|v| ix.radix(NodeId::new(v)) as u64).collect(),
            node_weights: (0..n).map(|v| ix.weight(NodeId::new(v))).collect(),
            node_radix: (0..n).map(|v| ix.radix(NodeId::new(v)) as u64).collect(),
            group_order: group.len() as u64,
            strategy: Strategy::Explicit(group),
            generators,
        })
    }

    /// Closure cap for [`GroupCanonicalizer::from_permutations`].
    pub const EXPLICIT_GROUP_CAP: usize = 1 << 16;

    /// Number of processes.
    #[inline]
    pub fn n(&self) -> usize {
        self.pos_weights.len()
    }

    /// Order of the quotient group (`N`, `2N`, `∏|c|!`, or the explicit
    /// group size). Every orbit size divides it.
    #[inline]
    pub fn group_order(&self) -> u64 {
        self.group_order
    }

    /// The node-space generator permutations of the group
    /// (`perm[v]` = image node of `v`), as consumed by the per-run
    /// equivariance gate.
    pub fn generators(&self) -> &[Vec<u32>] {
        &self.generators
    }

    /// Borrowed view of every field — the checkpoint snapshot surface
    /// (the canonicalizer is pure data, so a final frame can embed it and
    /// [`resume`](super::TransitionSystem::resume) can reconstruct
    /// quotient systems without re-deriving the group).
    #[allow(clippy::type_complexity)]
    pub(super) fn snapshot_parts(
        &self,
    ) -> (&[u64], &[u64], &[u64], &[u64], &Strategy, u64, &[Vec<u32>]) {
        (
            &self.pos_weights,
            &self.pos_radix,
            &self.node_weights,
            &self.node_radix,
            &self.strategy,
            self.group_order,
            &self.generators,
        )
    }

    /// Reassembles a canonicalizer from checkpointed parts (inverse of
    /// [`GroupCanonicalizer::snapshot_parts`]).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn from_snapshot_parts(
        pos_weights: Vec<u64>,
        pos_radix: Vec<u64>,
        node_weights: Vec<u64>,
        node_radix: Vec<u64>,
        strategy: Strategy,
        group_order: u64,
        generators: Vec<Vec<u32>>,
    ) -> Self {
        GroupCanonicalizer {
            pos_weights,
            pos_radix,
            node_weights,
            node_radix,
            strategy,
            group_order,
            generators,
        }
    }

    /// Applies a node permutation to a configuration index:
    /// the resulting configuration holds `x`'s state of node `v` at node
    /// `perm[v]`.
    pub fn apply_perm(&self, full: u64, perm: &[u32]) -> u64 {
        debug_assert_eq!(perm.len(), self.n());
        let mut out = 0u64;
        for (v, &img) in perm.iter().enumerate() {
            let digit = (full / self.node_weights[v]) % self.node_radix[v];
            out += digit * self.node_weights[img as usize];
        }
        out
    }

    /// Writes the digits of `full` in position order into `buf`.
    fn position_digits(&self, full: u64, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(
            self.pos_weights
                .iter()
                .zip(&self.pos_radix)
                // lint: cast-ok(a digit is strictly below its radix, which fits u32)
                .map(|(&w, &r)| ((full / w) % r) as u32),
        );
    }

    /// Writes the digits of `full` in position order into `buf`,
    /// **doubled** (`d ++ d`, length `2N`) so rotation reads and Booth
    /// need no modulo — the ring strategies' hot-path layout.
    fn ring_digits_doubled(&self, full: u64, buf: &mut Vec<u32>) {
        self.position_digits(full, buf);
        buf.extend_from_within(..);
    }

    /// The index encoded by position digits `d`.
    fn index_of_digits(&self, d: &[u32]) -> u64 {
        d.iter()
            .zip(&self.pos_weights)
            .map(|(&digit, &w)| digit as u64 * w)
            .sum()
    }

    /// The index of the lexicographically-least orbit member of `full`.
    /// `scratch` is caller-provided (no allocation per call once grown).
    pub fn canonical(&self, full: u64, scratch: &mut CanonScratch) -> u64 {
        match &self.strategy {
            Strategy::Cycle => {
                self.ring_digits_doubled(full, &mut scratch.digits);
                let k = least_rotation_doubled(&scratch.digits, &mut scratch.booth);
                if k == 0 {
                    return full;
                }
                let d = &scratch.digits;
                let n = d.len() / 2;
                (0..n).map(|j| d[j + k] as u64 * self.pos_weights[j]).sum()
            }
            Strategy::Dihedral => {
                self.ring_digits_doubled(full, &mut scratch.digits);
                let n = scratch.digits.len() / 2;
                scratch.alt.clear();
                scratch.alt.extend(scratch.digits[..n].iter().rev());
                scratch.alt.extend_from_within(..);
                let kd = least_rotation_doubled(&scratch.digits, &mut scratch.booth);
                let ke = least_rotation_doubled(&scratch.alt, &mut scratch.booth);
                let (d, e) = (&scratch.digits, &scratch.alt);
                // Lazily compare the two candidate canonical sequences.
                let mut reversed = false;
                for j in 0..n {
                    let (a, b) = (d[j + kd], e[j + ke]);
                    if a != b {
                        reversed = b < a;
                        break;
                    }
                }
                let (seq, k) = if reversed { (e, ke) } else { (d, kd) };
                (0..n)
                    .map(|j| seq[j + k] as u64 * self.pos_weights[j])
                    .sum()
            }
            Strategy::LeafClasses(classes) => {
                self.position_digits(full, &mut scratch.digits);
                for class in classes {
                    scratch.best.clear();
                    scratch
                        .best
                        .extend(class.iter().map(|&p| scratch.digits[p]));
                    scratch.best.sort_unstable();
                    for (&p, &digit) in class.iter().zip(&scratch.best) {
                        scratch.digits[p] = digit;
                    }
                }
                self.index_of_digits(&scratch.digits)
            }
            Strategy::Explicit(group) => {
                self.position_digits(full, &mut scratch.digits);
                let d = &scratch.digits;
                let n = d.len();
                scratch.best.clear();
                scratch.best.extend_from_slice(d);
                for perm in group {
                    // Image digits: state of position v lands at perm[v].
                    scratch.alt.resize(n, 0);
                    for v in 0..n {
                        scratch.alt[perm[v] as usize] = d[v];
                    }
                    if scratch.alt < scratch.best {
                        std::mem::swap(&mut scratch.best, &mut scratch.alt);
                    }
                }
                self.index_of_digits(&scratch.best)
            }
        }
    }

    /// Like [`GroupCanonicalizer::canonical`] without caller-provided
    /// scratch — convenient for `&self` lookup paths (id resolution,
    /// chain queries) that have nowhere to keep scratch. Allocation-free
    /// after the first call on a thread (thread-local scratch).
    pub fn canonical_owned(&self, full: u64) -> u64 {
        thread_local! {
            static SCRATCH: std::cell::RefCell<CanonScratch> =
                std::cell::RefCell::new(CanonScratch::default());
        }
        SCRATCH.with(|s| self.canonical(full, &mut s.borrow_mut()))
    }

    /// Whether `full` is its own canonical representative. For the ring
    /// strategies this short-circuits: an index that is not even its own
    /// least *rotation* (the common case in the representative sweep)
    /// never reaches the reversal Booth pass.
    pub fn is_canonical(&self, full: u64, scratch: &mut CanonScratch) -> bool {
        match &self.strategy {
            Strategy::Cycle | Strategy::Dihedral => {
                self.ring_digits_doubled(full, &mut scratch.digits);
                let kd = least_rotation_doubled(&scratch.digits, &mut scratch.booth);
                let d = &scratch.digits;
                let n = d.len() / 2;
                // Canonical under rotations iff the least rotation equals
                // the sequence itself (kd may be a nonzero period offset).
                if (0..n).any(|j| d[j + kd] != d[j]) {
                    return false;
                }
                if matches!(self.strategy, Strategy::Cycle) {
                    return true;
                }
                // Dihedral: additionally no reflection may be smaller.
                scratch.alt.clear();
                scratch.alt.extend(scratch.digits[..n].iter().rev());
                scratch.alt.extend_from_within(..);
                let ke = least_rotation_doubled(&scratch.alt, &mut scratch.booth);
                let (d, e) = (&scratch.digits, &scratch.alt);
                for j in 0..n {
                    let (a, b) = (d[j], e[j + ke]);
                    if a != b {
                        return a < b;
                    }
                }
                true
            }
            _ => self.canonical(full, scratch) == full,
        }
    }

    /// The orbit size of `full`: the number of *distinct* configurations
    /// the group maps it to. Always divides
    /// [`GroupCanonicalizer::group_order`].
    pub fn orbit(&self, full: u64, scratch: &mut CanonScratch) -> u64 {
        match &self.strategy {
            Strategy::Cycle => {
                self.position_digits(full, &mut scratch.digits);
                period(&scratch.digits) as u64
            }
            Strategy::Dihedral => {
                self.ring_digits_doubled(full, &mut scratch.digits);
                let n = scratch.digits.len() / 2;
                let p = period(&scratch.digits[..n]) as u64;
                scratch.alt.clear();
                scratch.alt.extend(scratch.digits[..n].iter().rev());
                scratch.alt.extend_from_within(..);
                let kd = least_rotation_doubled(&scratch.digits, &mut scratch.booth);
                let ke = least_rotation_doubled(&scratch.alt, &mut scratch.booth);
                let (d, e) = (&scratch.digits, &scratch.alt);
                // Achiral (some rotation of the reversal equals the
                // sequence): the reflections contribute no new members.
                let achiral = (0..n).all(|j| d[j + kd] == e[j + ke]);
                if achiral {
                    p
                } else {
                    2 * p
                }
            }
            Strategy::LeafClasses(classes) => {
                self.position_digits(full, &mut scratch.digits);
                let mut orbit: u128 = 1;
                for class in classes {
                    scratch.best.clear();
                    scratch
                        .best
                        .extend(class.iter().map(|&p| scratch.digits[p]));
                    scratch.best.sort_unstable();
                    // Multinomial |class|! / ∏ multiplicity! — the number
                    // of distinct arrangements of the class digits.
                    let mut numer: u128 = 1;
                    for k in 1..=class.len() as u128 {
                        numer *= k;
                    }
                    let mut run = 1u128;
                    let mut denom: u128 = 1;
                    for w in scratch.best.windows(2) {
                        if w[0] == w[1] {
                            run += 1;
                            denom *= run;
                        } else {
                            run = 1;
                        }
                    }
                    orbit *= numer / denom;
                }
                u64::try_from(orbit).expect("orbit size fits u64 (<= group order)")
            }
            Strategy::Explicit(group) => {
                self.position_digits(full, &mut scratch.digits);
                let d = &scratch.digits;
                let n = d.len();
                scratch.orbit_ids.clear();
                for perm in group {
                    scratch.alt.resize(n, 0);
                    for v in 0..n {
                        scratch.alt[perm[v] as usize] = d[v];
                    }
                    scratch.orbit_ids.push(self.index_of_digits(&scratch.alt));
                }
                scratch.orbit_ids.sort_unstable();
                scratch.orbit_ids.dedup();
                scratch.orbit_ids.len() as u64
            }
        }
    }
}

/// The smallest period of `d` (always divides `d.len()`).
fn period(d: &[u32]) -> usize {
    let n = d.len();
    for p in 1..=n {
        if !n.is_multiple_of(p) {
            continue;
        }
        if (0..n).all(|j| d[(j + p) % n] == d[j]) {
            return p;
        }
    }
    unreachable!("p = n always fixes the sequence")
}

/// Node-space permutation as `u32` images.
fn node_perm(perm: &[NodeId]) -> Vec<u32> {
    // lint: cast-ok(node indices are bounded by the node count, far below u32)
    perm.iter().map(|v| v.index() as u32).collect()
}

/// The transposition of nodes `a` and `b`.
fn transposition(n: usize, a: NodeId, b: NodeId) -> Vec<u32> {
    // lint: cast-ok(node counts stay far below u32)
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.swap(a.index(), b.index());
    perm
}

/// BFS closure of `generators` under composition (identity included).
fn close_under_composition(n: usize, generators: &[Vec<u32>]) -> Result<Vec<Vec<u32>>, CoreError> {
    // lint: cast-ok(node counts stay far below u32)
    let identity: Vec<u32> = (0..n as u32).collect();
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let mut group: Vec<Vec<u32>> = Vec::new();
    let mut queue: Vec<Vec<u32>> = vec![identity];
    while let Some(p) = queue.pop() {
        if !seen.insert(p.clone()) {
            continue;
        }
        if seen.len() > GroupCanonicalizer::EXPLICIT_GROUP_CAP {
            return Err(CoreError::QuotientUnsupported {
                reason: format!(
                    "composition closure of the permutation set exceeds {} elements",
                    GroupCanonicalizer::EXPLICIT_GROUP_CAP
                ),
            });
        }
        for g in generators {
            let composed: Vec<u32> = (0..n).map(|v| g[p[v] as usize]).collect();
            if !seen.contains(&composed) {
                queue.push(composed);
            }
        }
        group.push(p);
    }
    Ok(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionMask};
    use crate::algorithm::Algorithm;
    use crate::outcome::Outcomes;
    use crate::view::View;
    use stab_graph::{builders, NodeId};

    /// A trivial algorithm with `radix` states per node (never enabled;
    /// only the space matters here).
    struct States {
        g: Graph,
        radix: u8,
    }

    impl Algorithm for States {
        type State = u8;
        fn graph(&self) -> &Graph {
            &self.g
        }
        fn name(&self) -> String {
            "states".into()
        }
        fn state_space(&self, _v: NodeId) -> Vec<u8> {
            (0..self.radix).collect()
        }
        fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
            ActionMask::empty()
        }
        fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
            unreachable!("never enabled")
        }
    }

    fn space(g: Graph, radix: u8) -> (Graph, SpaceIndexer<u8>) {
        let alg = States { g, radix };
        let ix = SpaceIndexer::new(&alg, 1 << 40).unwrap();
        (alg.g, ix)
    }

    fn ring_canon(n: usize, radix: u8, dihedral: bool) -> (SpaceIndexer<u8>, GroupCanonicalizer) {
        let (g, ix) = space(builders::ring(n), radix);
        let canon = if dihedral {
            GroupCanonicalizer::ring_dihedral(&g, &ix).unwrap()
        } else {
            GroupCanonicalizer::ring_rotation(&g, &ix).unwrap()
        };
        (ix, canon)
    }

    #[test]
    fn booth_matches_naive_least_rotation() {
        // Deterministic small sweep; the property suite covers random
        // alphabets and lengths.
        for seq in [
            vec![0u32],
            vec![1, 0],
            vec![2, 1, 0, 1],
            vec![1, 1, 1, 1],
            vec![0, 1, 0, 1, 1],
            vec![3, 0, 3, 0, 2, 1],
        ] {
            let n = seq.len();
            let k = least_rotation(&seq);
            let booth: Vec<u32> = (0..n).map(|j| seq[(j + k) % n]).collect();
            let naive = (0..n)
                .map(|r| (0..n).map(|j| seq[(j + r) % n]).collect::<Vec<u32>>())
                .min()
                .unwrap();
            assert_eq!(booth, naive, "sequence {seq:?}");
        }
    }

    #[test]
    fn rotation_canonical_is_idempotent_and_minimal_in_orbit() {
        let (ix, canon) = ring_canon(5, 3, false);
        let mut scratch = CanonScratch::default();
        for full in 0..ix.total() {
            let c = canon.canonical(full, &mut scratch);
            assert_eq!(canon.canonical(c, &mut scratch), c, "idempotent at {full}");
            assert!(canon.is_canonical(c, &mut scratch));
            // The representative is the minimum *lexicographic* rotation;
            // verify against a brute-force rotation of the decoded config.
            let cfg = ix.decode(full);
            let n = cfg.len();
            let states: Vec<u8> = cfg.states().to_vec();
            let min_seq = (0..n)
                .map(|k| (0..n).map(|j| states[(j + k) % n]).collect::<Vec<u8>>())
                .min()
                .unwrap();
            let min_full = ix.encode(&crate::Configuration::from_vec(min_seq));
            assert_eq!(c, min_full, "orbit minimum of {full}");
        }
    }

    #[test]
    fn dihedral_canonical_is_least_over_rotations_and_reflections() {
        let (ix, canon) = ring_canon(6, 2, true);
        let mut scratch = CanonScratch::default();
        assert_eq!(canon.group_order(), 12);
        for full in 0..ix.total() {
            let c = canon.canonical(full, &mut scratch);
            assert_eq!(canon.canonical(c, &mut scratch), c, "idempotent at {full}");
            let states: Vec<u8> = ix.decode(full).states().to_vec();
            let n = states.len();
            let mut images = Vec::new();
            for k in 0..n {
                let rot: Vec<u8> = (0..n).map(|j| states[(j + k) % n]).collect();
                images.push(rot.iter().rev().copied().collect::<Vec<u8>>());
                images.push(rot);
            }
            let min_seq = images.into_iter().min().unwrap();
            let min_full = ix.encode(&crate::Configuration::from_vec(min_seq));
            assert_eq!(c, min_full, "dihedral orbit minimum of {full}");
        }
    }

    #[test]
    fn dihedral_orbits_tile_the_space() {
        for (n, radix) in [(3usize, 2u8), (5, 2), (4, 3), (6, 2)] {
            let (ix, canon) = ring_canon(n, radix, true);
            let mut scratch = CanonScratch::default();
            let mut covered = 0u64;
            let mut reps = 0u64;
            for full in 0..ix.total() {
                if canon.is_canonical(full, &mut scratch) {
                    reps += 1;
                    let orbit = canon.orbit(full, &mut scratch);
                    assert!(
                        canon.group_order().is_multiple_of(orbit),
                        "orbit {orbit} divides group order (N={n})"
                    );
                    covered += orbit;
                }
            }
            assert_eq!(covered, ix.total(), "dihedral orbits tile (N={n})");
            assert!(reps >= ix.total() / (2 * n as u64));
        }
    }

    #[test]
    fn chiral_necklaces_have_doubled_orbits() {
        // ⟨0,0,1,0,1,1⟩ on the 6-ring is chiral: its reversal is not a
        // rotation of it, so the dihedral orbit is twice the rotation one.
        let (ix, rot) = ring_canon(6, 2, false);
        let (_, dih) = ring_canon(6, 2, true);
        let mut scratch = CanonScratch::default();
        let chiral = ix.encode(&crate::Configuration::from_vec(vec![0u8, 0, 1, 0, 1, 1]));
        assert_eq!(rot.orbit(chiral, &mut scratch), 6);
        assert_eq!(dih.orbit(chiral, &mut scratch), 12);
        // An achiral (palindromic) necklace keeps its rotation orbit.
        let achiral = ix.encode(&crate::Configuration::from_vec(vec![0u8, 0, 1, 0, 0, 1]));
        assert_eq!(
            dih.orbit(achiral, &mut scratch),
            rot.orbit(achiral, &mut scratch)
        );
    }

    #[test]
    fn leaf_permutation_sorts_class_digits() {
        let (g, ix) = space(builders::star(5), 3);
        let canon = GroupCanonicalizer::leaf_permutation(&g, &ix).unwrap();
        assert_eq!(canon.group_order(), 24); // 4! leaf orders
        let mut scratch = CanonScratch::default();
        // Hub state is untouched; leaf digits sort ascending.
        let full = ix.encode(&crate::Configuration::from_vec(vec![2u8, 1, 0, 2, 0]));
        let c = canon.canonical(full, &mut scratch);
        assert_eq!(
            ix.decode(c).states(),
            &[2u8, 0, 0, 1, 2],
            "leaves sorted, hub fixed"
        );
        // Orbit = multinomial over the leaf digit multiset {0,0,1,2}.
        assert_eq!(canon.orbit(full, &mut scratch), 12);
        // Orbits tile the space.
        let mut covered = 0u64;
        for full in 0..ix.total() {
            if canon.is_canonical(full, &mut scratch) {
                covered += canon.orbit(full, &mut scratch);
            }
        }
        assert_eq!(covered, ix.total());
    }

    #[test]
    fn explicit_group_matches_dihedral_on_rings() {
        // Feeding the dihedral generators as an explicit permutation set
        // must canonicalize identically to the structured strategy.
        let (g, ix) = space(builders::ring(5), 2);
        let dih = GroupCanonicalizer::ring_dihedral(&g, &ix).unwrap();
        let rot = RingRotations::of(&g).unwrap();
        let explicit =
            GroupCanonicalizer::from_permutations(&ix, &[rot.permutation(1), rot.reflection()])
                .unwrap();
        assert_eq!(explicit.group_order(), 10);
        let mut s1 = CanonScratch::default();
        let mut s2 = CanonScratch::default();
        for full in 0..ix.total() {
            assert_eq!(
                dih.canonical(full, &mut s1),
                explicit.canonical(full, &mut s2),
                "at {full}"
            );
            assert_eq!(dih.orbit(full, &mut s1), explicit.orbit(full, &mut s2));
        }
    }

    #[test]
    fn apply_perm_round_trips_through_generators() {
        let (ix, canon) = ring_canon(5, 3, true);
        let mut scratch = CanonScratch::default();
        for full in (0..ix.total()).step_by(7) {
            for perm in canon.generators() {
                let image = canon.apply_perm(full, perm);
                assert_eq!(
                    canon.canonical(image, &mut scratch),
                    canon.canonical(full, &mut scratch),
                    "orbit-invariant at {full}"
                );
            }
        }
    }

    #[test]
    fn grid_reflections_tile_the_space() {
        // 2×3 rectangle: C₂ × C₂, order 4.
        let (g, ix) = space(builders::grid(2, 3), 2);
        let canon = GroupCanonicalizer::automorphism(&g, &ix).unwrap();
        assert_eq!(canon.group_order(), 4);
        let mut scratch = CanonScratch::default();
        let mut covered = 0u64;
        for full in 0..ix.total() {
            if canon.is_canonical(full, &mut scratch) {
                let orbit = canon.orbit(full, &mut scratch);
                assert!(canon.group_order().is_multiple_of(orbit));
                covered += orbit;
            }
        }
        assert_eq!(covered, ix.total(), "grid reflection orbits tile");
        // 2×2 is a ring in grid labelling? No — grid labelling differs
        // from ring labelling, but the *graph* is still a 4-cycle, so the
        // dihedral strategy handles it.
        let (g, ix) = space(builders::grid(2, 2), 2);
        assert!(g.is_ring());
        assert!(GroupCanonicalizer::automorphism(&g, &ix).is_ok());
        // 3×3 square gains the transpose: D₄, order 8.
        let (g, ix) = space(builders::grid(3, 3), 2);
        let canon = GroupCanonicalizer::automorphism(&g, &ix).unwrap();
        assert_eq!(canon.group_order(), 8);
    }

    #[test]
    fn grid_canonical_is_least_over_reflections() {
        let (g, ix) = space(builders::grid(2, 3), 2);
        let canon = GroupCanonicalizer::automorphism(&g, &ix).unwrap();
        let mut scratch = CanonScratch::default();
        // Brute-force the four images of each configuration.
        let reflect = |states: &[u8], fr: bool, fc: bool| -> Vec<u8> {
            (0..6)
                .map(|v| {
                    let (mut r, mut c) = (v / 3, v % 3);
                    if fr {
                        r = 1 - r;
                    }
                    if fc {
                        c = 2 - c;
                    }
                    states[r * 3 + c]
                })
                .collect()
        };
        for full in 0..ix.total() {
            let c = canon.canonical(full, &mut scratch);
            let states: Vec<u8> = ix.decode(full).states().to_vec();
            let min = [(false, false), (true, false), (false, true), (true, true)]
                .into_iter()
                .map(|(fr, fc)| reflect(&states, fr, fc))
                .min()
                .unwrap();
            let min_full = ix.encode(&crate::Configuration::from_vec(min));
            assert_eq!(c, min_full, "reflection-orbit minimum of {full}");
        }
    }

    #[test]
    fn degenerate_grid_path_gets_the_reflection() {
        let (g, ix) = space(builders::path(4), 2);
        let canon = GroupCanonicalizer::automorphism(&g, &ix).unwrap();
        assert_eq!(canon.group_order(), 2);
        let mut scratch = CanonScratch::default();
        let flip = ix.encode(&crate::Configuration::from_vec(vec![1u8, 0, 0, 0]));
        let kept = ix.encode(&crate::Configuration::from_vec(vec![0u8, 0, 0, 1]));
        assert_eq!(canon.canonical(flip, &mut scratch), kept);
    }

    #[test]
    fn non_rings_are_rejected_cleanly() {
        for g in [
            builders::path(1),
            builders::path(2),
            builders::path(4),
            builders::star(5),
        ] {
            let (g, ix) = space(g, 2);
            for dihedral in [false, true] {
                let err = GroupCanonicalizer::ring(&g, &ix, dihedral).unwrap_err();
                assert!(
                    matches!(err, CoreError::QuotientUnsupported { .. }),
                    "{err}"
                );
                assert!(err.to_string().contains("not a ring"));
            }
        }
    }

    #[test]
    fn leafless_graphs_are_rejected_for_leaf_quotients() {
        let (g, ix) = space(builders::ring(5), 2);
        let err = GroupCanonicalizer::leaf_permutation(&g, &ix).unwrap_err();
        assert!(err.to_string().contains("same-parent leaves"));
        let (g, ix) = space(builders::path(4), 2);
        let err = GroupCanonicalizer::leaf_permutation(&g, &ix).unwrap_err();
        assert!(matches!(err, CoreError::QuotientUnsupported { .. }));
    }

    #[test]
    fn unequal_alphabets_are_rejected() {
        struct Lopsided {
            g: Graph,
        }
        impl Algorithm for Lopsided {
            type State = u8;
            fn graph(&self) -> &Graph {
                &self.g
            }
            fn name(&self) -> String {
                "lopsided".into()
            }
            fn state_space(&self, v: NodeId) -> Vec<u8> {
                if v.index() == 1 {
                    vec![0, 1, 2]
                } else {
                    vec![0, 1]
                }
            }
            fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
                ActionMask::empty()
            }
            fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
                unreachable!("never enabled")
            }
        }
        let alg = Lopsided {
            g: builders::ring(4),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        for build in [
            GroupCanonicalizer::ring_rotation(alg.graph(), &ix),
            GroupCanonicalizer::ring_dihedral(alg.graph(), &ix),
        ] {
            assert!(build.unwrap_err().to_string().contains("alphabets differ"));
        }
        // Leaf classes with unequal leaf alphabets are rejected too.
        struct LopsidedStar {
            g: Graph,
        }
        impl Algorithm for LopsidedStar {
            type State = u8;
            fn graph(&self) -> &Graph {
                &self.g
            }
            fn name(&self) -> String {
                "lopsided-star".into()
            }
            fn state_space(&self, v: NodeId) -> Vec<u8> {
                if v.index() == 2 {
                    vec![0, 1, 2]
                } else {
                    vec![0, 1]
                }
            }
            fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
                ActionMask::empty()
            }
            fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
                unreachable!("never enabled")
            }
        }
        let alg = LopsidedStar {
            g: builders::star(4),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let err = GroupCanonicalizer::leaf_permutation(alg.graph(), &ix).unwrap_err();
        assert!(err.to_string().contains("alphabets differ"));
    }

    #[test]
    fn explicit_closure_is_capped() {
        // A 16-node star's leaf transpositions generate 15! ≫ the cap.
        let (g, ix) = space(builders::star(16), 2);
        let perms: Vec<Vec<NodeId>> = (1..15)
            .map(|i| {
                let mut p: Vec<NodeId> = (0..16).map(NodeId::new).collect();
                p.swap(i, i + 1);
                p
            })
            .collect();
        let _ = g;
        let err = GroupCanonicalizer::from_permutations(&ix, &perms).unwrap_err();
        assert!(err.to_string().contains("closure"));
    }
}
