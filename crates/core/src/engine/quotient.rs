//! Rotational-symmetry quotienting for ring topologies.
//!
//! Anonymous uniform ring algorithms (Herman's ring, Algorithm 1's token
//! circulation, greedy coloring on a ring, …) are *rotation-equivariant*:
//! rotating a configuration and then taking a step equals taking the step
//! and then rotating. The rotation group therefore partitions the
//! configuration space into orbits of up to `N` configurations each, and
//! every analysis — possibilistic (closure, reachability, fair cycles) and
//! probabilistic (the Definition 6 Markov chain, which lumps exactly over
//! the orbit partition) — can run on one representative per orbit.
//!
//! [`RingCanonicalizer`] picks the representative: the rotation whose
//! digit sequence, read in canonical cycle order, is **lexicographically
//! least**. Canonicalization works directly on mixed-radix indices (no
//! configuration allocation), so it is cheap enough to run per successor
//! edge during exploration.
//!
//! Soundness requires the algorithm *and* the legitimacy predicate to be
//! rotation-invariant; the canonicalizer checks what is checkable
//! syntactically — ring topology and equal per-node state alphabets — and
//! the quotient differential suites verify verdict/probability agreement
//! for the zoo's ring algorithms. Rooted ring algorithms (e.g. Dijkstra's
//! K-state protocol, whose root breaks anonymity) must not be quotiented.

use stab_graph::{Graph, RingRotations};

use crate::space::SpaceIndexer;
use crate::{CoreError, LocalState};

/// Maps mixed-radix configuration indices of a uniform ring space to the
/// index of their lexicographically-least rotation.
#[derive(Debug, Clone)]
pub struct RingCanonicalizer {
    /// Mixed-radix weight of the node at each cycle position.
    weights: Vec<u64>,
    /// The common alphabet size of every ring node.
    radix: u64,
}

impl RingCanonicalizer {
    /// Builds the canonicalizer for `alg`'s ring, validating that the
    /// quotient is well-formed.
    ///
    /// # Errors
    ///
    /// [`CoreError::QuotientUnsupported`] if `g` is not a ring (including
    /// all graphs with fewer than 3 nodes) or its nodes have unequal state
    /// alphabets.
    pub fn new<S: LocalState>(g: &Graph, ix: &SpaceIndexer<S>) -> Result<Self, CoreError> {
        let rot = RingRotations::of(g).map_err(|_| CoreError::QuotientUnsupported {
            reason: format!("the {}-node topology is not a ring", g.n()),
        })?;
        let order = rot.order();
        let first = ix.states_of(order[0]);
        for &v in &order[1..] {
            if ix.states_of(v) != first {
                return Err(CoreError::QuotientUnsupported {
                    reason: format!(
                        "state alphabets differ between ring nodes (node 0 has {}, {v} has {})",
                        first.len(),
                        ix.states_of(v).len()
                    ),
                });
            }
        }
        Ok(RingCanonicalizer {
            weights: order.iter().map(|&v| ix.weight(v)).collect(),
            radix: first.len() as u64,
        })
    }

    /// Ring size.
    #[inline]
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Writes the digits of `full` in cycle order into `buf` (resized to
    /// `n()`).
    fn cycle_digits(&self, full: u64, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(
            self.weights
                .iter()
                .map(|&w| ((full / w) % self.radix) as u32),
        );
    }

    /// Writes the digits of `full` in cycle order into the first `n()`
    /// entries of `buf`.
    fn cycle_digits_into(&self, full: u64, buf: &mut [u32]) {
        for (d, &w) in buf.iter_mut().zip(&self.weights) {
            *d = ((full / w) % self.radix) as u32;
        }
    }

    /// The canonical index of the digit sequence `d` (cycle order), given
    /// that `d` encodes `full`.
    fn canonical_of_digits(&self, full: u64, d: &[u32]) -> u64 {
        let n = d.len();
        let k = Self::least_rotation(d);
        if k == 0 {
            return full;
        }
        (0..n)
            .map(|j| d[(j + k) % n] as u64 * self.weights[j])
            .sum()
    }

    /// The rotation offset `k` whose digit sequence `d[(j+k) mod n]` is
    /// lexicographically least.
    fn least_rotation(d: &[u32]) -> usize {
        let n = d.len();
        let mut best = 0usize;
        for k in 1..n {
            for j in 0..n {
                let a = d[(j + k) % n];
                let b = d[(j + best) % n];
                if a != b {
                    if a < b {
                        best = k;
                    }
                    break;
                }
            }
        }
        best
    }

    /// The index of the lexicographically-least rotation of `full`.
    /// `buf` is caller-provided scratch (no allocation per call once
    /// grown).
    pub fn canonical(&self, full: u64, buf: &mut Vec<u32>) -> u64 {
        self.cycle_digits(full, buf);
        self.canonical_of_digits(full, buf)
    }

    /// Like [`RingCanonicalizer::canonical`] but without caller-provided
    /// scratch: allocation-free on rings of at most 64 nodes (the
    /// engine's process-count limit) via a stack buffer. Convenient for
    /// `&self` lookup paths that have nowhere to keep scratch.
    pub fn canonical_owned(&self, full: u64) -> u64 {
        let n = self.n();
        if n <= 64 {
            let mut buf = [0u32; 64];
            self.cycle_digits_into(full, &mut buf[..n]);
            self.canonical_of_digits(full, &buf[..n])
        } else {
            let mut buf = Vec::new();
            self.canonical(full, &mut buf)
        }
    }

    /// Whether `full` is its own canonical representative.
    pub fn is_canonical(&self, full: u64, buf: &mut Vec<u32>) -> bool {
        self.canonical(full, buf) == full
    }

    /// The orbit size of `full` under rotation: the number of *distinct*
    /// configurations among its `n` rotations, which equals the smallest
    /// period of the digit sequence (an all-equal configuration has
    /// period — hence orbit size — 1).
    pub fn orbit(&self, full: u64, buf: &mut Vec<u32>) -> u32 {
        self.cycle_digits(full, buf);
        let n = buf.len();
        // The smallest p > 0 with d[(j+p) mod n] == d[j] for all j is the
        // period; it divides n, so only divisors need checking.
        for p in 1..=n {
            if !n.is_multiple_of(p) {
                continue;
            }
            if (0..n).all(|j| buf[(j + p) % n] == buf[j]) {
                return p as u32;
            }
        }
        unreachable!("p = n always fixes the sequence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionMask};
    use crate::algorithm::Algorithm;
    use crate::outcome::Outcomes;
    use crate::view::View;
    use stab_graph::{builders, NodeId};

    /// A trivial ring algorithm with `radix` states per node (never
    /// enabled; only the space matters here).
    struct RingStates {
        g: Graph,
        radix: u8,
    }

    impl Algorithm for RingStates {
        type State = u8;
        fn graph(&self) -> &Graph {
            &self.g
        }
        fn name(&self) -> String {
            "ring-states".into()
        }
        fn state_space(&self, _v: NodeId) -> Vec<u8> {
            (0..self.radix).collect()
        }
        fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
            ActionMask::empty()
        }
        fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
            unreachable!("never enabled")
        }
    }

    fn canonicalizer(n: usize, radix: u8) -> (SpaceIndexer<u8>, RingCanonicalizer) {
        let alg = RingStates {
            g: builders::ring(n),
            radix,
        };
        let ix = SpaceIndexer::new(&alg, 1 << 40).unwrap();
        let canon = RingCanonicalizer::new(alg.graph(), &ix).unwrap();
        (ix, canon)
    }

    #[test]
    fn canonical_is_idempotent_and_minimal_in_orbit() {
        let (ix, canon) = canonicalizer(5, 3);
        let mut buf = Vec::new();
        for full in 0..ix.total() {
            let c = canon.canonical(full, &mut buf);
            assert_eq!(canon.canonical(c, &mut buf), c, "idempotent at {full}");
            assert!(canon.is_canonical(c, &mut buf));
            // The representative is the minimum *lexicographic* rotation;
            // verify against a brute-force rotation of the decoded config.
            let cfg = ix.decode(full);
            let n = cfg.len();
            let states: Vec<u8> = cfg.states().to_vec();
            let mut orbit_reps = Vec::new();
            for k in 0..n {
                let rotated: Vec<u8> = (0..n).map(|j| states[(j + k) % n]).collect();
                orbit_reps.push(rotated);
            }
            let min_seq = orbit_reps.iter().min().unwrap().clone();
            let min_full = ix.encode(&crate::Configuration::from_vec(min_seq));
            assert_eq!(c, min_full, "orbit minimum of {full}");
        }
    }

    #[test]
    fn orbit_sizes_sum_to_the_space() {
        // Burnside check: the orbit sizes of the canonical representatives
        // must tile the full space exactly.
        for (n, radix) in [(3usize, 2u8), (4, 3), (6, 2)] {
            let (ix, canon) = canonicalizer(n, radix);
            let mut buf = Vec::new();
            let mut reps = 0u64;
            let mut covered = 0u64;
            for full in 0..ix.total() {
                if canon.is_canonical(full, &mut buf) {
                    reps += 1;
                    covered += canon.orbit(full, &mut buf) as u64;
                }
            }
            assert_eq!(covered, ix.total(), "orbits tile the space (N={n})");
            assert!(reps <= ix.total());
            assert!(reps >= ix.total() / n as u64, "at most N-fold shrinkage");
        }
    }

    #[test]
    fn all_equal_configurations_have_orbit_one() {
        let (ix, canon) = canonicalizer(6, 4);
        let mut buf = Vec::new();
        for s in 0..4u64 {
            // ⟨s, s, s, s, s, s⟩: fixed by every rotation.
            let full = (0..6).map(|v| s * ix.weight(NodeId::new(v))).sum::<u64>();
            assert!(canon.is_canonical(full, &mut buf));
            assert_eq!(canon.orbit(full, &mut buf), 1);
        }
        // A period-2 pattern on the 6-ring: ⟨0,1,0,1,0,1⟩ has orbit 2.
        let alternating = (0..6)
            .map(|v| (v as u64 % 2) * ix.weight(NodeId::new(v)))
            .sum::<u64>();
        assert_eq!(canon.orbit(alternating, &mut buf), 2);
    }

    #[test]
    fn rotations_canonicalize_to_the_same_representative() {
        let (ix, canon) = canonicalizer(7, 2);
        let mut buf = Vec::new();
        let states = [1u8, 0, 0, 1, 0, 1, 1];
        let base = ix.encode(&crate::Configuration::from_vec(states.to_vec()));
        let expect = canon.canonical(base, &mut buf);
        for k in 0..7 {
            let rotated: Vec<u8> = (0..7).map(|j| states[(j + k) % 7]).collect();
            let full = ix.encode(&crate::Configuration::from_vec(rotated));
            assert_eq!(canon.canonical(full, &mut buf), expect, "rotation {k}");
        }
    }

    #[test]
    fn non_rings_are_rejected_cleanly() {
        for g in [
            builders::path(1), // the N = 1 edge case
            builders::path(2),
            builders::path(4),
            builders::star(5),
        ] {
            let alg = RingStates { g, radix: 2 };
            let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
            let err = RingCanonicalizer::new(alg.graph(), &ix).unwrap_err();
            assert!(
                matches!(err, CoreError::QuotientUnsupported { .. }),
                "{err}"
            );
            assert!(err.to_string().contains("not a ring"));
        }
    }

    #[test]
    fn unequal_alphabets_are_rejected() {
        struct Lopsided {
            g: Graph,
        }
        impl Algorithm for Lopsided {
            type State = u8;
            fn graph(&self) -> &Graph {
                &self.g
            }
            fn name(&self) -> String {
                "lopsided".into()
            }
            fn state_space(&self, v: NodeId) -> Vec<u8> {
                if v.index() == 1 {
                    vec![0, 1, 2]
                } else {
                    vec![0, 1]
                }
            }
            fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
                ActionMask::empty()
            }
            fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
                unreachable!("never enabled")
            }
        }
        let alg = Lopsided {
            g: builders::ring(4),
        };
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let err = RingCanonicalizer::new(alg.graph(), &ix).unwrap_err();
        assert!(err.to_string().contains("alphabets differ"));
    }
}
