//! The [`Algorithm`] trait: a distributed algorithm as a finite set of
//! guarded actions executed by anonymous processes.

use std::fmt;
use std::hash::Hash;

use stab_graph::{Graph, NodeId};

use crate::action::{ActionId, ActionMask};
use crate::config::Configuration;
use crate::outcome::Outcomes;
use crate::view::{ConfigView, View};

/// Bounds every local state type must satisfy: value semantics plus the
/// `Eq + Ord + Hash` structure the checkers index state spaces with.
pub trait LocalState: Clone + Eq + Ord + Hash + fmt::Debug {}

impl<T: Clone + Eq + Ord + Hash + fmt::Debug> LocalState for T {}

/// A distributed algorithm instantiated on a concrete network.
///
/// An implementation owns its [`Graph`] and any per-node *constants* (ring
/// orientation, root flag, …); the mutable state lives in
/// [`Configuration`]s. Guards ([`Algorithm::enabled_actions`]) and statements
/// ([`Algorithm::apply`]) access state exclusively through a [`View`],
/// which restricts them to the process's own state and its neighbours' — the
/// locality discipline of the paper's shared-register model.
///
/// Determinism is a property, not a subtype: an algorithm is *deterministic*
/// when every action's [`Outcomes`] is a singleton (and guards are mutually
/// exclusive). The `stab-checker` crate audits this; the transformer
/// ([`crate::Transformed`]) produces genuinely probabilistic algorithms.
pub trait Algorithm {
    /// Per-process local state (the values of the process's variables).
    type State: LocalState;

    /// The communication graph the algorithm runs on.
    fn graph(&self) -> &Graph;

    /// Human-readable name, e.g. `"token-circulation(N=6, m=4)"`.
    fn name(&self) -> String;

    /// The finite domain of `node`'s state (used to enumerate configuration
    /// spaces; §2: communication uses a *finite* number of shared variables).
    fn state_space(&self, node: NodeId) -> Vec<Self::State>;

    /// Guard evaluation: the set of actions enabled at the viewed process.
    fn enabled_actions<V: View<Self::State>>(&self, view: &V) -> ActionMask;

    /// Statement execution: the distribution over the process's next state
    /// when it executes `action`.
    ///
    /// Implementations may assume `action` is enabled in `view`; callers
    /// (the semantics layer) only pass enabled actions.
    fn apply<V: View<Self::State>>(&self, view: &V, action: ActionId) -> Outcomes<Self::State>;

    /// Whether `cfg` is an admissible initial configuration. Defaults to
    /// `true` (`I = C`, the premise of Definitions 1–3); k-stabilization
    /// style restrictions override this.
    fn is_initial(&self, cfg: &Configuration<Self::State>) -> bool {
        let _ = cfg;
        true
    }

    /// Whether the algorithm contains P-variables (random assignments).
    /// Purely descriptive; the checkers derive ground truth from
    /// [`Outcomes`].
    fn is_probabilistic(&self) -> bool {
        false
    }

    // ------------------------------------------------------------------
    // Provided conveniences.
    // ------------------------------------------------------------------

    /// Number of processes `N`.
    fn n(&self) -> usize {
        self.graph().n()
    }

    /// The view of `node` within `cfg`.
    fn view<'a>(
        &'a self,
        cfg: &'a Configuration<Self::State>,
        node: NodeId,
    ) -> ConfigView<'a, Self::State> {
        ConfigView::new(self.graph(), cfg, node)
    }

    /// Whether `node` is enabled in `cfg` (at least one guard holds).
    fn is_enabled(&self, cfg: &Configuration<Self::State>, node: NodeId) -> bool {
        !self.enabled_actions(&self.view(cfg, node)).is_empty()
    }

    /// The action `node` executes when scheduled: the lowest-labelled
    /// enabled action (`None` when disabled).
    fn selected_action(&self, cfg: &Configuration<Self::State>, node: NodeId) -> Option<ActionId> {
        self.enabled_actions(&self.view(cfg, node)).selected()
    }

    /// All enabled processes of `cfg` in ascending order
    /// (`Enabled(γ)` in the paper).
    fn enabled_nodes(&self, cfg: &Configuration<Self::State>) -> Vec<NodeId> {
        self.graph()
            .nodes()
            .filter(|&v| self.is_enabled(cfg, v))
            .collect()
    }

    /// Whether `cfg` is terminal: no process is enabled.
    fn is_terminal(&self, cfg: &Configuration<Self::State>) -> bool {
        self.graph().nodes().all(|v| !self.is_enabled(cfg, v))
    }
}

/// Blanket implementation so `&A` is an algorithm wherever `A` is; lets
/// harness code borrow algorithms without cloning them.
impl<A: Algorithm + ?Sized> Algorithm for &A {
    type State = A::State;

    fn graph(&self) -> &Graph {
        (**self).graph()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn state_space(&self, node: NodeId) -> Vec<Self::State> {
        (**self).state_space(node)
    }

    fn enabled_actions<V: View<Self::State>>(&self, view: &V) -> ActionMask {
        (**self).enabled_actions(view)
    }

    fn apply<V: View<Self::State>>(&self, view: &V, action: ActionId) -> Outcomes<Self::State> {
        (**self).apply(view, action)
    }

    fn is_initial(&self, cfg: &Configuration<Self::State>) -> bool {
        (**self).is_initial(cfg)
    }

    fn is_probabilistic(&self) -> bool {
        (**self).is_probabilistic()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A tiny concrete algorithm used by unit tests across this crate:
    //! binary "infection" — a process with state 0 becomes 1 when some
    //! neighbour is 1 (deterministic); legitimate = all 1.

    use super::*;

    #[derive(Debug, Clone)]
    pub struct Infection {
        pub g: Graph,
    }

    impl Algorithm for Infection {
        type State = u8;

        fn graph(&self) -> &Graph {
            &self.g
        }

        fn name(&self) -> String {
            "infection".into()
        }

        fn state_space(&self, _node: NodeId) -> Vec<u8> {
            vec![0, 1]
        }

        fn enabled_actions<V: View<u8>>(&self, view: &V) -> ActionMask {
            let infected_neighbor = view.count_neighbors(|&s| s == 1) > 0;
            ActionMask::when(*view.me() == 0 && infected_neighbor, ActionId::A1)
        }

        fn apply<V: View<u8>>(&self, _view: &V, _action: ActionId) -> Outcomes<u8> {
            Outcomes::certain(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::Infection;
    use super::*;
    use stab_graph::builders;

    fn alg() -> Infection {
        Infection {
            g: builders::path(4),
        }
    }

    #[test]
    fn enabled_nodes_are_uninfected_with_infected_neighbor() {
        let a = alg();
        let cfg = Configuration::from_vec(vec![1, 0, 0, 0]);
        assert_eq!(a.enabled_nodes(&cfg), vec![NodeId::new(1)]);
        assert!(a.is_enabled(&cfg, NodeId::new(1)));
        assert!(!a.is_enabled(&cfg, NodeId::new(0)));
        assert!(!a.is_enabled(&cfg, NodeId::new(3)));
    }

    #[test]
    fn selected_action_is_a1() {
        let a = alg();
        let cfg = Configuration::from_vec(vec![1, 0, 0, 0]);
        assert_eq!(a.selected_action(&cfg, NodeId::new(1)), Some(ActionId::A1));
        assert_eq!(a.selected_action(&cfg, NodeId::new(2)), None);
    }

    #[test]
    fn all_infected_is_terminal() {
        let a = alg();
        assert!(a.is_terminal(&Configuration::from_vec(vec![1, 1, 1, 1])));
        assert!(!a.is_terminal(&Configuration::from_vec(vec![1, 0, 1, 1])));
        // All-zero is also terminal for infection: nobody can start it.
        assert!(a.is_terminal(&Configuration::from_vec(vec![0, 0, 0, 0])));
    }

    #[test]
    fn reference_impl_delegates() {
        let a = alg();
        let r: &Infection = &a;
        assert_eq!(r.name(), "infection");
        assert_eq!(Algorithm::n(&r), 4);
        let cfg = Configuration::from_vec(vec![0, 1, 0, 0]);
        assert_eq!(r.enabled_nodes(&cfg), vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn default_is_initial_accepts_everything() {
        let a = alg();
        assert!(a.is_initial(&Configuration::from_vec(vec![0, 0, 0, 0])));
        assert!(!a.is_probabilistic());
    }
}
