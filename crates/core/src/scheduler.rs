//! Schedulers (daemons): who moves at each step.
//!
//! A scheduler picks a non-empty subset of the enabled processes to execute
//! simultaneously (§2 of the paper). The paper states every separation
//! result *relative to a daemon*, and its four daemons are not isolated
//! constructions: they are points in the composable daemon lattice of the
//! Dubois–Tixeuil taxonomy. A [`DaemonSpec`] names a point of that lattice
//! as a (distribution × fairness × boundedness) triple:
//!
//! * **distribution** ([`Distribution`]) — which subsets of the enabled set
//!   may be activated in one step: *k-central* (at most `k` processes, no
//!   two within graph distance `radius` of each other) or *synchronous*
//!   (always the full enabled set);
//! * **fairness** ([`Fairness`]) — which infinite executions the daemon may
//!   produce: unfair (the paper's "proper" daemon), weakly fair, strongly
//!   fair, or Gouda-fair;
//! * **boundedness** ([`Boundedness`]) — how many steps a continuously
//!   enabled process may be overlooked before it must be activated. This is
//!   a constraint on *executions*, not on single steps, so it never changes
//!   a transition system; it participates in the refinement order and in
//!   reports.
//!
//! The four daemons of the self-stabilization literature used by the paper
//! are named lattice points:
//!
//! * [`DaemonSpec::central`] — exactly one enabled process per step
//!   (Dijkstra): `KCentral { k: Some(1), radius: 0 }`;
//! * [`DaemonSpec::distributed`] — any non-empty subset
//!   (Burns–Gouda–Miller): `KCentral { k: None, radius: 0 }`;
//! * [`DaemonSpec::synchronous`] — every enabled process, every step
//!   (Herman): [`Distribution::Synchronous`];
//! * [`DaemonSpec::locally_central`] — any non-empty subset containing no
//!   two neighbours: `KCentral { k: None, radius: 1 }`.
//!
//! The legacy [`Daemon`] enum still names these four points directly (every
//! engine entry point accepts `impl Into<DaemonSpec>`, so `Daemon::Central`
//! and `DaemonSpec::central()` are interchangeable), and its `activations`/
//! `sample` methods are kept as *independent* reference implementations so
//! the differential suites can pin the lattice path against the pre-lattice
//! enumeration bit for bit.
//!
//! Each lattice point exists in two forms: **enumerated**
//! ([`DaemonSpec::activations`]) for exhaustive model checking, and
//! **randomized** ([`DaemonSpec::sample`]) — the uniform choice of
//! Definition 6 (Dasgupta–Ghosh–Xiao) that Theorem 7 proves equivalent to
//! Gouda's strong fairness.
//!
//! # Refinement
//!
//! [`DaemonSpec::refines`] is the lattice's partial order: `a.refines(b)`
//! holds when every execution daemon `a` can produce is also an execution
//! of daemon `b` (componentwise: `a`'s activation sets are contained in
//! `b`'s, `a`'s fairness is at least as strong, `a`'s bound at least as
//! tight). The checker uses it to propagate verdicts: a property holding
//! for *all* executions under `b` holds under every `a` refining `b`, and a
//! counterexample execution found under `a` disproves the property under
//! every `b` that `a` refines.
//!
//! ```
//! use stab_core::DaemonSpec;
//! // central ⊑ locally-central ⊑ distributed
//! assert!(DaemonSpec::central().refines(DaemonSpec::locally_central()));
//! assert!(DaemonSpec::locally_central().refines(DaemonSpec::distributed()));
//! assert!(!DaemonSpec::distributed().refines(DaemonSpec::central()));
//! // synchronous is a sub-daemon of distributed but incomparable to central
//! assert!(DaemonSpec::synchronous().refines(DaemonSpec::distributed()));
//! assert!(!DaemonSpec::synchronous().refines(DaemonSpec::central()));
//! assert!(!DaemonSpec::central().refines(DaemonSpec::synchronous()));
//! ```
//!
//! # Quotients on non-ring topologies
//!
//! Lattice points interact with the symmetry machinery exactly as the four
//! legacy daemons do: the per-run equivariance gate
//! (`engine::ExploreOptions` with a quotient) re-validates, per
//! `(algorithm, daemon)` pair, that the rows of the generated transition
//! system commute with each group generator. This matters for the grid
//! topology (`stab_graph::builders::grid`), whose automorphism group
//! (row/column flips, plus the transpose on square grids) is discovered by
//! `GroupCanonicalizer::automorphism`: a radius-constrained daemon is
//! distance-invariant and thus automorphism-compatible, so the gate admits
//! grid quotients for anonymous algorithms under every `KCentral` point,
//! and rejects them for algorithms that break the flip symmetry — the same
//! admit/reject behaviour the ring rotation gate shows on Herman vs
//! Dijkstra.

use std::fmt;

use rand::Rng;
use stab_graph::{Graph, NodeId};

use crate::error::CoreError;
use crate::fairness::{Fairness, FairnessSet};

/// Maximum number of enabled processes for which the distributed daemon's
/// `2^k − 1` activations are enumerated.
pub const DISTRIBUTED_ENUM_CAP: usize = 20;

/// A non-empty set of processes activated in one step, sorted ascending.
///
/// ```
/// use stab_core::Activation;
/// use stab_graph::NodeId;
/// let a = Activation::new(vec![NodeId::new(2), NodeId::new(0)]);
/// assert_eq!(a.len(), 2);
/// assert!(a.contains(NodeId::new(0)));
/// assert_eq!(format!("{a}"), "{P0,P2}");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Activation {
    nodes: Box<[NodeId]>,
}

impl Activation {
    /// Creates an activation from a set of nodes (sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty: the paper's steps always activate at
    /// least one process.
    pub fn new(mut nodes: Vec<NodeId>) -> Self {
        assert!(
            !nodes.is_empty(),
            "an activation must contain at least one process"
        );
        nodes.sort_unstable();
        nodes.dedup();
        Activation {
            nodes: nodes.into_boxed_slice(),
        }
    }

    /// An activation of a single process (central daemon steps).
    pub fn singleton(node: NodeId) -> Self {
        Activation {
            nodes: vec![node].into_boxed_slice(),
        }
    }

    /// The activated processes in ascending order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of activated processes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Activations are never empty; provided for clippy-completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` is activated.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }
}

impl fmt::Debug for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// The four classic daemons, as a closed enum.
///
/// These are shorthand for the corresponding [`DaemonSpec`] lattice points
/// (every engine entry point accepts `impl Into<DaemonSpec>`); the enum is
/// kept because sweep-style experiments iterate [`Daemon::ALL`] and because
/// its [`Daemon::activations`]/[`Daemon::sample`] bodies serve as the
/// independent pre-lattice reference for the differential suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Daemon {
    /// Exactly one enabled process moves per step.
    Central,
    /// Any non-empty subset of enabled processes moves per step.
    Distributed,
    /// Every enabled process moves, every step.
    Synchronous,
    /// Any non-empty subset of pairwise non-adjacent enabled processes.
    LocallyCentral,
}

impl Daemon {
    /// All four daemons, for sweep-style experiments.
    pub const ALL: [Daemon; 4] = [
        Daemon::Central,
        Daemon::Distributed,
        Daemon::Synchronous,
        Daemon::LocallyCentral,
    ];

    /// Short stable name for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            Daemon::Central => "central",
            Daemon::Distributed => "distributed",
            Daemon::Synchronous => "synchronous",
            Daemon::LocallyCentral => "locally-central",
        }
    }

    /// The lattice point this daemon names (see [`DaemonSpec`]).
    pub fn spec(self) -> DaemonSpec {
        DaemonSpec::from(self)
    }

    /// Enumerates every activation this daemon allows given the enabled set.
    ///
    /// This is the *reference* enumeration for the four legacy lattice
    /// points, kept deliberately independent of
    /// [`DaemonSpec::activations`] (which generalizes it to every
    /// `(k, radius)` pair) so the differential suites can pin the lattice
    /// path against it bit for bit. Returns an empty vector when `enabled`
    /// is empty (terminal configuration — no step exists).
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyEnabled`] if the distributed or locally-central
    /// daemon would enumerate more than `2^DISTRIBUTED_ENUM_CAP` subsets.
    pub fn activations(
        self,
        graph: &Graph,
        enabled: &[NodeId],
    ) -> Result<Vec<Activation>, CoreError> {
        if enabled.is_empty() {
            return Ok(Vec::new());
        }
        match self {
            Daemon::Central => Ok(enabled.iter().map(|&v| Activation::singleton(v)).collect()),
            Daemon::Synchronous => Ok(vec![Activation::new(enabled.to_vec())]),
            Daemon::Distributed => subsets(enabled, |_| true),
            Daemon::LocallyCentral => subsets(enabled, |nodes| is_independent(graph, nodes)),
        }
    }

    /// Samples an activation according to the **randomized scheduler** of
    /// Definition 6: uniformly among the activations this daemon allows.
    ///
    /// Like [`Daemon::activations`], this is the independent reference
    /// implementation for the four legacy points; the generalized form is
    /// [`DaemonSpec::sample`], whose random streams coincide with this one
    /// on those points. Central, distributed and synchronous sampling is
    /// exactly uniform and allocation-light even for thousands of enabled
    /// processes. The locally-central daemon uses rejection sampling with a
    /// singleton fallback after 64 failures (every allowed activation keeps
    /// strictly positive probability, which is all the probabilistic
    /// convergence arguments require).
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty: terminal configurations have no steps.
    pub fn sample<R: Rng + ?Sized>(
        self,
        graph: &Graph,
        enabled: &[NodeId],
        rng: &mut R,
    ) -> Activation {
        assert!(
            !enabled.is_empty(),
            "cannot schedule in a terminal configuration"
        );
        match self {
            Daemon::Central => {
                let i = rng.random_range(0..enabled.len());
                Activation::singleton(enabled[i])
            }
            Daemon::Synchronous => Activation::new(enabled.to_vec()),
            Daemon::Distributed => loop {
                let nodes: Vec<NodeId> = enabled
                    .iter()
                    .copied()
                    .filter(|_| rng.random::<bool>())
                    .collect();
                if !nodes.is_empty() {
                    return Activation::new(nodes);
                }
            },
            Daemon::LocallyCentral => {
                for _ in 0..64 {
                    let nodes: Vec<NodeId> = enabled
                        .iter()
                        .copied()
                        .filter(|_| rng.random::<bool>())
                        .collect();
                    if !nodes.is_empty() && is_independent(graph, &nodes) {
                        return Activation::new(nodes);
                    }
                }
                let i = rng.random_range(0..enabled.len());
                Activation::singleton(enabled[i])
            }
        }
    }

    /// Number of activations the daemon allows for `k` enabled processes
    /// (locally-central depends on the graph, so it is counted by
    /// enumeration there).
    pub fn activation_count(self, graph: &Graph, enabled: &[NodeId]) -> u128 {
        // lint: cast-ok(enabled sets are bounded by the node count, far below u32)
        let k = enabled.len() as u32;
        if k == 0 {
            return 0;
        }
        match self {
            Daemon::Central => k as u128,
            Daemon::Synchronous => 1,
            Daemon::Distributed => (1u128 << k) - 1,
            Daemon::LocallyCentral => self
                .activations(graph, enabled)
                .map(|v| v.len() as u128)
                .unwrap_or(0),
        }
    }
}

impl fmt::Display for Daemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which subsets of the enabled set a daemon may activate in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// At most `k` enabled processes move per step, no two of them within
    /// graph distance `radius` of each other.
    KCentral {
        /// Maximum activation size; `None` allows any non-empty subset.
        k: Option<u32>,
        /// Activated processes must be pairwise at graph distance
        /// `> radius`: `0` imposes nothing, `1` forbids activating two
        /// neighbours (the locally-central constraint), larger radii spread
        /// the activated set further apart.
        radius: u32,
    },
    /// Every enabled process moves, every step.
    Synchronous,
}

impl Distribution {
    /// Whether every activation set this distribution allows (on any graph
    /// and any enabled set) is also allowed by `other`.
    pub fn refines(self, other: Distribution) -> bool {
        match (self, other) {
            (Distribution::Synchronous, Distribution::Synchronous) => true,
            // The full enabled set is one of the unconstrained subsets, but
            // violates any size or spacing constraint in general.
            (Distribution::Synchronous, Distribution::KCentral { k, radius }) => {
                k.is_none() && radius == 0
            }
            (Distribution::KCentral { .. }, Distribution::Synchronous) => false,
            (
                Distribution::KCentral { k: k1, radius: r1 },
                Distribution::KCentral { k: k2, radius: r2 },
            ) => {
                let k1 = k1.map_or(u64::MAX, u64::from);
                let k2 = k2.map_or(u64::MAX, u64::from);
                // Singleton activations are trivially spread, so at k ≤ 1
                // the radius imposes nothing and any radius is refined.
                k1 <= k2 && (r1 >= r2 || k1 <= 1)
            }
        }
    }
}

/// How long the daemon may overlook a continuously enabled process.
///
/// Boundedness constrains *executions* (no process stays enabled for more
/// than `k` consecutive steps without being activated), not single steps,
/// so it never changes the transition system the engine builds; it
/// participates in [`DaemonSpec::refines`] and in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Boundedness {
    /// No bound: a process may be overlooked forever (modulo fairness).
    Unbounded,
    /// A continuously enabled process is activated within `k` steps.
    EnabledBounded(u32),
}

impl Boundedness {
    /// Whether every `self`-bounded execution is also `other`-bounded.
    pub fn refines(self, other: Boundedness) -> bool {
        match (self, other) {
            (_, Boundedness::Unbounded) => true,
            (Boundedness::Unbounded, Boundedness::EnabledBounded(_)) => false,
            (Boundedness::EnabledBounded(a), Boundedness::EnabledBounded(b)) => a <= b,
        }
    }
}

/// A point of the daemon lattice: (distribution × fairness × boundedness).
///
/// The paper's four daemons are the named points [`DaemonSpec::central`],
/// [`DaemonSpec::distributed`], [`DaemonSpec::synchronous`] and
/// [`DaemonSpec::locally_central`]; the legacy [`Daemon`] enum converts
/// into them losslessly and back via [`DaemonSpec::legacy`]:
///
/// ```
/// use stab_core::{Daemon, DaemonSpec};
/// for d in Daemon::ALL {
///     let spec = DaemonSpec::from(d);
///     assert_eq!(spec.legacy(), Some(d));
///     assert_eq!(spec.name(), d.name());
/// }
/// assert_eq!(DaemonSpec::central(), DaemonSpec::from(Daemon::Central));
/// assert_eq!(DaemonSpec::distributed(), DaemonSpec::from(Daemon::Distributed));
/// assert_eq!(DaemonSpec::synchronous(), DaemonSpec::from(Daemon::Synchronous));
/// assert_eq!(DaemonSpec::locally_central(), DaemonSpec::from(Daemon::LocallyCentral));
/// ```
///
/// Points outside the legacy four compose freely:
///
/// ```
/// use stab_core::{Boundedness, DaemonSpec, Distribution, Fairness};
/// let d = DaemonSpec {
///     distribution: Distribution::KCentral { k: Some(2), radius: 1 },
///     fairness: Fairness::WeaklyFair,
///     bound: Boundedness::EnabledBounded(3),
/// };
/// assert_eq!(d.name(), "2-central-r1+weakly-fair+b3");
/// assert!(d.refines(DaemonSpec::distributed()));
/// assert_eq!(d.legacy(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DaemonSpec {
    /// Which activation sets single steps may use.
    pub distribution: Distribution,
    /// Which infinite executions the daemon may produce.
    pub fairness: Fairness,
    /// How long a continuously enabled process may be overlooked.
    pub bound: Boundedness,
}

impl DaemonSpec {
    /// The paper's four daemons as lattice points, in [`Daemon::ALL`] order.
    pub const LEGACY: [DaemonSpec; 4] = [
        DaemonSpec::central(),
        DaemonSpec::distributed(),
        DaemonSpec::synchronous(),
        DaemonSpec::locally_central(),
    ];

    /// Exactly one enabled process moves per step (Dijkstra).
    pub const fn central() -> Self {
        DaemonSpec {
            distribution: Distribution::KCentral {
                k: Some(1),
                radius: 0,
            },
            fairness: Fairness::Unfair,
            bound: Boundedness::Unbounded,
        }
    }

    /// Any non-empty subset of enabled processes moves per step
    /// (Burns–Gouda–Miller).
    pub const fn distributed() -> Self {
        DaemonSpec {
            distribution: Distribution::KCentral { k: None, radius: 0 },
            fairness: Fairness::Unfair,
            bound: Boundedness::Unbounded,
        }
    }

    /// Every enabled process moves, every step (Herman).
    pub const fn synchronous() -> Self {
        DaemonSpec {
            distribution: Distribution::Synchronous,
            fairness: Fairness::Unfair,
            bound: Boundedness::Unbounded,
        }
    }

    /// Any non-empty subset of pairwise non-adjacent enabled processes.
    pub const fn locally_central() -> Self {
        DaemonSpec {
            distribution: Distribution::KCentral { k: None, radius: 1 },
            fairness: Fairness::Unfair,
            bound: Boundedness::Unbounded,
        }
    }

    /// This point with a different fairness component.
    #[must_use]
    pub const fn with_fairness(mut self, fairness: Fairness) -> Self {
        self.fairness = fairness;
        self
    }

    /// This point with a different boundedness component.
    #[must_use]
    pub const fn with_bound(mut self, bound: Boundedness) -> Self {
        self.bound = bound;
        self
    }

    /// The legacy [`Daemon`] this point encodes, if it is one of the four.
    ///
    /// Only the exact encodings used by the named constructors round-trip;
    /// behaviourally equivalent but distinct encodings (e.g. `k = Some(1)`
    /// with a positive radius) return `None`.
    pub fn legacy(&self) -> Option<Daemon> {
        if self.fairness != Fairness::Unfair || self.bound != Boundedness::Unbounded {
            return None;
        }
        match self.distribution {
            Distribution::Synchronous => Some(Daemon::Synchronous),
            Distribution::KCentral {
                k: Some(1),
                radius: 0,
            } => Some(Daemon::Central),
            Distribution::KCentral { k: None, radius: 0 } => Some(Daemon::Distributed),
            Distribution::KCentral { k: None, radius: 1 } => Some(Daemon::LocallyCentral),
            Distribution::KCentral { .. } => None,
        }
    }

    /// Stable name for tables, reports and run fingerprints.
    ///
    /// The four legacy points keep their historical names (`"central"`,
    /// `"distributed"`, `"synchronous"`, `"locally-central"`), so study
    /// reports and exploration fingerprints are unchanged for them; other
    /// points compose as `<distribution>[+<fairness>][+b<bound>]`.
    pub fn name(&self) -> String {
        if let Some(d) = self.legacy() {
            return d.name().to_string();
        }
        let mut s = match self.distribution {
            Distribution::Synchronous => "synchronous".to_string(),
            Distribution::KCentral {
                k: Some(1),
                radius: _,
            } => "central".to_string(),
            Distribution::KCentral { k: None, radius: 0 } => "distributed".to_string(),
            Distribution::KCentral { k: None, radius: 1 } => "locally-central".to_string(),
            Distribution::KCentral { k: None, radius } => format!("distributed-r{radius}"),
            Distribution::KCentral {
                k: Some(k),
                radius: 0,
            } => format!("{k}-central"),
            Distribution::KCentral { k: Some(k), radius } => format!("{k}-central-r{radius}"),
        };
        if self.fairness != Fairness::Unfair {
            s.push('+');
            s.push_str(self.fairness.name());
        }
        if let Boundedness::EnabledBounded(b) = self.bound {
            s.push_str(&format!("+b{b}"));
        }
        s
    }

    /// The lattice refinement order: whether every execution this daemon
    /// can produce is also an execution of `other`.
    ///
    /// Componentwise: `self`'s activation sets are contained in `other`'s
    /// ([`Distribution::refines`]), `self`'s fairness is at least as strong
    /// ([`Fairness::refines`]) and `self`'s bound at least as tight
    /// ([`Boundedness::refines`]). A property quantified over all
    /// executions that holds under `other` therefore holds under `self`,
    /// and a counterexample under `self` disproves it under `other`.
    pub fn refines(&self, other: DaemonSpec) -> bool {
        self.distribution.refines(other.distribution)
            && self.fairness.refines(other.fairness)
            && self.bound.refines(other.bound)
    }

    /// The fairness assumptions at least as strong as this daemon's own:
    /// the set of self-stabilization verdicts meaningful under it. For the
    /// unfair legacy points this is every assumption, which is the checker
    /// default.
    pub fn implied_verdicts(&self) -> FairnessSet {
        Fairness::ALL
            .into_iter()
            .filter(|f| f.refines(self.fairness))
            .collect()
    }

    /// Enumerates every activation this lattice point allows given the
    /// enabled set. On the four legacy points this reproduces
    /// [`Daemon::activations`] exactly — same activations, same order.
    ///
    /// Returns an empty vector when `enabled` is empty (terminal
    /// configuration — no step exists).
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyEnabled`] if a subset-valued distribution would
    /// enumerate more than `2^DISTRIBUTED_ENUM_CAP` subsets.
    pub fn activations(
        &self,
        graph: &Graph,
        enabled: &[NodeId],
    ) -> Result<Vec<Activation>, CoreError> {
        if enabled.is_empty() {
            return Ok(Vec::new());
        }
        match self.distribution {
            Distribution::Synchronous => Ok(vec![Activation::new(enabled.to_vec())]),
            // k = 1: singletons trivially satisfy every spacing constraint,
            // and the direct path has no enumeration cap (like the legacy
            // central daemon).
            Distribution::KCentral { k: Some(1), .. } => {
                Ok(enabled.iter().map(|&v| Activation::singleton(v)).collect())
            }
            Distribution::KCentral { k, radius } => subsets(enabled, |nodes| {
                k.is_none_or(|k| nodes.len() as u64 <= u64::from(k))
                    && is_spread(graph, nodes, radius)
            }),
        }
    }

    /// Samples an activation according to the randomized scheduler of
    /// Definition 6. On the four legacy points this consumes the random
    /// stream exactly as [`Daemon::sample`] does, so seeded simulations are
    /// reproducible across the enum/lattice boundary.
    ///
    /// Constrained points (`k` finite and above 1, or a positive radius)
    /// use rejection sampling with a singleton fallback after 64 failures;
    /// every allowed activation keeps strictly positive probability, which
    /// is all the probabilistic convergence arguments require.
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty: terminal configurations have no steps.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        enabled: &[NodeId],
        rng: &mut R,
    ) -> Activation {
        assert!(
            !enabled.is_empty(),
            "cannot schedule in a terminal configuration"
        );
        match self.distribution {
            Distribution::Synchronous => Activation::new(enabled.to_vec()),
            Distribution::KCentral { k: Some(1), .. } => {
                let i = rng.random_range(0..enabled.len());
                Activation::singleton(enabled[i])
            }
            Distribution::KCentral { k: None, radius: 0 } => loop {
                let nodes: Vec<NodeId> = enabled
                    .iter()
                    .copied()
                    .filter(|_| rng.random::<bool>())
                    .collect();
                if !nodes.is_empty() {
                    return Activation::new(nodes);
                }
            },
            Distribution::KCentral { k, radius } => {
                for _ in 0..64 {
                    let nodes: Vec<NodeId> = enabled
                        .iter()
                        .copied()
                        .filter(|_| rng.random::<bool>())
                        .collect();
                    if !nodes.is_empty()
                        && k.is_none_or(|k| nodes.len() as u64 <= u64::from(k))
                        && is_spread(graph, &nodes, radius)
                    {
                        return Activation::new(nodes);
                    }
                }
                let i = rng.random_range(0..enabled.len());
                Activation::singleton(enabled[i])
            }
        }
    }

    /// Number of activations this point allows for the given enabled set
    /// (constrained points are counted by enumeration).
    pub fn activation_count(&self, graph: &Graph, enabled: &[NodeId]) -> u128 {
        // lint: cast-ok(enabled sets are bounded by the node count, far below u32)
        let n = enabled.len() as u32;
        if n == 0 {
            return 0;
        }
        match self.distribution {
            Distribution::Synchronous => 1,
            Distribution::KCentral { k: Some(1), .. } => u128::from(n),
            Distribution::KCentral { k: None, radius: 0 } => (1u128 << n) - 1,
            Distribution::KCentral { .. } => self
                .activations(graph, enabled)
                .map(|v| v.len() as u128)
                .unwrap_or(0),
        }
    }
}

impl From<Daemon> for DaemonSpec {
    fn from(d: Daemon) -> Self {
        match d {
            Daemon::Central => DaemonSpec::central(),
            Daemon::Distributed => DaemonSpec::distributed(),
            Daemon::Synchronous => DaemonSpec::synchronous(),
            Daemon::LocallyCentral => DaemonSpec::locally_central(),
        }
    }
}

impl PartialEq<Daemon> for DaemonSpec {
    fn eq(&self, other: &Daemon) -> bool {
        self.legacy() == Some(*other)
    }
}

impl PartialEq<DaemonSpec> for Daemon {
    fn eq(&self, other: &DaemonSpec) -> bool {
        other.legacy() == Some(*self)
    }
}

impl fmt::Display for DaemonSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Enumerates the non-empty subsets of `enabled` passing `keep`, in the
/// mask order both the legacy daemons and the lattice points share.
fn subsets(
    enabled: &[NodeId],
    keep: impl Fn(&[NodeId]) -> bool,
) -> Result<Vec<Activation>, CoreError> {
    let k = enabled.len();
    if k > DISTRIBUTED_ENUM_CAP {
        return Err(CoreError::TooManyEnabled {
            enabled: k,
            cap: DISTRIBUTED_ENUM_CAP,
        });
    }
    let mut out = Vec::with_capacity((1usize << k) - 1);
    for mask in 1u32..(1u32 << k) {
        let nodes: Vec<NodeId> = (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| enabled[i])
            .collect();
        if keep(&nodes) {
            out.push(Activation::new(nodes));
        }
    }
    Ok(out)
}

/// Whether no two of `nodes` are adjacent in `graph`.
fn is_independent(graph: &Graph, nodes: &[NodeId]) -> bool {
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            if graph.are_adjacent(a, b) {
                return false;
            }
        }
    }
    true
}

/// Whether all of `nodes` are pairwise at graph distance `> radius`.
///
/// `radius == 0` imposes nothing; `radius == 1` is exactly independence.
fn is_spread(graph: &Graph, nodes: &[NodeId], radius: u32) -> bool {
    match radius {
        0 => true,
        1 => is_independent(graph, nodes),
        _ => {
            for (i, &a) in nodes.iter().enumerate() {
                for &b in &nodes[i + 1..] {
                    if within_distance(graph, a, b, radius) {
                        return false;
                    }
                }
            }
            true
        }
    }
}

/// Whether `graph` has a path of length ≤ `radius` between `a` and `b`
/// (bounded BFS from `a`).
fn within_distance(graph: &Graph, a: NodeId, b: NodeId, radius: u32) -> bool {
    if a == b {
        return true;
    }
    let n = graph.n();
    let mut dist = vec![u32::MAX; n];
    dist[a.index()] = 0;
    let mut queue = std::collections::VecDeque::from([a]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d >= radius {
            continue;
        }
        for &w in graph.neighbors(v) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                if w == b {
                    return true;
                }
                queue.push_back(w);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stab_graph::builders;
    use std::collections::HashSet;

    fn nodes(ids: &[usize]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn activation_sorts_and_dedups() {
        let a = Activation::new(nodes(&[3, 1, 3, 2]));
        assert_eq!(a.nodes(), &nodes(&[1, 2, 3])[..]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_activation_rejected() {
        let _ = Activation::new(Vec::new());
    }

    #[test]
    fn central_daemon_enumerates_singletons() {
        let g = builders::path(4);
        let acts = Daemon::Central.activations(&g, &nodes(&[0, 2])).unwrap();
        assert_eq!(acts.len(), 2);
        assert!(acts.iter().all(|a| a.len() == 1));
    }

    #[test]
    fn synchronous_daemon_has_single_choice() {
        let g = builders::path(4);
        let acts = Daemon::Synchronous
            .activations(&g, &nodes(&[0, 1, 3]))
            .unwrap();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].nodes(), &nodes(&[0, 1, 3])[..]);
    }

    #[test]
    fn distributed_daemon_enumerates_all_nonempty_subsets() {
        let g = builders::path(5);
        let acts = Daemon::Distributed
            .activations(&g, &nodes(&[0, 1, 2]))
            .unwrap();
        assert_eq!(acts.len(), 7); // 2^3 - 1
        let unique: HashSet<_> = acts.iter().cloned().collect();
        assert_eq!(unique.len(), 7);
    }

    #[test]
    fn locally_central_excludes_adjacent_pairs() {
        let g = builders::path(3);
        // Nodes 0 and 1 are adjacent; 0 and 2 are not.
        let acts = Daemon::LocallyCentral
            .activations(&g, &nodes(&[0, 1, 2]))
            .unwrap();
        // Allowed: {0}, {1}, {2}, {0,2}. Forbidden: {0,1}, {1,2}, {0,1,2}.
        assert_eq!(acts.len(), 4);
        assert!(acts.contains(&Activation::new(nodes(&[0, 2]))));
        assert!(!acts.contains(&Activation::new(nodes(&[0, 1]))));
    }

    #[test]
    fn empty_enabled_set_has_no_activations() {
        let g = builders::path(3);
        for d in Daemon::ALL {
            assert!(d.activations(&g, &[]).unwrap().is_empty());
            assert_eq!(d.activation_count(&g, &[]), 0);
            let spec = DaemonSpec::from(d);
            assert!(spec.activations(&g, &[]).unwrap().is_empty());
            assert_eq!(spec.activation_count(&g, &[]), 0);
        }
    }

    #[test]
    fn distributed_enumeration_cap() {
        let g = builders::ring(30);
        let enabled: Vec<NodeId> = g.nodes().collect();
        let err = Daemon::Distributed.activations(&g, &enabled).unwrap_err();
        assert_eq!(
            err,
            CoreError::TooManyEnabled {
                enabled: 30,
                cap: DISTRIBUTED_ENUM_CAP
            }
        );
        let err = DaemonSpec::distributed()
            .activations(&g, &enabled)
            .unwrap_err();
        assert!(matches!(err, CoreError::TooManyEnabled { enabled: 30, .. }));
        // The central point has no cap, like the legacy enum.
        assert_eq!(
            DaemonSpec::central()
                .activations(&g, &enabled)
                .unwrap()
                .len(),
            30
        );
    }

    #[test]
    fn activation_counts_match_enumeration() {
        let g = builders::ring(5);
        let enabled = nodes(&[0, 1, 3]);
        for d in Daemon::ALL {
            let count = d.activation_count(&g, &enabled);
            let enumerated = d.activations(&g, &enabled).unwrap().len() as u128;
            assert_eq!(count, enumerated, "daemon {d}");
        }
    }

    #[test]
    fn sampling_respects_daemon_shape() {
        let g = builders::ring(6);
        let enabled = nodes(&[0, 2, 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(Daemon::Central.sample(&g, &enabled, &mut rng).len(), 1);
            assert_eq!(Daemon::Synchronous.sample(&g, &enabled, &mut rng).len(), 3);
            let d = Daemon::Distributed.sample(&g, &enabled, &mut rng);
            assert!(!d.nodes().is_empty() && d.len() <= 3);
            let lc = Daemon::LocallyCentral.sample(&g, &enabled, &mut rng);
            assert!(is_independent(&g, lc.nodes()));
        }
    }

    #[test]
    fn distributed_sampling_is_roughly_uniform() {
        // 3 enabled processes -> 7 subsets, each with probability 1/7.
        let g = builders::path(6);
        let enabled = nodes(&[0, 2, 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut counts: std::collections::HashMap<Activation, usize> = Default::default();
        let trials = 14_000;
        for _ in 0..trials {
            *counts
                .entry(Daemon::Distributed.sample(&g, &enabled, &mut rng))
                .or_default() += 1;
        }
        assert_eq!(counts.len(), 7);
        for (act, c) in &counts {
            let freq = *c as f64 / trials as f64;
            assert!(
                (freq - 1.0 / 7.0).abs() < 0.02,
                "activation {act} frequency {freq}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "terminal configuration")]
    fn sampling_empty_enabled_panics() {
        let g = builders::path(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = Daemon::Central.sample(&g, &[], &mut rng);
    }

    #[test]
    fn daemon_names_are_stable() {
        assert_eq!(Daemon::Central.to_string(), "central");
        assert_eq!(Daemon::Distributed.to_string(), "distributed");
        assert_eq!(Daemon::Synchronous.to_string(), "synchronous");
        assert_eq!(Daemon::LocallyCentral.to_string(), "locally-central");
        // The lattice points reuse the legacy names verbatim, so report
        // strings and run fingerprints are stable across the encoding.
        for d in Daemon::ALL {
            assert_eq!(DaemonSpec::from(d).to_string(), d.to_string());
        }
    }

    #[test]
    fn lattice_points_match_legacy_enumeration() {
        let g = builders::ring(6);
        let enabled = nodes(&[0, 1, 3, 4]);
        for d in Daemon::ALL {
            let legacy = d.activations(&g, &enabled).unwrap();
            let lattice = DaemonSpec::from(d).activations(&g, &enabled).unwrap();
            assert_eq!(legacy, lattice, "daemon {d}: order and support");
        }
    }

    #[test]
    fn lattice_points_match_legacy_sampling_streams() {
        let g = builders::ring(6);
        let enabled = nodes(&[0, 1, 3, 4]);
        for d in Daemon::ALL {
            let spec = DaemonSpec::from(d);
            let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
            let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
            for _ in 0..200 {
                assert_eq!(
                    d.sample(&g, &enabled, &mut r1),
                    spec.sample(&g, &enabled, &mut r2),
                    "daemon {d}"
                );
            }
        }
    }

    #[test]
    fn k_central_limits_activation_size() {
        let g = builders::ring(6);
        let enabled = nodes(&[0, 1, 2, 3]);
        let two_central = DaemonSpec {
            distribution: Distribution::KCentral {
                k: Some(2),
                radius: 0,
            },
            ..DaemonSpec::distributed()
        };
        let acts = two_central.activations(&g, &enabled).unwrap();
        // C(4,1) + C(4,2) = 4 + 6.
        assert_eq!(acts.len(), 10);
        assert!(acts.iter().all(|a| a.len() <= 2));
        assert_eq!(two_central.activation_count(&g, &enabled), 10);
    }

    #[test]
    fn radius_two_spreads_beyond_adjacency() {
        // On an 8-ring, nodes 0 and 2 are at distance 2: allowed by the
        // locally-central constraint (radius 1), rejected at radius 2.
        let g = builders::ring(8);
        let enabled = nodes(&[0, 2, 4]);
        let r2 = DaemonSpec {
            distribution: Distribution::KCentral { k: None, radius: 2 },
            ..DaemonSpec::distributed()
        };
        let acts = r2.activations(&g, &enabled).unwrap();
        assert!(acts.contains(&Activation::new(nodes(&[0, 4]))));
        assert!(!acts.contains(&Activation::new(nodes(&[0, 2]))));
        let r1 = DaemonSpec::locally_central();
        assert!(r1
            .activations(&g, &enabled)
            .unwrap()
            .contains(&Activation::new(nodes(&[0, 2]))));
    }

    #[test]
    fn refinement_chain_of_named_points() {
        let c = DaemonSpec::central();
        let lc = DaemonSpec::locally_central();
        let d = DaemonSpec::distributed();
        let s = DaemonSpec::synchronous();
        assert!(c.refines(lc) && lc.refines(d) && c.refines(d));
        assert!(s.refines(d));
        assert!(!d.refines(c) && !d.refines(lc) && !d.refines(s));
        assert!(!s.refines(c) && !c.refines(s));
        for p in DaemonSpec::LEGACY {
            assert!(p.refines(p), "reflexive at {p}");
        }
    }

    #[test]
    fn fairness_and_bound_participate_in_refinement() {
        let d = DaemonSpec::distributed();
        let weakly = d.with_fairness(Fairness::WeaklyFair);
        assert!(weakly.refines(d));
        assert!(!d.refines(weakly));
        let b3 = d.with_bound(Boundedness::EnabledBounded(3));
        let b5 = d.with_bound(Boundedness::EnabledBounded(5));
        assert!(b3.refines(b5) && b5.refines(d));
        assert!(!d.refines(b5) && !b5.refines(b3));
    }

    #[test]
    fn implied_verdicts_follow_fairness() {
        assert_eq!(
            DaemonSpec::distributed().implied_verdicts(),
            FairnessSet::ALL
        );
        let weakly = DaemonSpec::distributed().with_fairness(Fairness::WeaklyFair);
        let set = weakly.implied_verdicts();
        assert!(!set.contains(Fairness::Unfair));
        assert!(set.contains(Fairness::WeaklyFair));
        assert!(set.contains(Fairness::StronglyFair));
        assert!(set.contains(Fairness::Gouda));
    }

    #[test]
    fn legacy_equality_bridges_enum_and_spec() {
        for d in Daemon::ALL {
            assert_eq!(DaemonSpec::from(d), d);
            assert_eq!(d, DaemonSpec::from(d));
        }
        assert_ne!(DaemonSpec::central(), Daemon::Distributed);
        let off_lattice = DaemonSpec::distributed().with_fairness(Fairness::Gouda);
        for d in Daemon::ALL {
            assert_ne!(off_lattice, d);
        }
    }

    #[test]
    fn composed_names_are_stable() {
        let two = DaemonSpec {
            distribution: Distribution::KCentral {
                k: Some(2),
                radius: 0,
            },
            ..DaemonSpec::distributed()
        };
        assert_eq!(two.name(), "2-central");
        let spread = DaemonSpec {
            distribution: Distribution::KCentral { k: None, radius: 2 },
            ..DaemonSpec::distributed()
        };
        assert_eq!(spread.name(), "distributed-r2");
        let full = DaemonSpec {
            distribution: Distribution::KCentral {
                k: Some(3),
                radius: 1,
            },
            fairness: Fairness::StronglyFair,
            bound: Boundedness::EnabledBounded(7),
        };
        assert_eq!(full.name(), "3-central-r1+strongly-fair+b7");
        let sync_fair = DaemonSpec::synchronous().with_fairness(Fairness::WeaklyFair);
        assert_eq!(sync_fair.name(), "synchronous+weakly-fair");
    }
}
