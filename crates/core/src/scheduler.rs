//! Schedulers (daemons): who moves at each step.
//!
//! A scheduler picks a non-empty subset of the enabled processes to execute
//! simultaneously (§2 of the paper). This module provides the four daemons
//! of the self-stabilization literature used by the paper:
//!
//! * [`Daemon::Central`] — exactly one enabled process per step (Dijkstra);
//! * [`Daemon::Distributed`] — any non-empty subset (Burns–Gouda–Miller);
//! * [`Daemon::Synchronous`] — every enabled process, every step (Herman);
//! * [`Daemon::LocallyCentral`] — any non-empty subset containing no two
//!   neighbours (a common intermediate daemon, used by ablation studies).
//!
//! Each daemon exists in two forms: **enumerated** ([`Daemon::activations`])
//! for exhaustive model checking, and **randomized** ([`Daemon::sample`]) —
//! the uniform choice of Definition 6 (Dasgupta–Ghosh–Xiao) that Theorem 7
//! proves equivalent to Gouda's strong fairness.

use std::fmt;

use rand::Rng;
use stab_graph::{Graph, NodeId};

use crate::error::CoreError;

/// Maximum number of enabled processes for which the distributed daemon's
/// `2^k − 1` activations are enumerated.
pub const DISTRIBUTED_ENUM_CAP: usize = 20;

/// A non-empty set of processes activated in one step, sorted ascending.
///
/// ```
/// use stab_core::Activation;
/// use stab_graph::NodeId;
/// let a = Activation::new(vec![NodeId::new(2), NodeId::new(0)]);
/// assert_eq!(a.len(), 2);
/// assert!(a.contains(NodeId::new(0)));
/// assert_eq!(format!("{a}"), "{P0,P2}");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Activation {
    nodes: Box<[NodeId]>,
}

impl Activation {
    /// Creates an activation from a set of nodes (sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty: the paper's steps always activate at
    /// least one process.
    pub fn new(mut nodes: Vec<NodeId>) -> Self {
        assert!(
            !nodes.is_empty(),
            "an activation must contain at least one process"
        );
        nodes.sort_unstable();
        nodes.dedup();
        Activation {
            nodes: nodes.into_boxed_slice(),
        }
    }

    /// An activation of a single process (central daemon steps).
    pub fn singleton(node: NodeId) -> Self {
        Activation {
            nodes: vec![node].into_boxed_slice(),
        }
    }

    /// The activated processes in ascending order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of activated processes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Activations are never empty; provided for clippy-completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` is activated.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }
}

impl fmt::Debug for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// The scheduler family: how many (and which) enabled processes may move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Daemon {
    /// Exactly one enabled process moves per step.
    Central,
    /// Any non-empty subset of enabled processes moves per step.
    Distributed,
    /// Every enabled process moves, every step.
    Synchronous,
    /// Any non-empty subset of pairwise non-adjacent enabled processes.
    LocallyCentral,
}

impl Daemon {
    /// All four daemons, for sweep-style experiments.
    pub const ALL: [Daemon; 4] = [
        Daemon::Central,
        Daemon::Distributed,
        Daemon::Synchronous,
        Daemon::LocallyCentral,
    ];

    /// Short stable name for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            Daemon::Central => "central",
            Daemon::Distributed => "distributed",
            Daemon::Synchronous => "synchronous",
            Daemon::LocallyCentral => "locally-central",
        }
    }

    /// Enumerates every activation this daemon allows given the enabled set.
    ///
    /// Returns an empty vector when `enabled` is empty (terminal
    /// configuration — no step exists).
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyEnabled`] if the distributed or locally-central
    /// daemon would enumerate more than `2^DISTRIBUTED_ENUM_CAP` subsets.
    pub fn activations(
        self,
        graph: &Graph,
        enabled: &[NodeId],
    ) -> Result<Vec<Activation>, CoreError> {
        if enabled.is_empty() {
            return Ok(Vec::new());
        }
        match self {
            Daemon::Central => Ok(enabled.iter().map(|&v| Activation::singleton(v)).collect()),
            Daemon::Synchronous => Ok(vec![Activation::new(enabled.to_vec())]),
            Daemon::Distributed => Self::subsets(enabled, |_| true),
            Daemon::LocallyCentral => Self::subsets(enabled, |nodes| is_independent(graph, nodes)),
        }
    }

    fn subsets(
        enabled: &[NodeId],
        keep: impl Fn(&[NodeId]) -> bool,
    ) -> Result<Vec<Activation>, CoreError> {
        let k = enabled.len();
        if k > DISTRIBUTED_ENUM_CAP {
            return Err(CoreError::TooManyEnabled {
                enabled: k,
                cap: DISTRIBUTED_ENUM_CAP,
            });
        }
        let mut out = Vec::with_capacity((1usize << k) - 1);
        for mask in 1u32..(1u32 << k) {
            let nodes: Vec<NodeId> = (0..k)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| enabled[i])
                .collect();
            if keep(&nodes) {
                out.push(Activation::new(nodes));
            }
        }
        Ok(out)
    }

    /// Samples an activation according to the **randomized scheduler** of
    /// Definition 6: uniformly among the activations this daemon allows.
    ///
    /// Central, distributed and synchronous sampling is exactly uniform and
    /// allocation-light even for thousands of enabled processes. The
    /// locally-central daemon uses rejection sampling with a singleton
    /// fallback after 64 failures (every allowed activation keeps strictly
    /// positive probability, which is all the probabilistic convergence
    /// arguments require).
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty: terminal configurations have no steps.
    pub fn sample<R: Rng + ?Sized>(
        self,
        graph: &Graph,
        enabled: &[NodeId],
        rng: &mut R,
    ) -> Activation {
        assert!(
            !enabled.is_empty(),
            "cannot schedule in a terminal configuration"
        );
        match self {
            Daemon::Central => {
                let i = rng.random_range(0..enabled.len());
                Activation::singleton(enabled[i])
            }
            Daemon::Synchronous => Activation::new(enabled.to_vec()),
            Daemon::Distributed => loop {
                let nodes: Vec<NodeId> = enabled
                    .iter()
                    .copied()
                    .filter(|_| rng.random::<bool>())
                    .collect();
                if !nodes.is_empty() {
                    return Activation::new(nodes);
                }
            },
            Daemon::LocallyCentral => {
                for _ in 0..64 {
                    let nodes: Vec<NodeId> = enabled
                        .iter()
                        .copied()
                        .filter(|_| rng.random::<bool>())
                        .collect();
                    if !nodes.is_empty() && is_independent(graph, &nodes) {
                        return Activation::new(nodes);
                    }
                }
                let i = rng.random_range(0..enabled.len());
                Activation::singleton(enabled[i])
            }
        }
    }

    /// Number of activations the daemon allows for `k` enabled processes
    /// (locally-central depends on the graph, so it is counted by
    /// enumeration there).
    pub fn activation_count(self, graph: &Graph, enabled: &[NodeId]) -> u128 {
        let k = enabled.len() as u32;
        if k == 0 {
            return 0;
        }
        match self {
            Daemon::Central => k as u128,
            Daemon::Synchronous => 1,
            Daemon::Distributed => (1u128 << k) - 1,
            Daemon::LocallyCentral => self
                .activations(graph, enabled)
                .map(|v| v.len() as u128)
                .unwrap_or(0),
        }
    }
}

impl fmt::Display for Daemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether no two of `nodes` are adjacent in `graph`.
fn is_independent(graph: &Graph, nodes: &[NodeId]) -> bool {
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            if graph.are_adjacent(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stab_graph::builders;
    use std::collections::HashSet;

    fn nodes(ids: &[usize]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn activation_sorts_and_dedups() {
        let a = Activation::new(nodes(&[3, 1, 3, 2]));
        assert_eq!(a.nodes(), &nodes(&[1, 2, 3])[..]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_activation_rejected() {
        let _ = Activation::new(Vec::new());
    }

    #[test]
    fn central_daemon_enumerates_singletons() {
        let g = builders::path(4);
        let acts = Daemon::Central.activations(&g, &nodes(&[0, 2])).unwrap();
        assert_eq!(acts.len(), 2);
        assert!(acts.iter().all(|a| a.len() == 1));
    }

    #[test]
    fn synchronous_daemon_has_single_choice() {
        let g = builders::path(4);
        let acts = Daemon::Synchronous
            .activations(&g, &nodes(&[0, 1, 3]))
            .unwrap();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].nodes(), &nodes(&[0, 1, 3])[..]);
    }

    #[test]
    fn distributed_daemon_enumerates_all_nonempty_subsets() {
        let g = builders::path(5);
        let acts = Daemon::Distributed
            .activations(&g, &nodes(&[0, 1, 2]))
            .unwrap();
        assert_eq!(acts.len(), 7); // 2^3 - 1
        let unique: HashSet<_> = acts.iter().cloned().collect();
        assert_eq!(unique.len(), 7);
    }

    #[test]
    fn locally_central_excludes_adjacent_pairs() {
        let g = builders::path(3);
        // Nodes 0 and 1 are adjacent; 0 and 2 are not.
        let acts = Daemon::LocallyCentral
            .activations(&g, &nodes(&[0, 1, 2]))
            .unwrap();
        // Allowed: {0}, {1}, {2}, {0,2}. Forbidden: {0,1}, {1,2}, {0,1,2}.
        assert_eq!(acts.len(), 4);
        assert!(acts.contains(&Activation::new(nodes(&[0, 2]))));
        assert!(!acts.contains(&Activation::new(nodes(&[0, 1]))));
    }

    #[test]
    fn empty_enabled_set_has_no_activations() {
        let g = builders::path(3);
        for d in Daemon::ALL {
            assert!(d.activations(&g, &[]).unwrap().is_empty());
            assert_eq!(d.activation_count(&g, &[]), 0);
        }
    }

    #[test]
    fn distributed_enumeration_cap() {
        let g = builders::ring(30);
        let enabled: Vec<NodeId> = g.nodes().collect();
        let err = Daemon::Distributed.activations(&g, &enabled).unwrap_err();
        assert_eq!(
            err,
            CoreError::TooManyEnabled {
                enabled: 30,
                cap: DISTRIBUTED_ENUM_CAP
            }
        );
    }

    #[test]
    fn activation_counts_match_enumeration() {
        let g = builders::ring(5);
        let enabled = nodes(&[0, 1, 3]);
        for d in Daemon::ALL {
            let count = d.activation_count(&g, &enabled);
            let enumerated = d.activations(&g, &enabled).unwrap().len() as u128;
            assert_eq!(count, enumerated, "daemon {d}");
        }
    }

    #[test]
    fn sampling_respects_daemon_shape() {
        let g = builders::ring(6);
        let enabled = nodes(&[0, 2, 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(Daemon::Central.sample(&g, &enabled, &mut rng).len(), 1);
            assert_eq!(Daemon::Synchronous.sample(&g, &enabled, &mut rng).len(), 3);
            let d = Daemon::Distributed.sample(&g, &enabled, &mut rng);
            assert!(!d.nodes().is_empty() && d.len() <= 3);
            let lc = Daemon::LocallyCentral.sample(&g, &enabled, &mut rng);
            assert!(is_independent(&g, lc.nodes()));
        }
    }

    #[test]
    fn distributed_sampling_is_roughly_uniform() {
        // 3 enabled processes -> 7 subsets, each with probability 1/7.
        let g = builders::path(6);
        let enabled = nodes(&[0, 2, 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut counts: std::collections::HashMap<Activation, usize> = Default::default();
        let trials = 14_000;
        for _ in 0..trials {
            *counts
                .entry(Daemon::Distributed.sample(&g, &enabled, &mut rng))
                .or_default() += 1;
        }
        assert_eq!(counts.len(), 7);
        for (act, c) in &counts {
            let freq = *c as f64 / trials as f64;
            assert!(
                (freq - 1.0 / 7.0).abs() < 0.02,
                "activation {act} frequency {freq}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "terminal configuration")]
    fn sampling_empty_enabled_panics() {
        let g = builders::path(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = Daemon::Central.sample(&g, &[], &mut rng);
    }

    #[test]
    fn daemon_names_are_stable() {
        assert_eq!(Daemon::Central.to_string(), "central");
        assert_eq!(Daemon::Distributed.to_string(), "distributed");
        assert_eq!(Daemon::Synchronous.to_string(), "synchronous");
        assert_eq!(Daemon::LocallyCentral.to_string(), "locally-central");
    }
}
