//! Error type for the kernel's fallible operations.

use std::error::Error;
use std::fmt;

/// Errors raised by state-space enumeration and scheduler enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The full configuration space exceeds the requested cap; exhaustive
    /// analyses must fall back to sampling.
    StateSpaceTooLarge {
        /// Number of configurations (saturating).
        total: u128,
        /// The cap that was exceeded.
        cap: u64,
    },
    /// Enumerating all activations of the distributed daemon would produce
    /// `2^k − 1` subsets for `k` enabled processes; `k` exceeded the cap.
    TooManyEnabled {
        /// Number of enabled processes.
        enabled: usize,
        /// Maximum supported for enumeration.
        cap: usize,
    },
    /// A node has an empty state space, so no configuration exists.
    EmptyStateSpace {
        /// The node with no states.
        node: usize,
    },
    /// A symmetry quotient was requested for a system it does not apply
    /// to: the group does not fit the topology, state alphabets break the
    /// symmetry, or the per-run equivariance gate found the algorithm or
    /// specification not to respect the group.
    QuotientUnsupported {
        /// Human-readable reason.
        reason: String,
    },
    /// A reachable-mode `max_states` cap above the engine's u32
    /// configuration-id width was requested. Such a cap could never be
    /// enforced (interning fails at the id width first), so it is
    /// rejected up front rather than silently clamped.
    StateCapExceedsIdWidth {
        /// The requested cap.
        requested: u64,
        /// The enforceable maximum (`u32::MAX`).
        limit: u64,
    },
    /// An operation that exists only on the flat edge-store tier (borrowed
    /// `&[Edge]` row slices) was requested on the compressed tier, whose
    /// rows exist only in decoded form. Iterate the row cursor
    /// (`edge_iter` / `row_iter`) instead, which works on both tiers.
    FlatStoreRequired {
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A cooperative [`Budget`](crate::engine::Budget) probe found a
    /// resource limit exhausted. Stages that receive this degrade
    /// gracefully (a `Degraded` status in the study report) instead of
    /// panicking or overcommitting memory.
    BudgetExhausted {
        /// The pipeline stage that hit the limit.
        stage: &'static str,
        /// Which resource ran out (`"wall-time-ms"` / `"bytes"` /
        /// `"states"` / `"fault-injected"`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// The usage observed at the probe.
        used: u64,
    },
    /// A fault-injection kill-point fired: the
    /// [`FaultPlan`](crate::engine::FaultPlan) requested the run die right
    /// after the k-th durable checkpoint frame, simulating an abrupt
    /// process death whose on-disk frames survive. Re-running the same
    /// exploration with the same checkpoint directory resumes from those
    /// frames.
    Interrupted {
        /// Number of durable frames written before the injected death.
        after_frames: u64,
    },
    /// A checkpoint file could not be read or written.
    CheckpointIo {
        /// The offending path (or directory).
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A checkpoint frame failed validation (bad magic, truncated payload,
    /// CRC32 mismatch, or an inconsistent field) and no usable earlier
    /// state exists behind it.
    CheckpointCorrupt {
        /// The offending frame path.
        path: String,
        /// What failed.
        detail: String,
    },
    /// [`TransitionSystem::resume`](crate::engine::TransitionSystem::resume)
    /// was called on a checkpoint directory whose frame chain does not end
    /// in a final frame: the exploration never completed. Re-run the
    /// exploration with the same checkpoint directory to continue it.
    CheckpointIncomplete {
        /// The checkpoint directory.
        dir: String,
    },
    /// A symmetry group too large to enumerate was requested (e.g. the
    /// factorial automorphism group of a wide star, or brute-force search
    /// over too many nodes).
    SymmetryGroupTooLarge {
        /// Size driving the blow-up (leaves or nodes).
        size: usize,
        /// The enumeration cap.
        cap: usize,
    },
    /// An analysis that is only sound for deterministic algorithms was
    /// invoked on a nondeterministic one.
    DeterminismRequired {
        /// The analysis that requires determinism.
        context: &'static str,
    },
    /// An index or byte-offset computation exceeded the width of the
    /// engine's typed ids (u32 configuration/edge ids, u32 CSR offsets)
    /// or overflowed its arithmetic. Raised by the checked conversions
    /// in [`engine::ids`](crate::engine::ids) and the `try_` CSR
    /// constructors instead of silently wrapping.
    OffsetOverflow {
        /// What was being converted (`"config id"`, `"csr offset"`, …).
        what: &'static str,
        /// The value that did not fit (saturating render).
        value: u128,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::StateSpaceTooLarge { total, cap } => write!(
                f,
                "configuration space has {total} states, exceeding the cap of {cap}"
            ),
            CoreError::TooManyEnabled { enabled, cap } => write!(
                f,
                "cannot enumerate distributed activations for {enabled} enabled processes (cap {cap})"
            ),
            CoreError::EmptyStateSpace { node } => {
                write!(f, "node {node} has an empty state space")
            }
            CoreError::QuotientUnsupported { reason } => {
                write!(f, "symmetry quotient unsupported: {reason}")
            }
            CoreError::StateCapExceedsIdWidth { requested, limit } => write!(
                f,
                "reachable-mode max_states {requested} exceeds the u32 configuration-id limit {limit}"
            ),
            CoreError::FlatStoreRequired { op } => write!(
                f,
                "{op} requires the flat edge store; compressed rows exist only in decoded form — iterate edge_iter/row_iter instead"
            ),
            CoreError::BudgetExhausted {
                stage,
                resource,
                limit,
                used,
            } => write!(
                f,
                "budget exhausted in stage `{stage}`: {resource} used {used} of {limit}"
            ),
            CoreError::Interrupted { after_frames } => write!(
                f,
                "fault injection killed the run after {after_frames} durable checkpoint frames; \
                 re-run with the same checkpoint directory to resume"
            ),
            CoreError::CheckpointIo { path, detail } => {
                write!(f, "checkpoint I/O failed at {path}: {detail}")
            }
            CoreError::CheckpointCorrupt { path, detail } => {
                write!(f, "checkpoint frame {path} is corrupt: {detail}")
            }
            CoreError::CheckpointIncomplete { dir } => write!(
                f,
                "checkpoint directory {dir} holds no completed exploration (no final frame); \
                 re-run the exploration with the same checkpoint directory to continue it"
            ),
            CoreError::SymmetryGroupTooLarge { size, cap } => write!(
                f,
                "symmetry group over {size} elements is too large to enumerate (cap {cap})"
            ),
            CoreError::DeterminismRequired { context } => {
                write!(f, "{context} requires a deterministic algorithm")
            }
            CoreError::OffsetOverflow { what, value } => write!(
                f,
                "{what} {value} exceeds the engine's typed-id width (u32)"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_numbers() {
        let e = CoreError::StateSpaceTooLarge {
            total: 1 << 40,
            cap: 1 << 20,
        };
        assert!(e.to_string().contains("1099511627776"));
        let e = CoreError::TooManyEnabled {
            enabled: 30,
            cap: 20,
        };
        assert!(e.to_string().contains("30"));
        let e = CoreError::EmptyStateSpace { node: 2 };
        assert!(e.to_string().contains("node 2"));
        let e = CoreError::QuotientUnsupported {
            reason: "not a ring".into(),
        };
        assert!(e.to_string().contains("not a ring"));
        let e = CoreError::StateCapExceedsIdWidth {
            requested: 1 << 40,
            limit: u32::MAX as u64,
        };
        assert!(e.to_string().contains("1099511627776"));
        assert!(e.to_string().contains("4294967295"));
        let e = CoreError::FlatStoreRequired { op: "edges()" };
        assert!(e.to_string().contains("edges()"));
        assert!(e.to_string().contains("flat edge store"));
        let e = CoreError::BudgetExhausted {
            stage: "explore",
            resource: "bytes",
            limit: 1024,
            used: 2048,
        };
        assert!(e.to_string().contains("explore"));
        assert!(e.to_string().contains("2048 of 1024"));
        let e = CoreError::Interrupted { after_frames: 3 };
        assert!(e.to_string().contains("after 3 durable"));
        let e = CoreError::CheckpointCorrupt {
            path: "ckpt-000001.bin".into(),
            detail: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("ckpt-000001.bin"));
        assert!(e.to_string().contains("crc mismatch"));
        let e = CoreError::CheckpointIncomplete {
            dir: "/tmp/x".into(),
        };
        assert!(e.to_string().contains("no final frame"));
        let e = CoreError::SymmetryGroupTooLarge { size: 12, cap: 9 };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("cap 9"));
        let e = CoreError::DeterminismRequired {
            context: "synchronous symmetry checking",
        };
        assert!(e.to_string().contains("deterministic"));
        let e = CoreError::OffsetOverflow {
            what: "csr offset",
            value: 1 << 33,
        };
        assert!(e.to_string().contains("csr offset"));
        assert!(e.to_string().contains("8589934592"));
        assert!(e.to_string().contains("u32"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
