//! Error type for the kernel's fallible operations.

use std::error::Error;
use std::fmt;

/// Errors raised by state-space enumeration and scheduler enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The full configuration space exceeds the requested cap; exhaustive
    /// analyses must fall back to sampling.
    StateSpaceTooLarge {
        /// Number of configurations (saturating).
        total: u128,
        /// The cap that was exceeded.
        cap: u64,
    },
    /// Enumerating all activations of the distributed daemon would produce
    /// `2^k − 1` subsets for `k` enabled processes; `k` exceeded the cap.
    TooManyEnabled {
        /// Number of enabled processes.
        enabled: usize,
        /// Maximum supported for enumeration.
        cap: usize,
    },
    /// A node has an empty state space, so no configuration exists.
    EmptyStateSpace {
        /// The node with no states.
        node: usize,
    },
    /// A symmetry quotient was requested for a system it does not apply
    /// to: the group does not fit the topology, state alphabets break the
    /// symmetry, or the per-run equivariance gate found the algorithm or
    /// specification not to respect the group.
    QuotientUnsupported {
        /// Human-readable reason.
        reason: String,
    },
    /// A reachable-mode `max_states` cap above the engine's u32
    /// configuration-id width was requested. Such a cap could never be
    /// enforced (interning fails at the id width first), so it is
    /// rejected up front rather than silently clamped.
    StateCapExceedsIdWidth {
        /// The requested cap.
        requested: u64,
        /// The enforceable maximum (`u32::MAX`).
        limit: u64,
    },
    /// An operation that exists only on the flat edge-store tier (borrowed
    /// `&[Edge]` row slices) was requested on the compressed tier, whose
    /// rows exist only in decoded form. Iterate the row cursor
    /// (`edge_iter` / `row_iter`) instead, which works on both tiers.
    FlatStoreRequired {
        /// The operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::StateSpaceTooLarge { total, cap } => write!(
                f,
                "configuration space has {total} states, exceeding the cap of {cap}"
            ),
            CoreError::TooManyEnabled { enabled, cap } => write!(
                f,
                "cannot enumerate distributed activations for {enabled} enabled processes (cap {cap})"
            ),
            CoreError::EmptyStateSpace { node } => {
                write!(f, "node {node} has an empty state space")
            }
            CoreError::QuotientUnsupported { reason } => {
                write!(f, "symmetry quotient unsupported: {reason}")
            }
            CoreError::StateCapExceedsIdWidth { requested, limit } => write!(
                f,
                "reachable-mode max_states {requested} exceeds the u32 configuration-id limit {limit}"
            ),
            CoreError::FlatStoreRequired { op } => write!(
                f,
                "{op} requires the flat edge store; compressed rows exist only in decoded form — iterate edge_iter/row_iter instead"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_numbers() {
        let e = CoreError::StateSpaceTooLarge {
            total: 1 << 40,
            cap: 1 << 20,
        };
        assert!(e.to_string().contains("1099511627776"));
        let e = CoreError::TooManyEnabled {
            enabled: 30,
            cap: 20,
        };
        assert!(e.to_string().contains("30"));
        let e = CoreError::EmptyStateSpace { node: 2 };
        assert!(e.to_string().contains("node 2"));
        let e = CoreError::QuotientUnsupported {
            reason: "not a ring".into(),
        };
        assert!(e.to_string().contains("not a ring"));
        let e = CoreError::StateCapExceedsIdWidth {
            requested: 1 << 40,
            limit: u32::MAX as u64,
        };
        assert!(e.to_string().contains("1099511627776"));
        assert!(e.to_string().contains("4294967295"));
        let e = CoreError::FlatStoreRequired { op: "edges()" };
        assert!(e.to_string().contains("edges()"));
        assert!(e.to_string().contains("flat edge store"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
