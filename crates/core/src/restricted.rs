//! Initial-set restriction: the k-stabilization hook.
//!
//! §1 of the paper recalls k-stabilization (Beauquier–Genolini–Kutten):
//! prohibiting some configurations from being initial — assuming at most
//! `k` faults — lets systems solve problems that are impossible in the
//! full self-stabilizing setting. [`Restricted`] wraps any algorithm with
//! an initial-configuration predicate; the checker then quantifies weak
//! and certain convergence over the restricted initial set and the
//! configurations reachable from it (note that executions may *leave* the
//! initial set — only the start is constrained).

use stab_graph::{Graph, NodeId};

use crate::action::{ActionId, ActionMask};
use crate::algorithm::Algorithm;
use crate::config::Configuration;
use crate::outcome::Outcomes;
use crate::view::View;

/// An algorithm with a restricted set of admissible initial configurations.
///
/// The guards, statements and state spaces are unchanged; only
/// [`Algorithm::is_initial`] is narrowed, which the checker and the Markov
/// engine honour when quantifying convergence ("starting from any *initial*
/// configuration…").
#[derive(Debug, Clone)]
pub struct Restricted<A, F> {
    inner: A,
    initial: F,
    label: String,
}

impl<A: Algorithm, F: Fn(&Configuration<A::State>) -> bool> Restricted<A, F> {
    /// Restricts `inner` to initial configurations satisfying `initial`
    /// (in conjunction with the inner algorithm's own restriction, if any).
    /// `label` names the restriction in reports, e.g. `"≤2 tokens"`.
    pub fn new(inner: A, label: impl Into<String>, initial: F) -> Self {
        Restricted {
            inner,
            initial,
            label: label.into(),
        }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A, F> Algorithm for Restricted<A, F>
where
    A: Algorithm,
    F: Fn(&Configuration<A::State>) -> bool,
{
    type State = A::State;

    fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    fn name(&self) -> String {
        format!("{} | I: {}", self.inner.name(), self.label)
    }

    fn state_space(&self, node: NodeId) -> Vec<Self::State> {
        self.inner.state_space(node)
    }

    fn enabled_actions<V: View<Self::State>>(&self, view: &V) -> ActionMask {
        self.inner.enabled_actions(view)
    }

    fn apply<V: View<Self::State>>(&self, view: &V, action: ActionId) -> Outcomes<Self::State> {
        self.inner.apply(view, action)
    }

    fn is_initial(&self, cfg: &Configuration<Self::State>) -> bool {
        self.inner.is_initial(cfg) && (self.initial)(cfg)
    }

    fn is_probabilistic(&self) -> bool {
        self.inner.is_probabilistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::test_support::Infection;
    use stab_graph::builders;

    fn base() -> Infection {
        Infection {
            g: builders::path(3),
        }
    }

    #[test]
    fn restriction_narrows_initial_set() {
        let r = Restricted::new(base(), "some ones", |c: &Configuration<u8>| {
            c.states().contains(&1)
        });
        assert!(r.is_initial(&Configuration::from_vec(vec![1, 0, 0])));
        assert!(!r.is_initial(&Configuration::from_vec(vec![0, 0, 0])));
    }

    #[test]
    fn behaviour_is_unchanged() {
        let b = base();
        let r = Restricted::new(base(), "anything", |_: &Configuration<u8>| true);
        let cfg = Configuration::from_vec(vec![1, 0, 0]);
        assert_eq!(r.enabled_nodes(&cfg), b.enabled_nodes(&cfg));
        assert_eq!(r.state_space(NodeId::new(0)), b.state_space(NodeId::new(0)));
        assert_eq!(r.n(), 3);
        assert!(!r.is_probabilistic());
    }

    #[test]
    fn name_mentions_restriction() {
        let r = Restricted::new(base(), "≤1 fault", |_: &Configuration<u8>| true);
        assert_eq!(r.name(), "infection | I: ≤1 fault");
        assert_eq!(r.inner().name(), "infection");
    }

    #[test]
    fn restrictions_compose() {
        let inner = Restricted::new(base(), "has-one", |c: &Configuration<u8>| {
            c.states().contains(&1)
        });
        let outer = Restricted::new(inner, "first-zero", |c: &Configuration<u8>| {
            c.states()[0] == 0
        });
        assert!(outer.is_initial(&Configuration::from_vec(vec![0, 1, 0])));
        assert!(
            !outer.is_initial(&Configuration::from_vec(vec![1, 1, 0])),
            "violates outer"
        );
        assert!(
            !outer.is_initial(&Configuration::from_vec(vec![0, 0, 0])),
            "violates inner"
        );
    }
}
