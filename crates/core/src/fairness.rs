//! Fairness assumptions over executions (§2 and §4 of the paper).

use std::fmt;

/// The fairness assumption constraining infinite executions.
///
/// Ordered from weakest to strongest *as a constraint on the scheduler*
/// (every Gouda-fair execution is strongly fair, every strongly fair
/// execution is weakly fair, every execution is unfair-admissible):
///
/// * [`Fairness::Unfair`] — the paper's *proper* scheduler: no constraint
///   beyond progress (some enabled process moves each step; a process can be
///   starved forever unless it is the only enabled one, which progress
///   already forces).
/// * [`Fairness::WeaklyFair`] — every *continuously* enabled process is
///   eventually activated.
/// * [`Fairness::StronglyFair`] — every process enabled *infinitely often*
///   is activated infinitely often.
/// * [`Fairness::Gouda`] — Gouda's strong fairness (Theorem 5): for every
///   transition `γ ↦ γ'`, if `γ` occurs infinitely often then the transition
///   `γ ↦ γ'` occurs infinitely often. Theorem 6 of the paper shows this is
///   *strictly* stronger than [`Fairness::StronglyFair`]; Theorem 7 shows it
///   is equivalent to probability-1 convergence under the randomized
///   scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fairness {
    /// No fairness constraint (the paper's "proper" scheduler).
    Unfair,
    /// Continuously enabled processes are eventually activated.
    WeaklyFair,
    /// Infinitely-often enabled processes are activated infinitely often.
    StronglyFair,
    /// Gouda's strong fairness over transitions.
    Gouda,
}

impl Fairness {
    /// All fairness levels, weakest constraint first.
    pub const ALL: [Fairness; 4] = [
        Fairness::Unfair,
        Fairness::WeaklyFair,
        Fairness::StronglyFair,
        Fairness::Gouda,
    ];

    /// Short stable name for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            Fairness::Unfair => "unfair",
            Fairness::WeaklyFair => "weakly-fair",
            Fairness::StronglyFair => "strongly-fair",
            Fairness::Gouda => "gouda",
        }
    }

    /// Whether every `self`-fair execution is also `weaker`-fair: the
    /// inclusion order of the execution sets.
    ///
    /// ```
    /// use stab_core::Fairness;
    /// assert!(Fairness::Gouda.refines(Fairness::StronglyFair));
    /// assert!(Fairness::StronglyFair.refines(Fairness::WeaklyFair));
    /// assert!(!Fairness::WeaklyFair.refines(Fairness::StronglyFair));
    /// ```
    pub fn refines(self, weaker: Fairness) -> bool {
        self >= weaker
    }
}

impl fmt::Display for Fairness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of fairness assumptions, e.g. the self-stabilization verdicts a
/// study should report. Backed by one byte; iteration order is always
/// weakest constraint first ([`Fairness::ALL`] order).
///
/// ```
/// use stab_core::{Fairness, FairnessSet};
/// let set = FairnessSet::of(&[Fairness::Gouda, Fairness::StronglyFair]);
/// assert!(set.contains(Fairness::Gouda));
/// assert!(!set.contains(Fairness::Unfair));
/// assert_eq!(set.len(), 2);
/// let all: Vec<Fairness> = FairnessSet::ALL.iter().collect();
/// assert_eq!(all, Fairness::ALL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FairnessSet(u8);

impl FairnessSet {
    /// The empty set.
    pub const EMPTY: FairnessSet = FairnessSet(0);
    /// Every fairness assumption.
    pub const ALL: FairnessSet = FairnessSet(0b1111);

    fn bit(f: Fairness) -> u8 {
        match f {
            Fairness::Unfair => 1,
            Fairness::WeaklyFair => 1 << 1,
            Fairness::StronglyFair => 1 << 2,
            Fairness::Gouda => 1 << 3,
        }
    }

    /// The set holding exactly `fairness`.
    pub fn of(fairness: &[Fairness]) -> Self {
        fairness.iter().fold(Self::EMPTY, |s, &f| s.with(f))
    }

    /// This set plus `fairness`.
    #[must_use]
    pub fn with(self, fairness: Fairness) -> Self {
        FairnessSet(self.0 | Self::bit(fairness))
    }

    /// Whether `fairness` is in the set.
    pub fn contains(self, fairness: Fairness) -> bool {
        self.0 & Self::bit(fairness) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members, weakest constraint first.
    pub fn iter(self) -> impl Iterator<Item = Fairness> {
        Fairness::ALL.into_iter().filter(move |&f| self.contains(f))
    }
}

impl Default for FairnessSet {
    /// The default verdict set: everything.
    fn default() -> Self {
        Self::ALL
    }
}

impl FromIterator<Fairness> for FairnessSet {
    fn from_iter<T: IntoIterator<Item = Fairness>>(iter: T) -> Self {
        iter.into_iter().fold(Self::EMPTY, FairnessSet::with)
    }
}

impl fmt::Display for FairnessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fair) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fair}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_strength() {
        assert!(Fairness::Unfair < Fairness::WeaklyFair);
        assert!(Fairness::WeaklyFair < Fairness::StronglyFair);
        assert!(Fairness::StronglyFair < Fairness::Gouda);
    }

    #[test]
    fn refinement_is_reflexive_and_transitive() {
        for a in Fairness::ALL {
            assert!(a.refines(a));
            for b in Fairness::ALL {
                for c in Fairness::ALL {
                    if a.refines(b) && b.refines(c) {
                        assert!(a.refines(c));
                    }
                }
            }
        }
    }

    #[test]
    fn everyone_refines_unfair() {
        for f in Fairness::ALL {
            assert!(f.refines(Fairness::Unfair));
        }
    }

    #[test]
    fn fairness_set_operations() {
        let set = FairnessSet::of(&[Fairness::WeaklyFair, Fairness::Gouda]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert!(set.contains(Fairness::WeaklyFair));
        assert!(!set.contains(Fairness::StronglyFair));
        assert_eq!(set.with(Fairness::WeaklyFair), set, "idempotent insert");
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            vec![Fairness::WeaklyFair, Fairness::Gouda],
            "weakest first"
        );
        assert_eq!(set.to_string(), "{weakly-fair, gouda}");
        assert!(FairnessSet::EMPTY.is_empty());
        assert_eq!(FairnessSet::default(), FairnessSet::ALL);
        let collected: FairnessSet = Fairness::ALL.into_iter().collect();
        assert_eq!(collected, FairnessSet::ALL);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Fairness::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec!["unfair", "weakly-fair", "strongly-fair", "gouda"]
        );
        assert_eq!(Fairness::Gouda.to_string(), "gouda");
    }
}
