//! Fairness assumptions over executions (§2 and §4 of the paper).

use std::fmt;

/// The fairness assumption constraining infinite executions.
///
/// Ordered from weakest to strongest *as a constraint on the scheduler*
/// (every Gouda-fair execution is strongly fair, every strongly fair
/// execution is weakly fair, every execution is unfair-admissible):
///
/// * [`Fairness::Unfair`] — the paper's *proper* scheduler: no constraint
///   beyond progress (some enabled process moves each step; a process can be
///   starved forever unless it is the only enabled one, which progress
///   already forces).
/// * [`Fairness::WeaklyFair`] — every *continuously* enabled process is
///   eventually activated.
/// * [`Fairness::StronglyFair`] — every process enabled *infinitely often*
///   is activated infinitely often.
/// * [`Fairness::Gouda`] — Gouda's strong fairness (Theorem 5): for every
///   transition `γ ↦ γ'`, if `γ` occurs infinitely often then the transition
///   `γ ↦ γ'` occurs infinitely often. Theorem 6 of the paper shows this is
///   *strictly* stronger than [`Fairness::StronglyFair`]; Theorem 7 shows it
///   is equivalent to probability-1 convergence under the randomized
///   scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fairness {
    /// No fairness constraint (the paper's "proper" scheduler).
    Unfair,
    /// Continuously enabled processes are eventually activated.
    WeaklyFair,
    /// Infinitely-often enabled processes are activated infinitely often.
    StronglyFair,
    /// Gouda's strong fairness over transitions.
    Gouda,
}

impl Fairness {
    /// All fairness levels, weakest constraint first.
    pub const ALL: [Fairness; 4] = [
        Fairness::Unfair,
        Fairness::WeaklyFair,
        Fairness::StronglyFair,
        Fairness::Gouda,
    ];

    /// Short stable name for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            Fairness::Unfair => "unfair",
            Fairness::WeaklyFair => "weakly-fair",
            Fairness::StronglyFair => "strongly-fair",
            Fairness::Gouda => "gouda",
        }
    }

    /// Whether every `self`-fair execution is also `weaker`-fair: the
    /// inclusion order of the execution sets.
    ///
    /// ```
    /// use stab_core::Fairness;
    /// assert!(Fairness::Gouda.refines(Fairness::StronglyFair));
    /// assert!(Fairness::StronglyFair.refines(Fairness::WeaklyFair));
    /// assert!(!Fairness::WeaklyFair.refines(Fairness::StronglyFair));
    /// ```
    pub fn refines(self, weaker: Fairness) -> bool {
        self >= weaker
    }
}

impl fmt::Display for Fairness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_strength() {
        assert!(Fairness::Unfair < Fairness::WeaklyFair);
        assert!(Fairness::WeaklyFair < Fairness::StronglyFair);
        assert!(Fairness::StronglyFair < Fairness::Gouda);
    }

    #[test]
    fn refinement_is_reflexive_and_transitive() {
        for a in Fairness::ALL {
            assert!(a.refines(a));
            for b in Fairness::ALL {
                for c in Fairness::ALL {
                    if a.refines(b) && b.refines(c) {
                        assert!(a.refines(c));
                    }
                }
            }
        }
    }

    #[test]
    fn everyone_refines_unfair() {
        for f in Fairness::ALL {
            assert!(f.refines(Fairness::Unfair));
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Fairness::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec!["unfair", "weakly-fair", "strongly-fair", "gouda"]
        );
        assert_eq!(Fairness::Gouda.to_string(), "gouda");
    }
}
