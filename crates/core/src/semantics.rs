//! Step semantics: applying an activation to a configuration.
//!
//! Every step `γ ↦ γ'` of the paper is obtained by a non-empty subset of
//! enabled processes atomically executing one action each. All activated
//! processes evaluate their guards and read their neighbours in the *pre*
//! configuration `γ` (composite atomicity), then write their own state.
//! Probabilistic actions branch; the distribution of `γ'` is the product of
//! the activated processes' independent outcome distributions.

use std::collections::HashMap;

use rand::Rng;
use stab_graph::NodeId;

use crate::algorithm::Algorithm;
use crate::config::Configuration;
use crate::scheduler::{Activation, DaemonSpec};
use crate::CoreError;

/// One enumerated step: the activation that fired and the distribution
/// over successor configurations it produces.
pub type Step<S> = (Activation, Vec<(f64, Configuration<S>)>);

/// The distribution over successor configurations when `activation` fires in
/// `cfg`: the product of the activated processes' outcome distributions,
/// with duplicate successors merged.
///
/// # Panics
///
/// Panics if an activated process is disabled in `cfg` — activations must be
/// drawn from the enabled set, as the daemons guarantee.
pub fn successor_distribution<A: Algorithm>(
    alg: &A,
    cfg: &Configuration<A::State>,
    activation: &Activation,
) -> Vec<(f64, Configuration<A::State>)> {
    // (probability, partial successor) pairs; every branch starts from a
    // clone of the *pre* configuration so all reads below stay pre-state.
    let mut branches: Vec<(f64, Configuration<A::State>)> = vec![(1.0, cfg.clone())];
    for &node in activation.nodes() {
        let view = alg.view(cfg, node);
        let action = alg
            .enabled_actions(&view)
            .selected()
            .unwrap_or_else(|| panic!("activated process {node} is disabled"));
        let outcomes = alg.apply(&view, action);
        if outcomes.is_certain() {
            let state = outcomes.into_certain();
            for (_, branch) in &mut branches {
                branch.set(node, state.clone());
            }
        } else {
            let mut next = Vec::with_capacity(branches.len() * outcomes.entries().len());
            for (p, branch) in branches {
                for (q, state) in outcomes.entries() {
                    let mut forked = branch.clone();
                    forked.set(node, state.clone());
                    next.push((p * q, forked));
                }
            }
            branches = next;
        }
    }
    merge_duplicates(branches)
}

/// Merges equal configurations, summing their probabilities.
fn merge_duplicates<S: crate::LocalState>(
    branches: Vec<(f64, Configuration<S>)>,
) -> Vec<(f64, Configuration<S>)> {
    if branches.len() <= 1 {
        return branches;
    }
    // Entry API: one hash lookup per branch and no Configuration clones;
    // first-appearance order is preserved through the stored rank.
    let mut merged: HashMap<Configuration<S>, (usize, f64)> =
        HashMap::with_capacity(branches.len());
    for (p, c) in branches {
        let rank = merged.len();
        merged
            .entry(c)
            .and_modify(|(_, q)| *q += p)
            .or_insert((rank, p));
    }
    let mut out: Vec<(usize, f64, Configuration<S>)> = merged
        .into_iter()
        .map(|(c, (rank, p))| (rank, p, c))
        .collect();
    out.sort_unstable_by_key(|&(rank, _, _)| rank);
    out.into_iter().map(|(_, p, c)| (p, c)).collect()
}

/// The unique successor of a deterministic step.
///
/// # Panics
///
/// Panics if any activated process is disabled or has a probabilistic
/// outcome — use [`successor_distribution`] for probabilistic systems.
pub fn deterministic_successor<A: Algorithm>(
    alg: &A,
    cfg: &Configuration<A::State>,
    activation: &Activation,
) -> Configuration<A::State> {
    let mut next = cfg.clone();
    for &node in activation.nodes() {
        let view = alg.view(cfg, node);
        let action = alg
            .enabled_actions(&view)
            .selected()
            .unwrap_or_else(|| panic!("activated process {node} is disabled"));
        let outcomes = alg.apply(&view, action);
        assert!(
            outcomes.is_certain(),
            "deterministic_successor on probabilistic action at {node}"
        );
        next.set(node, outcomes.into_certain());
    }
    next
}

/// Samples one step under the randomized form of `daemon` (Definition 6):
/// samples an activation uniformly, then samples each activated process's
/// outcome. Returns `None` if `cfg` is terminal. Accepts any lattice point
/// (`DaemonSpec` or a legacy `Daemon` value).
pub fn sample_step<A: Algorithm, R: Rng + ?Sized>(
    alg: &A,
    daemon: impl Into<DaemonSpec>,
    cfg: &Configuration<A::State>,
    rng: &mut R,
) -> Option<(Activation, Configuration<A::State>)> {
    let daemon = daemon.into();
    let enabled = alg.enabled_nodes(cfg);
    if enabled.is_empty() {
        return None;
    }
    let activation = daemon.sample(alg.graph(), &enabled, rng);
    let mut next = cfg.clone();
    for &node in activation.nodes() {
        let view = alg.view(cfg, node);
        let action = alg
            .enabled_actions(&view)
            .selected()
            .expect("daemon activates only enabled processes");
        let outcomes = alg.apply(&view, action);
        next.set(node, outcomes.sample(rng).clone());
    }
    Some((activation, next))
}

/// Every step the enumerated `daemon` allows from `cfg`: one entry per
/// activation, each carrying its successor distribution. Terminal
/// configurations yield an empty vector. Accepts any lattice point
/// (`DaemonSpec` or a legacy `Daemon` value).
///
/// # Errors
///
/// Propagates [`CoreError::TooManyEnabled`] from subset-daemon
/// enumeration.
pub fn all_steps<A: Algorithm>(
    alg: &A,
    daemon: impl Into<DaemonSpec>,
    cfg: &Configuration<A::State>,
) -> Result<Vec<Step<A::State>>, CoreError> {
    let daemon = daemon.into();
    let enabled = alg.enabled_nodes(cfg);
    let activations = daemon.activations(alg.graph(), &enabled)?;
    Ok(activations
        .into_iter()
        .map(|act| {
            let dist = successor_distribution(alg, cfg, &act);
            (act, dist)
        })
        .collect())
}

/// The synchronous successor distribution of `cfg` (every enabled process
/// moves). Returns `None` when terminal.
pub fn synchronous_step<A: Algorithm>(
    alg: &A,
    cfg: &Configuration<A::State>,
) -> Option<Vec<(f64, Configuration<A::State>)>> {
    let enabled = alg.enabled_nodes(cfg);
    if enabled.is_empty() {
        return None;
    }
    let act = Activation::new(enabled);
    Some(successor_distribution(alg, cfg, &act))
}

/// Audits that an algorithm is deterministic on a given configuration:
/// at most one enabled action per process and singleton outcomes. The
/// checker calls this across whole state spaces (the paper's Theorems 1–7
/// require knowing which systems are deterministic).
pub fn is_deterministic_at<A: Algorithm>(alg: &A, cfg: &Configuration<A::State>) -> bool {
    for node in alg.graph().nodes() {
        let view = alg.view(cfg, node);
        let mask = alg.enabled_actions(&view);
        if mask.len() > 1 {
            return false;
        }
        if let Some(action) = mask.selected() {
            if !alg.apply(&view, action).is_certain() {
                return false;
            }
        }
    }
    true
}

/// Convenience: which nodes are enabled, as a sorted vector (`Enabled(γ)`).
pub fn enabled_nodes<A: Algorithm>(alg: &A, cfg: &Configuration<A::State>) -> Vec<NodeId> {
    alg.enabled_nodes(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionMask};
    use crate::algorithm::test_support::Infection;
    use crate::outcome::Outcomes;
    use crate::scheduler::Daemon;
    use crate::view::View;
    use rand::SeedableRng;
    use stab_graph::{builders, Graph};

    fn infection() -> Infection {
        Infection {
            g: builders::path(4),
        }
    }

    #[test]
    fn deterministic_successor_applies_all_activated() {
        let a = infection();
        let cfg = Configuration::from_vec(vec![1, 0, 0, 0]);
        // Only node 1 is enabled; activate it.
        let act = Activation::singleton(NodeId::new(1));
        let next = deterministic_successor(&a, &cfg, &act);
        assert_eq!(next.states(), &[1, 1, 0, 0]);
    }

    #[test]
    fn successor_distribution_of_deterministic_step_is_singleton() {
        let a = infection();
        let cfg = Configuration::from_vec(vec![1, 0, 1, 0]);
        let act = Activation::new(vec![NodeId::new(1), NodeId::new(3)]);
        let dist = successor_distribution(&a, &cfg, &act);
        assert_eq!(dist.len(), 1);
        assert!((dist[0].0 - 1.0).abs() < 1e-12);
        assert_eq!(dist[0].1.states(), &[1, 1, 1, 1]);
    }

    #[test]
    fn reads_are_from_pre_configuration() {
        // Node 1 enabled because node 0 is infected; node 2 is NOT enabled
        // in the pre-configuration even though node 1 becomes infected in
        // this very step — composite atomicity.
        let a = infection();
        let cfg = Configuration::from_vec(vec![1, 0, 0, 0]);
        assert!(!a.is_enabled(&cfg, NodeId::new(2)));
        let act = Activation::singleton(NodeId::new(1));
        let next = deterministic_successor(&a, &cfg, &act);
        // Now node 2 becomes enabled, in the *next* configuration.
        assert!(a.is_enabled(&next, NodeId::new(2)));
    }

    #[test]
    #[should_panic(expected = "is disabled")]
    fn activating_disabled_process_panics() {
        let a = infection();
        let cfg = Configuration::from_vec(vec![1, 0, 0, 0]);
        let act = Activation::singleton(NodeId::new(3));
        let _ = deterministic_successor(&a, &cfg, &act);
    }

    /// A coin-flip algorithm: every process is always enabled and sets its
    /// bit uniformly at random.
    struct Scramble {
        g: Graph,
    }

    impl Algorithm for Scramble {
        type State = bool;

        fn graph(&self) -> &Graph {
            &self.g
        }

        fn name(&self) -> String {
            "scramble".into()
        }

        fn state_space(&self, _node: NodeId) -> Vec<bool> {
            vec![false, true]
        }

        fn enabled_actions<V: View<bool>>(&self, _view: &V) -> ActionMask {
            ActionMask::single(ActionId::A1)
        }

        fn apply<V: View<bool>>(&self, _view: &V, _action: ActionId) -> Outcomes<bool> {
            Outcomes::fair_coin(true, false)
        }

        fn is_probabilistic(&self) -> bool {
            true
        }
    }

    #[test]
    fn probabilistic_product_distribution() {
        let a = Scramble {
            g: builders::path(2),
        };
        let cfg = Configuration::from_vec(vec![false, false]);
        let act = Activation::new(vec![NodeId::new(0), NodeId::new(1)]);
        let dist = successor_distribution(&a, &cfg, &act);
        assert_eq!(dist.len(), 4, "2 processes x 2 outcomes = 4 configurations");
        let total: f64 = dist.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (p, _) in &dist {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_successors_are_merged() {
        // One process flipping a coin over {true, false} from state true:
        // successors true/false each 0.5 — no merging needed. But two
        // processes where one is deterministic shows merging of the
        // branch structure: use a single-node graph flipping twice is not
        // possible, so craft duplicates via a coin whose sides are equal
        // after mapping: Scramble on 1 node gives 2 distinct successors.
        let a = Scramble {
            g: builders::path(1),
        };
        let cfg = Configuration::from_vec(vec![true]);
        let act = Activation::singleton(NodeId::new(0));
        let dist = successor_distribution(&a, &cfg, &act);
        assert_eq!(dist.len(), 2);
    }

    #[test]
    #[should_panic(expected = "probabilistic action")]
    fn deterministic_successor_rejects_probabilistic() {
        let a = Scramble {
            g: builders::path(2),
        };
        let cfg = Configuration::from_vec(vec![false, false]);
        let act = Activation::singleton(NodeId::new(0));
        let _ = deterministic_successor(&a, &cfg, &act);
    }

    #[test]
    fn all_steps_enumerates_daemon_choices() {
        let a = infection();
        let cfg = Configuration::from_vec(vec![1, 0, 1, 0]);
        // Enabled: nodes 1 and 3.
        let steps = all_steps(&a, Daemon::Distributed, &cfg).unwrap();
        assert_eq!(steps.len(), 3); // {1}, {3}, {1,3}
        let steps = all_steps(&a, Daemon::Central, &cfg).unwrap();
        assert_eq!(steps.len(), 2);
        let steps = all_steps(&a, Daemon::Synchronous, &cfg).unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].1[0].1.states(), &[1, 1, 1, 1]);
    }

    #[test]
    fn terminal_configuration_has_no_steps() {
        let a = infection();
        let cfg = Configuration::from_vec(vec![0, 0, 0, 0]);
        assert!(all_steps(&a, Daemon::Distributed, &cfg).unwrap().is_empty());
        assert!(synchronous_step(&a, &cfg).is_none());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!(sample_step(&a, Daemon::Central, &cfg, &mut rng).is_none());
    }

    #[test]
    fn sample_step_reaches_fixpoint() {
        let a = infection();
        let mut cfg = Configuration::from_vec(vec![1, 0, 0, 0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut steps = 0;
        while let Some((_, next)) = sample_step(&a, Daemon::Central, &cfg, &mut rng) {
            cfg = next;
            steps += 1;
            assert!(steps <= 3, "infection on a 4-path needs at most 3 steps");
        }
        assert_eq!(cfg.states(), &[1, 1, 1, 1]);
    }

    #[test]
    fn determinism_audit() {
        let det = infection();
        let cfg = Configuration::from_vec(vec![1, 0, 0, 0]);
        assert!(is_deterministic_at(&det, &cfg));
        let prob = Scramble {
            g: builders::path(2),
        };
        let cfg = Configuration::from_vec(vec![false, false]);
        assert!(!is_deterministic_at(&prob, &cfg));
    }
}
