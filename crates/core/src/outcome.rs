//! Finite probability distributions over successor states.
//!
//! The paper distinguishes *D-variables* (deterministically assigned) from
//! *P-variables* (randomly assigned via `Rand`). [`Outcomes`] represents the
//! result of executing one action: a finite distribution over the process's
//! next local state. Deterministic actions yield a singleton; the
//! transformer's coin toss yields a two-point distribution.

use std::fmt;

use rand::Rng;

/// Tolerance for validating that probabilities sum to one.
const PROB_EPS: f64 = 1e-9;

/// A finite probability distribution over successor local states, produced
/// by executing a single action of a single process.
///
/// Probabilities are strictly positive and sum to 1 (validated on
/// construction, duplicates merged).
///
/// ```
/// use stab_core::Outcomes;
/// let o = Outcomes::fair_coin(0u8, 1u8);
/// assert_eq!(o.entries().len(), 2);
/// assert!(!o.is_certain());
/// assert_eq!(Outcomes::certain(5u8).entries(), &[(1.0, 5u8)]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Outcomes<S> {
    entries: Vec<(f64, S)>,
}

impl<S: PartialEq> Outcomes<S> {
    /// A deterministic outcome: the next state with probability 1.
    pub fn certain(state: S) -> Self {
        Outcomes {
            entries: vec![(1.0, state)],
        }
    }

    /// A fair coin: each state with probability ½, as in the paper's
    /// transformer `B ← Rand(true, false)`. If both states are equal the
    /// distribution collapses to a certain outcome.
    pub fn fair_coin(heads: S, tails: S) -> Self {
        Self::biased_coin(0.5, heads, tails)
    }

    /// A biased coin: `heads` with probability `p_heads`, `tails` with
    /// probability `1 − p_heads`. Used by the coin-bias ablation study.
    ///
    /// # Panics
    ///
    /// Panics if `p_heads` is not strictly between 0 and 1.
    pub fn biased_coin(p_heads: f64, heads: S, tails: S) -> Self {
        assert!(
            p_heads > 0.0 && p_heads < 1.0,
            "coin bias must lie strictly between 0 and 1, got {p_heads}"
        );
        if heads == tails {
            return Self::certain(heads);
        }
        Outcomes {
            entries: vec![(p_heads, heads), (1.0 - p_heads, tails)],
        }
    }

    /// A distribution from explicit weights.
    ///
    /// Entries with equal states are merged; all probabilities must be
    /// strictly positive and sum to 1 within `1e-9`.
    ///
    /// # Panics
    ///
    /// Panics on an empty list, non-positive weights, or weights that do not
    /// sum to 1.
    pub fn weighted(entries: Vec<(f64, S)>) -> Self {
        assert!(
            !entries.is_empty(),
            "a distribution needs at least one outcome"
        );
        let mut merged: Vec<(f64, S)> = Vec::with_capacity(entries.len());
        for (p, s) in entries {
            assert!(
                p > 0.0,
                "outcome probabilities must be strictly positive, got {p}"
            );
            match merged.iter_mut().find(|(_, t)| *t == s) {
                Some((q, _)) => *q += p,
                None => merged.push((p, s)),
            }
        }
        let total: f64 = merged.iter().map(|(p, _)| p).sum();
        assert!(
            (total - 1.0).abs() < PROB_EPS,
            "outcome probabilities must sum to 1, got {total}"
        );
        Outcomes { entries: merged }
    }

    /// A uniform distribution over the given states (duplicates merged).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn uniform(states: Vec<S>) -> Self {
        assert!(
            !states.is_empty(),
            "a distribution needs at least one outcome"
        );
        let p = 1.0 / states.len() as f64;
        Self::weighted(states.into_iter().map(|s| (p, s)).collect())
    }
}

impl<S> Outcomes<S> {
    /// The `(probability, state)` entries; probabilities are positive and
    /// sum to 1.
    #[inline]
    pub fn entries(&self) -> &[(f64, S)] {
        &self.entries
    }

    /// Whether this outcome is deterministic (a single entry).
    #[inline]
    pub fn is_certain(&self) -> bool {
        self.entries.len() == 1
    }

    /// Consumes the distribution, returning its entries.
    pub fn into_entries(self) -> Vec<(f64, S)> {
        self.entries
    }

    /// The unique state of a deterministic outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is probabilistic.
    pub fn into_certain(mut self) -> S {
        assert!(
            self.entries.len() == 1,
            "into_certain on a probabilistic outcome with {} entries",
            self.entries.len()
        );
        self.entries.pop().expect("non-empty by construction").1
    }

    /// Maps every state through `f`, keeping probabilities. Used by the
    /// transformer to pair inner outcomes with coin values.
    pub fn map<T>(self, f: impl FnMut(S) -> T) -> Outcomes<T> {
        let mut f = f;
        Outcomes {
            entries: self.entries.into_iter().map(|(p, s)| (p, f(s))).collect(),
        }
    }

    /// Samples a state according to the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &S {
        if self.entries.len() == 1 {
            return &self.entries[0].1;
        }
        let x: f64 = rng.random();
        let mut acc = 0.0;
        for (p, s) in &self.entries {
            acc += p;
            if x < acc {
                return s;
            }
        }
        // Floating-point slack: fall back to the last entry.
        &self.entries[self.entries.len() - 1].1
    }
}

impl<S: fmt::Debug> fmt::Debug for Outcomes<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Outcomes[")?;
        for (i, (p, s)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:.3}↦{s:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn certain_is_singleton() {
        let o = Outcomes::certain(42u8);
        assert!(o.is_certain());
        assert_eq!(o.entries(), &[(1.0, 42)]);
        assert_eq!(o.into_certain(), 42);
    }

    #[test]
    fn fair_coin_halves() {
        let o = Outcomes::fair_coin(true, false);
        assert_eq!(o.entries().len(), 2);
        assert!((o.entries()[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coin_with_equal_sides_collapses() {
        let o = Outcomes::fair_coin(7u8, 7u8);
        assert!(o.is_certain());
    }

    #[test]
    #[should_panic(expected = "strictly between 0 and 1")]
    fn degenerate_bias_rejected() {
        let _ = Outcomes::biased_coin(1.0, 1u8, 0u8);
    }

    #[test]
    fn weighted_merges_duplicates() {
        let o = Outcomes::weighted(vec![(0.25, 'x'), (0.5, 'y'), (0.25, 'x')]);
        assert_eq!(o.entries().len(), 2);
        let px = o
            .entries()
            .iter()
            .find(|(_, s)| *s == 'x')
            .map(|(p, _)| *p)
            .unwrap();
        assert!((px - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weighted_validates_total() {
        let _ = Outcomes::weighted(vec![(0.3, 1u8), (0.3, 2u8)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn weighted_rejects_zero_probability() {
        let _ = Outcomes::weighted(vec![(0.0, 1u8), (1.0, 2u8)]);
    }

    #[test]
    fn uniform_distributes_evenly() {
        let o = Outcomes::uniform(vec![1u8, 2, 3, 4]);
        assert_eq!(o.entries().len(), 4);
        for (p, _) in o.entries() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn map_preserves_probabilities() {
        let o = Outcomes::fair_coin(1u8, 2u8).map(|s| s * 10);
        let states: Vec<u8> = o.entries().iter().map(|(_, s)| *s).collect();
        assert_eq!(states, vec![10, 20]);
    }

    #[test]
    #[should_panic(expected = "probabilistic outcome")]
    fn into_certain_rejects_probabilistic() {
        let _ = Outcomes::fair_coin(0u8, 1u8).into_certain();
    }

    #[test]
    fn sampling_matches_distribution_roughly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let o = Outcomes::biased_coin(0.8, 1u8, 0u8);
        let n = 20_000;
        let ones: usize = (0..n).filter(|_| *o.sample(&mut rng) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.02, "sampled frequency {freq}");
    }
}
