//! Execution traces: recorded prefixes of executions, used for figure
//! regeneration and counterexample display.

use std::fmt;

use crate::config::Configuration;
use crate::scheduler::Activation;

/// A finite execution prefix `γ0 →(act1) γ1 →(act2) … γk`.
///
/// Invariant: `configs.len() == activations.len() + 1`.
///
/// ```
/// use stab_core::{Activation, Configuration, Trace};
/// use stab_graph::NodeId;
///
/// let mut t = Trace::new(Configuration::from_vec(vec![0u8, 1]));
/// t.push(Activation::singleton(NodeId::new(0)), Configuration::from_vec(vec![2, 1]));
/// assert_eq!(t.steps(), 1);
/// assert_eq!(t.last().states(), &[2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace<S> {
    configs: Vec<Configuration<S>>,
    activations: Vec<Activation>,
}

impl<S> Trace<S> {
    /// A trace consisting of the initial configuration only.
    pub fn new(initial: Configuration<S>) -> Self {
        Trace {
            configs: vec![initial],
            activations: Vec::new(),
        }
    }

    /// Appends a step: `activation` fired and produced `next`.
    pub fn push(&mut self, activation: Activation, next: Configuration<S>) {
        self.activations.push(activation);
        self.configs.push(next);
    }

    /// Number of steps (= transitions) recorded.
    pub fn steps(&self) -> usize {
        self.activations.len()
    }

    /// The `i`-th configuration (`0` = initial).
    ///
    /// # Panics
    ///
    /// Panics if `i > steps()`.
    pub fn config(&self, i: usize) -> &Configuration<S> {
        &self.configs[i]
    }

    /// The activation that produced configuration `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= steps()`.
    pub fn activation(&self, i: usize) -> &Activation {
        &self.activations[i]
    }

    /// The initial configuration.
    pub fn first(&self) -> &Configuration<S> {
        &self.configs[0]
    }

    /// The final configuration.
    pub fn last(&self) -> &Configuration<S> {
        self.configs
            .last()
            .expect("traces hold at least one configuration")
    }

    /// All configurations, initial first.
    pub fn configs(&self) -> &[Configuration<S>] {
        &self.configs
    }

    /// Index of the first configuration satisfying `pred` (e.g. the first
    /// legitimate configuration — the stabilization point), if any.
    pub fn first_index_where(&self, pred: impl FnMut(&Configuration<S>) -> bool) -> Option<usize> {
        self.configs.iter().position(pred)
    }

    /// Renders the trace with a custom per-configuration formatter, one
    /// configuration per block, interleaved with the activations. This is
    /// how the experiment binaries regenerate the paper's Figures 1–3.
    pub fn render(&self, mut fmt_config: impl FnMut(&Configuration<S>) -> String) -> String {
        let mut out = String::new();
        for (i, c) in self.configs.iter().enumerate() {
            if i > 0 {
                out.push_str(&format!("  --[{}]-->\n", self.activations[i - 1]));
            }
            out.push_str(&format!("({}) {}\n", roman(i), fmt_config(c)));
        }
        out
    }
}

impl<S: fmt::Debug> fmt::Display for Trace<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(|c| format!("{c:?}")))
    }
}

/// Lower-case roman numerals for figure-style configuration labels
/// ((i), (ii), …), falling back to decimal beyond 20.
fn roman(i: usize) -> String {
    const NUMERALS: [&str; 21] = [
        "i", "ii", "iii", "iv", "v", "vi", "vii", "viii", "ix", "x", "xi", "xii", "xiii", "xiv",
        "xv", "xvi", "xvii", "xviii", "xix", "xx", "xxi",
    ];
    NUMERALS
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("{}", i + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stab_graph::NodeId;

    fn sample_trace() -> Trace<u8> {
        let mut t = Trace::new(Configuration::from_vec(vec![0, 0]));
        t.push(
            Activation::singleton(NodeId::new(0)),
            Configuration::from_vec(vec![1, 0]),
        );
        t.push(
            Activation::singleton(NodeId::new(1)),
            Configuration::from_vec(vec![1, 1]),
        );
        t
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample_trace();
        assert_eq!(t.steps(), 2);
        assert_eq!(t.first().states(), &[0, 0]);
        assert_eq!(t.last().states(), &[1, 1]);
        assert_eq!(t.config(1).states(), &[1, 0]);
        assert_eq!(t.activation(0).nodes(), &[NodeId::new(0)]);
        assert_eq!(t.configs().len(), 3);
    }

    #[test]
    fn first_index_where_finds_stabilization_point() {
        let t = sample_trace();
        assert_eq!(t.first_index_where(|c| c.states() == [1, 1]), Some(2));
        assert_eq!(t.first_index_where(|c| c.states() == [9, 9]), None);
        assert_eq!(t.first_index_where(|_| true), Some(0));
    }

    #[test]
    fn render_labels_configs_with_roman_numerals() {
        let t = sample_trace();
        let s = t.render(|c| format!("{:?}", c.states()));
        assert!(s.contains("(i) [0, 0]"));
        assert!(s.contains("--[{P0}]-->"));
        assert!(s.contains("(ii) [1, 0]"));
        assert!(s.contains("(iii) [1, 1]"));
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(0), "i");
        assert_eq!(roman(4), "v");
        assert_eq!(roman(8), "ix");
        assert_eq!(roman(30), "31");
    }

    #[test]
    fn display_uses_debug_formatter() {
        let t = sample_trace();
        let shown = format!("{t}");
        assert!(shown.contains("⟨1, 1⟩"));
    }
}
