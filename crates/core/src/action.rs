//! Action labels and sets of simultaneously enabled actions.
//!
//! The paper's local algorithms are small: Algorithm 2 has three actions
//! (`A1`, `A2`, `A3`), every other algorithm in the reproduction has one or
//! two. [`ActionId`] names an action by index, and [`ActionMask`] is a
//! zero-allocation set of up to eight actions, which is the result type of
//! guard evaluation.

use std::fmt;

/// The label of a guarded action, `A1 .. A8` (stored zero-based).
///
/// ```
/// use stab_core::ActionId;
/// assert_eq!(ActionId::A1.index(), 0);
/// assert_eq!(format!("{}", ActionId::A3), "A3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(u8);

impl ActionId {
    /// The first action label (paper notation `A1`).
    pub const A1: ActionId = ActionId(0);
    /// The second action label.
    pub const A2: ActionId = ActionId(1);
    /// The third action label.
    pub const A3: ActionId = ActionId(2);
    /// The fourth action label.
    pub const A4: ActionId = ActionId(3);

    /// Maximum number of distinct actions per algorithm.
    pub const MAX_ACTIONS: usize = 8;

    /// Creates an action label from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(index < Self::MAX_ACTIONS, "at most 8 actions are supported");
        // lint: cast-ok(asserted above to be below 8)
        ActionId(index as u8)
    }

    /// Zero-based index of the action.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0 + 1)
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0 + 1)
    }
}

/// A set of action labels, as returned by guard evaluation.
///
/// An empty mask means the process is *disabled*; a non-empty mask means the
/// process is *enabled* and [`ActionMask::selected`] gives the action a
/// scheduled process executes. When several guards hold simultaneously the
/// lowest-labelled action has priority — the paper's algorithms have mutually
/// exclusive guards, so the priority rule never fires for them (the
/// `stab-checker` crate audits this).
///
/// ```
/// use stab_core::{ActionId, ActionMask};
/// let m = ActionMask::empty().with(ActionId::A2).with(ActionId::A1);
/// assert!(m.contains(ActionId::A1));
/// assert_eq!(m.selected(), Some(ActionId::A1));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![ActionId::A1, ActionId::A2]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ActionMask(u8);

impl ActionMask {
    /// The empty mask: process disabled.
    #[inline]
    pub fn empty() -> Self {
        ActionMask(0)
    }

    /// A mask containing a single action.
    #[inline]
    pub fn single(action: ActionId) -> Self {
        ActionMask(1 << action.0)
    }

    /// Returns this mask with `action` added (builder style).
    #[inline]
    #[must_use]
    pub fn with(self, action: ActionId) -> Self {
        ActionMask(self.0 | (1 << action.0))
    }

    /// A mask built from `condition`: `single(action)` if it holds, empty
    /// otherwise. Guards read naturally with this:
    /// `ActionMask::when(token, ActionId::A1)`.
    #[inline]
    pub fn when(condition: bool, action: ActionId) -> Self {
        if condition {
            Self::single(action)
        } else {
            Self::empty()
        }
    }

    /// Whether no action is enabled.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `action` is in the mask.
    #[inline]
    pub fn contains(self, action: ActionId) -> bool {
        self.0 & (1 << action.0) != 0
    }

    /// Number of enabled actions.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The action a scheduled process executes: the lowest-labelled enabled
    /// action, or `None` when disabled.
    #[inline]
    pub fn selected(self) -> Option<ActionId> {
        if self.0 == 0 {
            None
        } else {
            // lint: cast-ok(trailing_zeros of a u8 is at most 8)
            Some(ActionId(self.0.trailing_zeros() as u8))
        }
    }

    /// Union of two masks.
    #[inline]
    #[must_use]
    pub fn union(self, other: ActionMask) -> ActionMask {
        ActionMask(self.0 | other.0)
    }

    /// Iterator over the enabled actions in ascending label order.
    pub fn iter(self) -> impl Iterator<Item = ActionId> {
        (0..8u8)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(ActionId)
    }
}

impl fmt::Debug for ActionMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ActionId> for ActionMask {
    fn from_iter<I: IntoIterator<Item = ActionId>>(iter: I) -> Self {
        iter.into_iter().fold(ActionMask::empty(), ActionMask::with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants_are_sequential() {
        assert_eq!(ActionId::A1, ActionId::new(0));
        assert_eq!(ActionId::A2, ActionId::new(1));
        assert_eq!(ActionId::A3, ActionId::new(2));
        assert_eq!(ActionId::A4, ActionId::new(3));
    }

    #[test]
    #[should_panic(expected = "at most 8 actions")]
    fn action_id_range_checked() {
        let _ = ActionId::new(8);
    }

    #[test]
    fn empty_mask_has_no_selection() {
        let m = ActionMask::empty();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.selected(), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn selection_priority_is_lowest_label() {
        let m = ActionMask::single(ActionId::A3).with(ActionId::A2);
        assert_eq!(m.selected(), Some(ActionId::A2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn when_builds_conditionally() {
        assert!(ActionMask::when(false, ActionId::A1).is_empty());
        assert!(ActionMask::when(true, ActionId::A1).contains(ActionId::A1));
    }

    #[test]
    fn union_and_from_iterator() {
        let a = ActionMask::single(ActionId::A1);
        let b = ActionMask::single(ActionId::A4);
        let u = a.union(b);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![ActionId::A1, ActionId::A4]
        );
        let collected: ActionMask = vec![ActionId::A4, ActionId::A1].into_iter().collect();
        assert_eq!(collected, u);
    }

    #[test]
    fn debug_format() {
        let m = ActionMask::single(ActionId::A1).with(ActionId::A3);
        assert_eq!(format!("{m:?}"), "{A1,A3}");
    }

    #[test]
    fn all_eight_actions_fit() {
        let mut m = ActionMask::empty();
        for i in 0..8 {
            m = m.with(ActionId::new(i));
        }
        assert_eq!(m.len(), 8);
        assert_eq!(m.selected(), Some(ActionId::A1));
    }
}
