//! Specifications as legitimate-configuration predicates.
//!
//! The paper's Definitions 1–3 all have the same shape: a set `L ⊆ C` of
//! *legitimate* configurations such that (closure) executions from `L` keep
//! satisfying the specification and (convergence, in three strengths)
//! executions reach `L`. [`Legitimacy`] is the `L` part; the `stab-checker`
//! crate decides closure and the three convergence properties against it.

use crate::config::Configuration;

/// A legitimate-configuration predicate: the set `L` of Definitions 1–3.
pub trait Legitimacy<S> {
    /// Name of the specification, e.g. `"single-token"`.
    fn name(&self) -> String;

    /// Whether `cfg` is legitimate.
    fn is_legitimate(&self, cfg: &Configuration<S>) -> bool;
}

/// Blanket implementation for references.
impl<S, L: Legitimacy<S> + ?Sized> Legitimacy<S> for &L {
    fn name(&self) -> String {
        (**self).name()
    }

    fn is_legitimate(&self, cfg: &Configuration<S>) -> bool {
        (**self).is_legitimate(cfg)
    }
}

/// Blanket implementation for boxed (possibly type-erased) specifications.
impl<S, L: Legitimacy<S> + ?Sized> Legitimacy<S> for Box<L> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn is_legitimate(&self, cfg: &Configuration<S>) -> bool {
        (**self).is_legitimate(cfg)
    }
}

/// A [`Legitimacy`] built from a closure — convenient for tests and ad-hoc
/// experiments.
///
/// ```
/// use stab_core::{Configuration, Legitimacy, Predicate};
/// let all_ones = Predicate::new("all-ones", |c: &Configuration<u8>| {
///     c.states().iter().all(|&s| s == 1)
/// });
/// assert!(all_ones.is_legitimate(&Configuration::from_vec(vec![1, 1])));
/// assert!(!all_ones.is_legitimate(&Configuration::from_vec(vec![1, 0])));
/// assert_eq!(all_ones.name(), "all-ones");
/// ```
pub struct Predicate<S, F = fn(&Configuration<S>) -> bool>
where
    F: Fn(&Configuration<S>) -> bool,
{
    name: String,
    f: F,
    _marker: std::marker::PhantomData<fn(&Configuration<S>)>,
}

impl<S, F: Fn(&Configuration<S>) -> bool> Predicate<S, F> {
    /// Wraps `f` as a named legitimacy predicate.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Predicate {
            name: name.into(),
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F: Fn(&Configuration<S>) -> bool> Legitimacy<S> for Predicate<S, F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn is_legitimate(&self, cfg: &Configuration<S>) -> bool {
        (self.f)(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_delegates_to_closure() {
        let even_sum = Predicate::new("even-sum", |c: &Configuration<u32>| {
            c.states().iter().sum::<u32>() % 2 == 0
        });
        assert!(even_sum.is_legitimate(&Configuration::from_vec(vec![1, 1])));
        assert!(!even_sum.is_legitimate(&Configuration::from_vec(vec![1, 2])));
    }

    #[test]
    fn references_are_legitimacies() {
        let p = Predicate::new("t", |_c: &Configuration<u8>| true);
        let r = &p;
        assert_eq!(r.name(), "t");
        assert!(r.is_legitimate(&Configuration::from_vec(vec![0])));
    }
}
