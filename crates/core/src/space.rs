//! Perfect indexing of finite configuration spaces.
//!
//! The paper's systems have a finite number of configurations (the premise
//! of Theorems 5, 7, 8 and 9). [`SpaceIndexer`] bijects the full
//! configuration space `C = Π_v state_space(v)` onto `0..total` via
//! mixed-radix encoding, giving the checker and the Markov engine dense
//! `u64` state identifiers without hashing.

use stab_graph::NodeId;

use crate::algorithm::Algorithm;
use crate::config::Configuration;
use crate::error::CoreError;
use crate::LocalState;

/// A mixed-radix bijection between configurations and `0..total()`.
///
/// Node `v`'s state is digit `v` (sorted state list as digit alphabet);
/// digit weights grow from node 0 upward.
#[derive(Debug, Clone)]
pub struct SpaceIndexer<S> {
    /// Sorted state alphabet per node.
    per_node: Vec<Vec<S>>,
    /// `weights[v]` = product of alphabet sizes of nodes `< v`.
    weights: Vec<u64>,
    total: u64,
}

impl<S: LocalState> SpaceIndexer<S> {
    /// Builds the indexer for `alg`'s full configuration space, refusing
    /// spaces larger than `cap`.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyStateSpace`] if some node has no states;
    /// [`CoreError::StateSpaceTooLarge`] if `Π |state_space(v)| > cap`.
    pub fn new<A: Algorithm<State = S>>(alg: &A, cap: u64) -> Result<Self, CoreError> {
        let n = alg.n();
        let mut per_node = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut total: u128 = 1;
        for v in 0..n {
            let mut states = alg.state_space(NodeId::new(v));
            if states.is_empty() {
                return Err(CoreError::EmptyStateSpace { node: v });
            }
            states.sort();
            states.dedup();
            weights.push(total as u64); // valid while total <= cap <= u64::MAX
            total = total.saturating_mul(states.len() as u128);
            if total > cap as u128 {
                return Err(CoreError::StateSpaceTooLarge { total, cap });
            }
            per_node.push(states);
        }
        Ok(SpaceIndexer {
            per_node,
            weights,
            total: total as u64,
        })
    }

    /// Number of configurations in the space.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of processes.
    #[inline]
    pub fn n(&self) -> usize {
        self.per_node.len()
    }

    /// The sorted state alphabet of `node`.
    pub fn states_of(&self, node: NodeId) -> &[S] {
        &self.per_node[node.index()]
    }

    /// The mixed-radix weight of `node`: the index contribution of one
    /// digit step at that node. The delta-encoding of the CSR engine relies
    /// on `encode(γ[v ← s']) = encode(γ) + (digit(s') − digit(s)) · weight(v)`.
    #[inline]
    pub fn weight(&self, node: NodeId) -> u64 {
        self.weights[node.index()]
    }

    /// The alphabet size (radix) of `node`.
    #[inline]
    pub fn radix(&self, node: NodeId) -> usize {
        self.per_node[node.index()].len()
    }

    /// The digit of `state` at `node` (its rank in the sorted alphabet).
    ///
    /// # Panics
    ///
    /// Panics if `state` is not in the node's declared state space.
    #[inline]
    pub fn digit_of(&self, node: NodeId, state: &S) -> usize {
        self.per_node[node.index()]
            .binary_search(state)
            .unwrap_or_else(|_| panic!("state {state:?} of {node} not in declared state space"))
    }

    /// The state behind `digit` at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `digit` is out of range for the node's alphabet.
    #[inline]
    pub fn state_at(&self, node: NodeId, digit: usize) -> &S {
        &self.per_node[node.index()][digit]
    }

    /// Writes the mixed-radix digits of `idx` into `digits` (resized to
    /// `n()`), least-significant (node 0) first.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= total()`.
    pub fn write_digits(&self, idx: u64, digits: &mut Vec<u32>) {
        assert!(
            idx < self.total,
            "index {idx} out of range (total {})",
            self.total
        );
        digits.clear();
        let mut rest = idx;
        for alphabet in &self.per_node {
            // lint: cast-ok(a digit is strictly below its alphabet size, which fits u32)
            digits.push((rest % alphabet.len() as u64) as u32);
            rest /= alphabet.len() as u64;
        }
    }

    /// The dense index of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has the wrong size or contains a state outside the
    /// node's declared state space.
    pub fn encode(&self, cfg: &Configuration<S>) -> u64 {
        assert_eq!(cfg.len(), self.n(), "configuration size mismatch");
        let mut idx = 0u64;
        for (v, s) in cfg.iter() {
            let alphabet = &self.per_node[v.index()];
            let digit = alphabet
                .binary_search(s)
                .unwrap_or_else(|_| panic!("state {s:?} of {v} not in declared state space"));
            idx += digit as u64 * self.weights[v.index()];
        }
        idx
    }

    /// The configuration with dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= total()`.
    pub fn decode(&self, idx: u64) -> Configuration<S> {
        assert!(
            idx < self.total,
            "index {idx} out of range (total {})",
            self.total
        );
        let mut rest = idx;
        let states: Vec<S> = self
            .per_node
            .iter()
            .map(|alphabet| {
                let digit = (rest % alphabet.len() as u64) as usize;
                rest /= alphabet.len() as u64;
                alphabet[digit].clone()
            })
            .collect();
        Configuration::from_vec(states)
    }

    /// Iterator over the entire configuration space in index order.
    pub fn iter(&self) -> impl Iterator<Item = Configuration<S>> + '_ {
        (0..self.total).map(|i| self.decode(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionMask};
    use crate::outcome::Outcomes;
    use crate::view::View;
    use stab_graph::{builders, Graph};

    /// Test algorithm with per-node state-space sizes 2, 3, 2.
    struct Mixed {
        g: Graph,
    }

    impl Algorithm for Mixed {
        type State = u8;

        fn graph(&self) -> &Graph {
            &self.g
        }

        fn name(&self) -> String {
            "mixed".into()
        }

        fn state_space(&self, node: NodeId) -> Vec<u8> {
            if node.index() == 1 {
                vec![0, 1, 2]
            } else {
                vec![0, 1]
            }
        }

        fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
            ActionMask::empty()
        }

        fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
            unreachable!("never enabled")
        }
    }

    fn indexer() -> SpaceIndexer<u8> {
        SpaceIndexer::new(
            &Mixed {
                g: builders::path(3),
            },
            1 << 20,
        )
        .unwrap()
    }

    #[test]
    fn total_is_product_of_alphabets() {
        assert_eq!(indexer().total(), 12);
    }

    #[test]
    fn encode_decode_round_trip() {
        let ix = indexer();
        for i in 0..ix.total() {
            let cfg = ix.decode(i);
            assert_eq!(ix.encode(&cfg), i);
        }
    }

    #[test]
    fn iter_visits_every_configuration_once() {
        let ix = indexer();
        let all: Vec<_> = ix.iter().collect();
        assert_eq!(all.len(), 12);
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(unique.len(), 12);
    }

    #[test]
    fn states_of_returns_sorted_alphabet() {
        let ix = indexer();
        assert_eq!(ix.states_of(NodeId::new(1)), &[0, 1, 2]);
        assert_eq!(ix.states_of(NodeId::new(0)), &[0, 1]);
    }

    #[test]
    fn cap_is_enforced() {
        let err = SpaceIndexer::new(
            &Mixed {
                g: builders::path(3),
            },
            10,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::StateSpaceTooLarge { total: 12, cap: 10 }
        ));
    }

    #[test]
    #[should_panic(expected = "not in declared state space")]
    fn encoding_foreign_state_panics() {
        let ix = indexer();
        let _ = ix.encode(&Configuration::from_vec(vec![0, 9, 0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decoding_out_of_range_panics() {
        let _ = indexer().decode(12);
    }
}
