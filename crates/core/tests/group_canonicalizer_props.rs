//! Property-test battery pinning the symmetry-group quotient engine
//! (`stab_core::engine::quotient`): orbit invariance, idempotence,
//! least-in-orbit minimality, Booth-vs-naive least rotation, and orbit
//! tiling, across all four canonicalization strategies on randomly drawn
//! spaces.

use proptest::collection::vec;
use proptest::prelude::*;

use stab_core::engine::{least_rotation, CanonScratch, GroupCanonicalizer};
use stab_core::{ActionId, ActionMask, Algorithm, Configuration, Outcomes, SpaceIndexer, View};
use stab_graph::{builders, Graph, NodeId, RingRotations};

/// A trivial algorithm carrying only a state space (never enabled).
struct States {
    g: Graph,
    radix: u8,
}

impl Algorithm for States {
    type State = u8;
    fn graph(&self) -> &Graph {
        &self.g
    }
    fn name(&self) -> String {
        "states".into()
    }
    fn state_space(&self, _v: NodeId) -> Vec<u8> {
        (0..self.radix).collect()
    }
    fn enabled_actions<V: View<u8>>(&self, _v: &V) -> ActionMask {
        ActionMask::empty()
    }
    fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
        unreachable!("never enabled")
    }
}

fn indexer(g: Graph, radix: u8) -> SpaceIndexer<u8> {
    SpaceIndexer::new(&States { g, radix }, 1 << 40).unwrap()
}

/// Applies a random word over the group generators to `full` — a random
/// group element, since the generators generate the group.
fn random_element(canon: &GroupCanonicalizer, full: u64, word: &[usize]) -> u64 {
    word.iter().fold(full, |x, &i| {
        let gens = canon.generators();
        canon.apply_perm(x, &gens[i % gens.len()])
    })
}

/// The four strategies on a common ring/star pair, for strategy-generic
/// properties.
fn canonicalizers(n: usize, radix: u8) -> Vec<(String, SpaceIndexer<u8>, GroupCanonicalizer)> {
    let ring = builders::ring(n);
    let ring_ix = indexer(ring.clone(), radix);
    let star = builders::star(n + 1);
    let star_ix = indexer(star.clone(), radix);
    let rot = RingRotations::of(&ring).unwrap();
    vec![
        (
            "rotation".into(),
            ring_ix.clone(),
            GroupCanonicalizer::ring_rotation(&ring, &ring_ix).unwrap(),
        ),
        (
            "dihedral".into(),
            ring_ix.clone(),
            GroupCanonicalizer::ring_dihedral(&ring, &ring_ix).unwrap(),
        ),
        (
            "leaf".into(),
            star_ix.clone(),
            GroupCanonicalizer::leaf_permutation(&star, &star_ix).unwrap(),
        ),
        (
            "explicit-dihedral".into(),
            ring_ix.clone(),
            GroupCanonicalizer::from_permutations(
                &ring_ix,
                &[rot.permutation(1), rot.reflection()],
            )
            .unwrap(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Booth's O(N) least rotation picks exactly the sequence the naive
    /// N-rotation sweep picks, on random alphabets and lengths.
    #[test]
    fn booth_equals_naive_sweep(seq in (1usize..24).prop_flat_map(|n| vec(0u32..5, n..=n))) {
        let n = seq.len();
        let k = least_rotation(&seq);
        prop_assert!(k < n, "rotation index in range");
        let booth: Vec<u32> = (0..n).map(|j| seq[(j + k) % n]).collect();
        let naive = (0..n)
            .map(|r| (0..n).map(|j| seq[(j + r) % n]).collect::<Vec<u32>>())
            .min()
            .unwrap();
        prop_assert_eq!(booth, naive, "sequence {:?}", seq);
    }

    /// `canon(g·x) = canon(x)` for random group elements `g` (random words
    /// over the generators), on every strategy.
    #[test]
    fn canonical_is_orbit_invariant(
        (n, radix) in (3usize..7, 2u8..4),
        x_frac in 0.0f64..1.0,
        word in vec(0usize..4, 0..6),
    ) {
        for (label, ix, canon) in canonicalizers(n, radix) {
            let full = (x_frac * ix.total() as f64) as u64 % ix.total();
            let image = random_element(&canon, full, &word);
            let mut s = CanonScratch::default();
            prop_assert_eq!(
                canon.canonical(full, &mut s),
                canon.canonical(image, &mut s),
                "{} at {} via {:?}", label, full, word
            );
        }
    }

    /// Canonicalization is idempotent and the canonical form is in the
    /// argument's orbit, on every strategy.
    #[test]
    fn canonical_is_idempotent_and_in_orbit(
        (n, radix) in (3usize..7, 2u8..4),
        x_frac in 0.0f64..1.0,
    ) {
        for (label, ix, canon) in canonicalizers(n, radix) {
            let full = (x_frac * ix.total() as f64) as u64 % ix.total();
            let mut s = CanonScratch::default();
            let c = canon.canonical(full, &mut s);
            prop_assert_eq!(canon.canonical(c, &mut s), c, "{} idempotent at {}", label, full);
            prop_assert!(canon.is_canonical(c, &mut s));
            // Membership: the canonical form is reachable by generator
            // words, i.e. the exhaustive closure of `full` contains it.
            let orbit = generator_closure(&canon, full);
            prop_assert!(orbit.contains(&c), "{}: {} not in orbit of {}", label, c, full);
            // And it is the *least* member of that orbit in digit order:
            // digit order with position weights ascending is index order
            // restricted per position, so compare decoded digit strings.
            let least = orbit
                .iter()
                .map(|&idx| ix.decode(idx).states().to_vec())
                .min()
                .unwrap();
            prop_assert_eq!(
                ix.decode(c).states().to_vec(),
                least,
                "{}: canonical not least in orbit of {}", label, full
            );
            // Orbit size agrees with the exhaustive enumeration and
            // divides the group order.
            prop_assert_eq!(canon.orbit(full, &mut s), orbit.len() as u64, "{} orbit", label);
            prop_assert_eq!(canon.group_order() % orbit.len() as u64, 0);
        }
    }

    /// Orbit sizes of the representatives tile the space exactly
    /// (Burnside-style check), on every strategy.
    #[test]
    fn orbits_tile_the_space((n, radix) in (3usize..6, 2u8..=3)) {
        for (label, ix, canon) in canonicalizers(n, radix) {
            let mut s = CanonScratch::default();
            let mut covered = 0u64;
            for full in 0..ix.total() {
                if canon.is_canonical(full, &mut s) {
                    covered += canon.orbit(full, &mut s);
                }
            }
            prop_assert_eq!(covered, ix.total(), "{} tiles", label);
        }
    }
}

/// Exhaustive orbit of `full` under the canonicalizer's generators
/// (fixed-point closure).
fn generator_closure(canon: &GroupCanonicalizer, full: u64) -> Vec<u64> {
    let mut seen = vec![full];
    let mut stack = vec![full];
    while let Some(x) = stack.pop() {
        for perm in canon.generators() {
            let y = canon.apply_perm(x, perm);
            if !seen.contains(&y) {
                seen.push(y);
                stack.push(y);
            }
        }
    }
    seen
}

/// The dihedral canonical form on *cycle order* digits coincides with the
/// explicit enumeration of all 2N images — a directed check that the lazy
/// Booth-of-both-directions comparison picks the true minimum (the
/// property suite above reaches it via the explicit strategy; this pins
/// the pair on a larger deterministic sweep).
#[test]
fn dihedral_booth_matches_explicit_on_a_full_space() {
    let g = builders::ring(7);
    let ix = indexer(g.clone(), 2);
    let dih = GroupCanonicalizer::ring_dihedral(&g, &ix).unwrap();
    let rot = RingRotations::of(&g).unwrap();
    let explicit =
        GroupCanonicalizer::from_permutations(&ix, &[rot.permutation(1), rot.reflection()])
            .unwrap();
    let mut s1 = CanonScratch::default();
    let mut s2 = CanonScratch::default();
    for full in 0..ix.total() {
        assert_eq!(
            dih.canonical(full, &mut s1),
            explicit.canonical(full, &mut s2),
            "at {full}"
        );
        assert_eq!(dih.orbit(full, &mut s1), explicit.orbit(full, &mut s2));
    }
}

/// Leaf-class canonicalization on a caterpillar: classes sort
/// independently, non-leaf digits are fixed, orbits are multinomials.
#[test]
fn caterpillar_leaf_canonicalization_is_classwise() {
    let g = builders::caterpillar(2, 2); // spine 0-1, legs {2,3} and {4,5}
    let ix = indexer(g.clone(), 3);
    let canon = GroupCanonicalizer::leaf_permutation(&g, &ix).unwrap();
    assert_eq!(canon.group_order(), 4); // 2! × 2!
    let mut s = CanonScratch::default();
    let full = ix.encode(&Configuration::from_vec(vec![2u8, 1, 2, 0, 1, 0]));
    let c = canon.canonical(full, &mut s);
    assert_eq!(ix.decode(c).states(), &[2u8, 1, 0, 2, 0, 1]);
    assert_eq!(canon.orbit(full, &mut s), 4);
    // A configuration with equal digits inside each class is fixed.
    let fixed = ix.encode(&Configuration::from_vec(vec![0u8, 2, 1, 1, 2, 2]));
    assert!(canon.is_canonical(fixed, &mut s));
    assert_eq!(canon.orbit(fixed, &mut s), 1);
}
