//! Property-test battery for the checkpoint/resume machinery
//! (`stab_core::engine::resilience`): arbitrary single-bit corruption and
//! torn writes over the frame chain must be *detected* (a typed
//! checkpoint error, never a wrong system), re-exploration over a
//! corrupted chain must heal it bit-for-bit, and a seeded kill at any
//! frame must resume into exactly the uninterrupted run's system.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use stab_core::engine::resilience::list_frames;
use stab_core::engine::{
    Budget, EdgeStoreKind, ExploreOptions, FaultPlan, RunGuard, TransitionSystem,
};
use stab_core::{
    ActionId, ActionMask, Algorithm, Configuration, CoreError, Daemon, Outcomes, Predicate,
    SpaceIndexer, View,
};
use stab_graph::{builders, Graph, NodeId};

// ---------------------------------------------------------------------
// The test algorithm: each process copies its left neighbour's bit.
// Deterministic, so every daemon is admissible and the checkpointed
// sequential path must reproduce the parallel sweep exactly.
// ---------------------------------------------------------------------
#[derive(Debug, Clone)]
struct CopyRing {
    g: Graph,
    orient: stab_graph::RingOrientation,
}

impl CopyRing {
    fn new(n: usize) -> Self {
        let g = builders::ring(n);
        let orient = stab_graph::RingOrientation::canonical(&g).unwrap();
        CopyRing { g, orient }
    }
}

impl Algorithm for CopyRing {
    type State = bool;

    fn graph(&self) -> &Graph {
        &self.g
    }

    fn name(&self) -> String {
        "copy-ring".into()
    }

    fn state_space(&self, _node: NodeId) -> Vec<bool> {
        vec![false, true]
    }

    fn enabled_actions<V: View<bool>>(&self, v: &V) -> ActionMask {
        let pred = *v.neighbor(self.orient.pred_port(v.node()));
        ActionMask::when(pred != *v.me(), ActionId::A1)
    }

    fn apply<V: View<bool>>(&self, v: &V, _a: ActionId) -> Outcomes<bool> {
        Outcomes::certain(*v.neighbor(self.orient.pred_port(v.node())))
    }
}

fn agreement() -> Predicate<bool> {
    Predicate::new("agreement", |c: &Configuration<bool>| {
        c.states().iter().all(|&b| b) || c.states().iter().all(|&b| !b)
    })
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "resilience-props-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tier(flag: bool) -> EdgeStoreKind {
    if flag {
        EdgeStoreKind::Compressed
    } else {
        EdgeStoreKind::Flat
    }
}

fn opts_for(compressed: bool) -> ExploreOptions<bool> {
    ExploreOptions::full().with_edge_store(tier(compressed))
}

/// Explores with checkpointing into a fresh directory and returns
/// `(dir, digest of the finished system)`.
fn checkpointed_run(
    alg: &CopyRing,
    ix: &SpaceIndexer<bool>,
    daemon: Daemon,
    compressed: bool,
    tag: &str,
) -> (PathBuf, u64) {
    let dir = tmp_dir(tag);
    let opts = opts_for(compressed).with_checkpoint(&dir, 2);
    let ts = TransitionSystem::explore_with(alg, ix, daemon, &agreement(), &opts).unwrap();
    (dir, ts.content_digest())
}

/// Whether `resumed` is one of the typed refusals a damaged chain may
/// produce (anything else — success included — is a soundness bug).
fn refused(resumed: &Result<u64, CoreError>) -> bool {
    matches!(
        resumed,
        Err(CoreError::CheckpointIncomplete { .. })
            | Err(CoreError::CheckpointCorrupt { .. })
            | Err(CoreError::CheckpointIo { .. })
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flipping ANY single bit of ANY frame is detected: cold resume
    /// refuses with a typed checkpoint error (CRC32C catches every 1-bit
    /// error; structural checks catch the rest) — it never hands back a
    /// silently wrong system. Warm re-exploration over the damaged chain
    /// then heals it bit-for-bit.
    #[test]
    fn any_single_bit_flip_is_detected_and_healed(
        n in 3usize..6,
        daemon_ix in 0usize..8,
        compressed in any::<bool>(),
        frame_pick in any::<u64>(),
        bit_pick in any::<u64>(),
    ) {
        let alg = CopyRing::new(n);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let daemon = Daemon::ALL[daemon_ix % Daemon::ALL.len()];
        let (dir, digest) = checkpointed_run(&alg, &ix, daemon, compressed, "flip");

        let frames = list_frames(&dir);
        prop_assert!(!frames.is_empty());
        let frame = &frames[(frame_pick % frames.len() as u64) as usize];
        let bits = std::fs::metadata(frame).unwrap().len() * 8;
        FaultPlan::flip_bit(frame, bit_pick % bits).unwrap();

        let resumed = TransitionSystem::resume(&dir).map(|ts| ts.content_digest());
        prop_assert!(
            refused(&resumed),
            "resume must refuse a corrupted chain, got {resumed:?}"
        );

        let opts = opts_for(compressed).with_checkpoint(&dir, 2);
        let healed =
            TransitionSystem::explore_with(&alg, &ix, daemon, &agreement(), &opts).unwrap();
        prop_assert_eq!(healed.content_digest(), digest, "healed run diverged");
        prop_assert_eq!(
            TransitionSystem::resume(&dir).unwrap().content_digest(),
            digest,
            "healed chain must cold-resume again"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating ANY frame at ANY point (a torn write) is detected the
    /// same way: typed refusal on cold resume, bit-for-bit healing on
    /// re-exploration.
    #[test]
    fn any_truncation_is_detected_and_healed(
        n in 3usize..6,
        daemon_ix in 0usize..8,
        compressed in any::<bool>(),
        frame_pick in any::<u64>(),
        keep_pick in any::<u64>(),
    ) {
        let alg = CopyRing::new(n);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let daemon = Daemon::ALL[daemon_ix % Daemon::ALL.len()];
        let (dir, digest) = checkpointed_run(&alg, &ix, daemon, compressed, "trunc");

        let frames = list_frames(&dir);
        prop_assert!(!frames.is_empty());
        let frame = &frames[(frame_pick % frames.len() as u64) as usize];
        let len = std::fs::metadata(frame).unwrap().len();
        FaultPlan::truncate_file(frame, keep_pick % len).unwrap();

        let resumed = TransitionSystem::resume(&dir).map(|ts| ts.content_digest());
        prop_assert!(
            refused(&resumed),
            "resume must refuse a torn frame, got {resumed:?}"
        );

        let opts = opts_for(compressed).with_checkpoint(&dir, 2);
        let healed =
            TransitionSystem::explore_with(&alg, &ix, daemon, &agreement(), &opts).unwrap();
        prop_assert_eq!(healed.content_digest(), digest, "healed run diverged");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A seeded kill plan (death after 1–8 durable frames) interrupts the
    /// run, and a plain re-run over the same directory resumes into
    /// exactly the uninterrupted system.
    #[test]
    fn seeded_kills_resume_into_the_uninterrupted_system(
        n in 3usize..6,
        daemon_ix in 0usize..8,
        compressed in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let alg = CopyRing::new(n);
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let daemon = Daemon::ALL[daemon_ix % Daemon::ALL.len()];
        let spec = agreement();
        let opts = opts_for(compressed);
        let plain = TransitionSystem::explore_with(&alg, &ix, daemon, &spec, &opts)
            .unwrap()
            .content_digest();

        let dir = tmp_dir("seeded");
        let ck_opts = opts.with_checkpoint(&dir, 2);
        let guard = RunGuard::new(Budget::unlimited(), FaultPlan::seeded(seed));
        let first =
            TransitionSystem::explore_guarded(&alg, &ix, daemon, &spec, &ck_opts, &guard)
                .map(|ts| ts.content_digest());
        let digest = match first {
            Err(CoreError::Interrupted { after_frames }) => {
                prop_assert!(after_frames >= 1, "died before any durable frame");
                TransitionSystem::explore_with(&alg, &ix, daemon, &spec, &ck_opts)
                    .unwrap()
                    .content_digest()
            }
            // The space finished before the seeded kill point.
            Ok(digest) => digest,
            Err(e) => {
                prop_assert!(false, "unexpected error: {e}");
                unreachable!()
            }
        };
        prop_assert_eq!(digest, plain, "seed {} diverged after resume", seed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
