//! Property-test battery pinning the three-tier edge store
//! (`stab_core::engine::edgestore`): varint/zig-zag round trips,
//! encode/decode round trips on arbitrary rows, monotone u64 offsets,
//! byte accounting, statewise agreement between the compressed stream
//! (in RAM or spilled to `WSR1` chunk files) and the flat `Csr<Edge>`
//! tier, and the spill-integrity property: a torn or bit-flipped chunk
//! is refused (typed error or panic) or served unchanged from cache —
//! never decoded into a wrong system.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::collection::vec;
use proptest::prelude::*;

use stab_core::engine::edgestore::vbyte;
use stab_core::engine::{
    CompressedEdgesBuilder, Csr, Edge, EdgeStorage, EdgeStorageBuilder, EdgeStore, EdgeStoreKind,
    SpillConfig,
};

/// A small palette of realistic Definition 6 probabilities (products of
/// activation and outcome factors), so the dedup table is exercised with
/// repeats *and* the arbitrary case below exercises growth.
const PROBS: [f64; 6] = [1.0, 0.5, 0.25, 1.0 / 3.0, 0.125, 2.0 / 3.0];

/// Strategy: one row of edges. `to` spans the id range, `movers` favours
/// low bits (as real activation masks do) but covers the full width,
/// `prob` is drawn from the palette.
fn row_strategy(n_ids: u32) -> impl Strategy<Value = Vec<Edge>> {
    vec(
        (0..n_ids, 0u64..1 << 20, 0usize..PROBS.len()).prop_map(|(to, movers, p)| Edge {
            to,
            movers,
            prob: PROBS[p],
        }),
        0..12,
    )
    .prop_map(|mut row| {
        // Exploration paths emit rows sorted by (to, movers); mirror that.
        row.sort_unstable_by_key(|e| (e.to, e.movers));
        row
    })
}

fn build_both(rows: &[Vec<Edge>]) -> (EdgeStorage, EdgeStorage) {
    let mut flat = EdgeStorageBuilder::new(EdgeStoreKind::Flat);
    let mut comp = EdgeStorageBuilder::new(EdgeStoreKind::Compressed);
    for r in rows {
        flat.push_row(r);
        comp.push_row(r);
    }
    (flat.finish(), comp.finish())
}

fn build_disk(rows: &[Vec<Edge>], chunk_bytes: u64, cache_bytes: u64) -> EdgeStorage {
    let cfg = SpillConfig {
        chunk_bytes,
        cache_bytes,
        ..SpillConfig::default()
    };
    let mut disk = EdgeStorageBuilder::with_spill(EdgeStoreKind::Disk, &cfg);
    for r in rows {
        disk.push_row(r);
    }
    disk.finish()
}

/// Decodes every row, or `None` if a decode panicked (a refused chunk).
fn try_decode_all(store: &EdgeStorage, n_rows: usize) -> Option<Vec<Vec<Edge>>> {
    catch_unwind(AssertUnwindSafe(|| {
        (0..n_rows).map(|i| store.row_iter(i).collect()).collect()
    }))
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LEB128 and zig-zag round-trip any u64 / i64.
    #[test]
    fn vbyte_round_trips(values in vec(any::<u64>(), 0..32), signed in vec(any::<i64>(), 0..32)) {
        let mut buf = Vec::new();
        for &v in &values {
            vbyte::write(&mut buf, v);
        }
        for &s in &signed {
            vbyte::write(&mut buf, vbyte::zigzag(s));
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(vbyte::read(&buf, &mut pos), v);
        }
        for &s in &signed {
            prop_assert_eq!(vbyte::unzigzag(vbyte::read(&buf, &mut pos)), s);
        }
        prop_assert_eq!(pos, buf.len(), "stream fully consumed");
    }

    /// Encode → decode is the identity on arbitrary (sorted) rows, and
    /// the stream's bookkeeping (offsets, edge count) is exact.
    #[test]
    fn compressed_round_trips_arbitrary_rows(
        rows in (1u32..200).prop_flat_map(|n| vec(row_strategy(n), 0..20)),
    ) {
        let mut b = CompressedEdgesBuilder::new();
        for r in &rows {
            b.push_row(r);
        }
        let store = b.finish();
        prop_assert_eq!(EdgeStore::n_rows(&store), rows.len());
        let want_edges: u64 = rows.iter().map(|r| r.len() as u64).sum();
        prop_assert_eq!(store.n_edges(), want_edges);
        // Offsets are monotone u64 byte positions ending at the stream's
        // length (edge_bytes minus the offset and prob tables).
        for w in store.offsets().windows(2) {
            prop_assert!(w[0] <= w[1], "offsets monotone");
        }
        let stream_bytes = store.edge_bytes()
            - (store.offsets().len() * 8) as u64
            - (store.prob_table_len() * 8) as u64;
        prop_assert_eq!(*store.offsets().last().unwrap(), stream_bytes);
        // Statewise round trip.
        for (i, want) in rows.iter().enumerate() {
            let got: Vec<Edge> = store.row_iter(i).collect();
            prop_assert_eq!(&got, want, "row {}", i);
            prop_assert_eq!(store.row_is_empty(i), want.is_empty());
        }
        // Every interned probability is distinct and referenced.
        prop_assert!(store.prob_table_len() <= PROBS.len());
    }

    /// The compressed tier decodes to exactly the rows the flat
    /// `Csr<Edge>` tier stores, row for row, and the selected-storage
    /// builders agree with a directly-assembled CSR.
    #[test]
    fn tiers_agree_with_csr(
        // Square adjacency (targets < row count), as real transition
        // systems are — required by the reverse-CSR invert.
        rows in (1usize..16).prop_flat_map(|n| vec(row_strategy(n as u32), n..=n)),
    ) {
        let (flat, comp) = build_both(&rows);
        let csr = Csr::from_rows(rows.clone());
        prop_assert_eq!(flat.n_edges(), csr.n_entries() as u64);
        prop_assert_eq!(comp.n_edges(), flat.n_edges());
        for i in 0..rows.len() {
            let from_flat: Vec<Edge> = flat.row_iter(i).collect();
            let from_comp: Vec<Edge> = comp.row_iter(i).collect();
            prop_assert_eq!(&from_flat, &from_comp, "row {}", i);
            prop_assert_eq!(from_comp, csr.row(i).to_vec(), "row {} vs Csr", i);
        }
        // Reverse adjacency built from the stream equals the flat invert.
        prop_assert_eq!(flat.invert_targets(), comp.invert_targets());
    }

    /// The disk tier — arbitrary chunk and cache geometry — decodes to
    /// exactly the flat rows, inverts identically, and passes chunk
    /// verification.
    #[test]
    fn disk_tier_agrees_with_flat(
        rows in (1usize..16).prop_flat_map(|n| vec(row_strategy(n as u32), n..=n)),
        chunk_bytes in 4u64..64,
        cache_bytes in 0u64..128,
    ) {
        let (flat, _) = build_both(&rows);
        let disk = build_disk(&rows, chunk_bytes, cache_bytes);
        prop_assert_eq!(disk.kind(), EdgeStoreKind::Disk);
        prop_assert_eq!(disk.n_edges(), flat.n_edges());
        for i in 0..rows.len() {
            let a: Vec<Edge> = flat.row_iter(i).collect();
            let b: Vec<Edge> = disk.row_iter(i).collect();
            prop_assert_eq!(a, b, "row {}", i);
        }
        prop_assert_eq!(flat.invert_targets(), disk.invert_targets());
        if let EdgeStorage::Disk(d) = &disk {
            d.verify_chunks().unwrap();
            // The cache respects its pinned budget (one chunk may stay
            // resident past it) and the residency math is coherent.
            prop_assert!(d.resident_bytes() <= disk.edge_bytes());
            prop_assert!(d.peak_resident_bytes() >= d.resident_bytes());
        } else {
            prop_assert!(false, "expected the disk variant");
        }
    }

    /// Spill-integrity: flip one byte (or tear the tail off) of an
    /// arbitrary chunk file — decoding afterwards either refuses (panic
    /// on the cache-miss read, typed error from `verify_chunks`) or
    /// yields exactly the original rows (the chunk was still cached).
    /// A successful decode that differs from the original is the one
    /// forbidden outcome.
    #[test]
    fn corrupt_spill_chunks_are_refused_or_healed_never_wrong(
        rows in (4usize..16).prop_flat_map(|n| vec(row_strategy(n as u32), n..=n)),
        chunk_bytes in 4u64..32,
        cache_bytes in 0u64..64,
        victim_pick in any::<u16>(),
        byte_pick in any::<u16>(),
        flip in 1u8..=255,
        truncate in any::<bool>(),
    ) {
        let disk = build_disk(&rows, chunk_bytes, cache_bytes);
        let expected = try_decode_all(&disk, rows.len()).expect("pristine store decodes");
        let EdgeStorage::Disk(d) = &disk else {
            return Err(proptest::test_runner::TestCaseError::Fail(
                "expected the disk variant".into(),
            ));
        };
        prop_assert!(d.verify_chunks().is_ok());
        let mut chunks: Vec<_> = std::fs::read_dir(d.spill_dir())
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "bin"))
            .collect();
        chunks.sort();
        if chunks.is_empty() {
            // Every row empty: nothing spilled, nothing to corrupt.
            return Ok(());
        }
        let victim = &chunks[victim_pick as usize % chunks.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        if truncate && !bytes.is_empty() {
            let keep = byte_pick as usize % bytes.len();
            bytes.truncate(keep);
        } else {
            let i = byte_pick as usize % bytes.len();
            bytes[i] ^= flip;
        }
        std::fs::write(victim, &bytes).unwrap();

        let verified = d.verify_chunks();
        match try_decode_all(&disk, rows.len()) {
            // Refused mid-decode: the typed check must refuse too
            // (decode panics only on a failed frame validation).
            None => prop_assert!(verified.is_err(), "decode refused but verify passed"),
            // Decoded without touching the bad bytes: the system must be
            // unchanged (served from cache, or the flip landed in a
            // frame field the payload never depends on).
            Some(got) => prop_assert_eq!(got, expected, "corrupt chunk decoded differently"),
        }
    }

    /// Realistic rows compress: with palette probabilities and sorted
    /// successors, the stream stays under 10 bytes/edge even on adversarial
    /// random rows (widely-spread first deltas included).
    #[test]
    fn compression_stays_under_budget(
        rows in (1u32..50_000).prop_flat_map(|n| vec(row_strategy(n), 4..12)),
    ) {
        let (flat, comp) = build_both(&rows);
        let edges = comp.n_edges();
        if edges >= 8 {
            prop_assert!(comp.edge_bytes() < flat.edge_bytes());
            let per_edge = (comp.edge_bytes() as f64
                - (EdgeStore::n_rows(&comp) as u64 + 1) as f64 * 8.0
                - 8.0 * PROBS.len() as f64)
                / edges as f64;
            prop_assert!(per_edge <= 10.0, "stream bytes/edge {per_edge}");
        }
    }
}
