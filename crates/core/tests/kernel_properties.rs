//! Property-based tests of the guarded-command kernel.

use proptest::prelude::*;
use rand::SeedableRng;

use stab_core::{
    semantics, ActionId, ActionMask, Activation, Algorithm, Configuration, Daemon, Outcomes,
    SpaceIndexer, Transformed, View,
};
use stab_graph::{builders, Graph, NodeId};

// ---------------------------------------------------------------------
// A configurable probabilistic test algorithm: every process is enabled
// whenever its value is below its cap and moves to a uniform value.
// ---------------------------------------------------------------------
#[derive(Debug, Clone)]
struct Dice {
    g: Graph,
    caps: Vec<u8>,
}

impl Algorithm for Dice {
    type State = u8;

    fn graph(&self) -> &Graph {
        &self.g
    }

    fn name(&self) -> String {
        "dice".into()
    }

    fn state_space(&self, node: NodeId) -> Vec<u8> {
        (0..=self.caps[node.index()]).collect()
    }

    fn enabled_actions<V: View<u8>>(&self, v: &V) -> ActionMask {
        ActionMask::when(*v.me() < self.caps[v.node().index()], ActionId::A1)
    }

    fn apply<V: View<u8>>(&self, v: &V, _a: ActionId) -> Outcomes<u8> {
        Outcomes::uniform((0..=self.caps[v.node().index()]).collect())
    }

    fn is_probabilistic(&self) -> bool {
        true
    }
}

fn dice_strategy() -> impl Strategy<Value = Dice> {
    (2usize..6).prop_flat_map(|n| {
        proptest::collection::vec(1u8..4, n).prop_map(move |caps| Dice {
            g: builders::path(caps.len()),
            caps,
        })
    })
}

proptest! {
    /// Weighted outcome distributions always carry total mass 1 and merge
    /// duplicate states.
    #[test]
    fn outcomes_mass_is_one(weights in proptest::collection::vec(1u32..100, 1..8)) {
        let total: u32 = weights.iter().sum();
        let entries: Vec<(f64, u8)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (w as f64 / total as f64, (i % 3) as u8))
            .collect();
        let o = Outcomes::weighted(entries);
        let mass: f64 = o.entries().iter().map(|(p, _)| p).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(o.entries().len() <= 3, "duplicates merged");
        for (p, _) in o.entries() {
            prop_assert!(*p > 0.0);
        }
    }

    /// Activations sort and deduplicate their nodes.
    #[test]
    fn activation_canonical_form(ids in proptest::collection::vec(0usize..20, 1..15)) {
        let act = Activation::new(ids.iter().map(|&i| NodeId::new(i)).collect());
        let nodes = act.nodes();
        for w in nodes.windows(2) {
            prop_assert!(w[0] < w[1], "sorted and unique");
        }
        for &i in &ids {
            prop_assert!(act.contains(NodeId::new(i)));
        }
    }

    /// Enumerated activation counts match the daemon's combinatorics.
    #[test]
    fn daemon_activation_counts(k in 1usize..8) {
        let g = builders::complete(10);
        let enabled: Vec<NodeId> = (0..k).map(NodeId::new).collect();
        let central = Daemon::Central.activations(&g, &enabled).unwrap();
        prop_assert_eq!(central.len(), k);
        let sync = Daemon::Synchronous.activations(&g, &enabled).unwrap();
        prop_assert_eq!(sync.len(), 1);
        let dist = Daemon::Distributed.activations(&g, &enabled).unwrap();
        prop_assert_eq!(dist.len(), (1usize << k) - 1);
        // On a complete graph, locally-central = central (all adjacent).
        let lc = Daemon::LocallyCentral.activations(&g, &enabled).unwrap();
        prop_assert_eq!(lc.len(), k);
    }

    /// Sampled activations are always non-empty subsets of the enabled set
    /// with the daemon's cardinality constraints.
    #[test]
    fn daemon_samples_are_wellformed(k in 1usize..12, seed in 0u64..1000) {
        let g = builders::ring(16);
        let enabled: Vec<NodeId> = (0..k).map(NodeId::new).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for daemon in Daemon::ALL {
            let act = daemon.sample(&g, &enabled, &mut rng);
            prop_assert!(!act.is_empty());
            for v in act.nodes() {
                prop_assert!(enabled.contains(v));
            }
            match daemon {
                Daemon::Central => prop_assert_eq!(act.len(), 1),
                Daemon::Synchronous => prop_assert_eq!(act.len(), k),
                _ => {}
            }
        }
    }

    /// SpaceIndexer bijection on random mixed-radix spaces.
    #[test]
    fn space_indexer_bijects(alg in dice_strategy()) {
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let expected: u64 = alg.caps.iter().map(|&c| c as u64 + 1).product();
        prop_assert_eq!(ix.total(), expected);
        for i in 0..ix.total() {
            let cfg = ix.decode(i);
            prop_assert_eq!(ix.encode(&cfg), i);
        }
    }

    /// Delta-encoding equals full re-encoding: for any configuration and
    /// any set of single-node rewrites,
    /// `encode(γ') = encode(γ) + Σ_v (digit'(v) − digit(v)) · weight(v)` —
    /// the identity the CSR engine's successor computation relies on.
    #[test]
    fn delta_encode_equals_full_encode(
        alg in dice_strategy(),
        idx in 0u64..10_000,
        rewrites in proptest::collection::vec((0usize..6, 0u8..4), 1..6),
    ) {
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let cfg = ix.decode(idx % ix.total());
        let mut delta_id = ix.encode(&cfg) as i64;
        let mut rewritten = cfg.clone();
        for &(v, s) in &rewrites {
            let node = NodeId::new(v % alg.n());
            let state = s % (alg.caps[node.index()] + 1);
            let old_digit = ix.digit_of(node, rewritten.get(node)) as i64;
            let new_digit = ix.digit_of(node, &state) as i64;
            delta_id += (new_digit - old_digit) * ix.weight(node) as i64;
            rewritten.set(node, state);
        }
        prop_assert_eq!(ix.encode(&rewritten), delta_id as u64);
        // And the digit/weight accessors are consistent with decode.
        let mut digits = Vec::new();
        ix.write_digits(ix.encode(&rewritten), &mut digits);
        for (v, &digit) in digits.iter().enumerate() {
            let node = NodeId::new(v);
            prop_assert_eq!(digit as usize, ix.digit_of(node, rewritten.get(node)));
            prop_assert_eq!(ix.state_at(node, digit as usize), rewritten.get(node));
        }
    }

    /// The engine's in-place cursor visits exactly the decode sequence.
    #[test]
    fn cursor_walk_matches_decode(alg in dice_strategy(), start in 0u64..10_000) {
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let start = start % ix.total();
        let mut cursor = stab_core::engine::ConfigCursor::new(&ix, start);
        for id in start..ix.total() {
            prop_assert_eq!(cursor.id(), id);
            prop_assert_eq!(cursor.config(), &ix.decode(id));
            let advanced = cursor.advance();
            prop_assert_eq!(advanced, id + 1 < ix.total());
        }
    }

    /// Successor distributions carry total mass 1 and branch at most
    /// `Π |state_space|` ways for any activation of the probabilistic dice.
    #[test]
    fn successor_distribution_mass(alg in dice_strategy(), seed in 0u64..100) {
        let cfg = Configuration::from_vec(vec![0u8; alg.n()]);
        let enabled = alg.enabled_nodes(&cfg);
        prop_assume!(!enabled.is_empty());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let act = Daemon::Distributed.sample(alg.graph(), &enabled, &mut rng);
        let dist = semantics::successor_distribution(&alg, &cfg, &act);
        let mass: f64 = dist.iter().map(|(p, _)| p).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "mass {}", mass);
        // All successors are distinct after merging.
        for i in 0..dist.len() {
            for j in i + 1..dist.len() {
                prop_assert_ne!(&dist[i].1, &dist[j].1);
            }
        }
    }

    /// The transformer never changes guards: enabled sets of `Trans(A)`
    /// equal those of `A` on every projection, for any coin pattern.
    #[test]
    fn transformer_preserves_guards(alg in dice_strategy(), coins in proptest::collection::vec(any::<bool>(), 6), idx in 0u64..500) {
        let trans = Transformed::new(alg.clone());
        let ix = SpaceIndexer::new(&alg, 1 << 20).unwrap();
        let cfg = ix.decode(idx % ix.total());
        let mut lifted = Transformed::<Dice>::lift(&cfg, false);
        for v in 0..alg.n() {
            let s = *lifted.get(NodeId::new(v));
            lifted.set(NodeId::new(v), stab_core::Coined::new(s.base, coins[v % coins.len()]));
        }
        prop_assert_eq!(alg.enabled_nodes(&cfg), trans.enabled_nodes(&lifted));
    }

    /// Transformer state spaces double, exactly.
    #[test]
    fn transformer_doubles_state_space(alg in dice_strategy()) {
        let trans = Transformed::new(alg.clone());
        for v in 0..alg.n() {
            prop_assert_eq!(
                trans.state_space(NodeId::new(v)).len(),
                2 * alg.state_space(NodeId::new(v)).len()
            );
        }
    }

    /// `deterministic_successor` and `successor_distribution` agree on
    /// deterministic systems (the infection test algorithm).
    #[test]
    fn deterministic_paths_agree(n in 3usize..7, infected in proptest::collection::vec(any::<bool>(), 3..7)) {
        #[derive(Debug)]
        struct Infect { g: Graph }
        impl Algorithm for Infect {
            type State = u8;
            fn graph(&self) -> &Graph { &self.g }
            fn name(&self) -> String { "infect".into() }
            fn state_space(&self, _n: NodeId) -> Vec<u8> { vec![0, 1] }
            fn enabled_actions<V: View<u8>>(&self, v: &V) -> ActionMask {
                ActionMask::when(*v.me() == 0 && v.count_neighbors(|&s| s == 1) > 0, ActionId::A1)
            }
            fn apply<V: View<u8>>(&self, _v: &V, _a: ActionId) -> Outcomes<u8> {
                Outcomes::certain(1)
            }
        }
        let alg = Infect { g: builders::ring(n) };
        let states: Vec<u8> = (0..n).map(|i| infected[i % infected.len()] as u8).collect();
        let cfg = Configuration::from_vec(states);
        let enabled = alg.enabled_nodes(&cfg);
        prop_assume!(!enabled.is_empty());
        let act = Activation::new(enabled);
        let det = semantics::deterministic_successor(&alg, &cfg, &act);
        let dist = semantics::successor_distribution(&alg, &cfg, &act);
        prop_assert_eq!(dist.len(), 1);
        prop_assert_eq!(&dist[0].1, &det);
    }
}
