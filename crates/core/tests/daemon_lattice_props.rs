//! Property-test battery for the daemon lattice (`stab_core::DaemonSpec`):
//! enumeration/sampling agreement, refinement-order laws, semantic
//! soundness of refinement (activation inclusion), and lossless
//! round-tripping of the paper's four daemons through the lattice
//! encoding — on randomly drawn lattice points, graphs and enabled sets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use stab_core::{Activation, Boundedness, Daemon, DaemonSpec, Distribution, Fairness};
use stab_graph::{builders, Graph, NodeId};

/// Random lattice point: any distribution × fairness × boundedness
/// (`k = 0` encodes an unconstrained size, `bound = 0` no bound).
fn any_spec() -> impl Strategy<Value = DaemonSpec> {
    (0usize..5, 0u32..5, 0u32..3, 0usize..4, 0u32..5).prop_map(
        |(shape, k, radius, fairness, bound)| DaemonSpec {
            distribution: if shape == 0 {
                Distribution::Synchronous
            } else {
                Distribution::KCentral {
                    k: (k > 0).then_some(k),
                    radius,
                }
            },
            fairness: Fairness::ALL[fairness],
            bound: if bound == 0 {
                Boundedness::Unbounded
            } else {
                Boundedness::EnabledBounded(bound)
            },
        },
    )
}

/// Random small test graph (ring, path or star) with `n ≥ 3` nodes.
fn any_graph() -> impl Strategy<Value = Graph> {
    (3usize..7, 0usize..3).prop_map(|(n, shape)| match shape {
        0 => builders::ring(n),
        1 => builders::path(n),
        _ => builders::star(n),
    })
}

/// A non-empty enabled set drawn from `g`'s nodes.
fn enabled_in(g: &Graph) -> Vec<NodeId> {
    g.nodes().collect()
}

/// Selects a sub-slice of `all` by bitmask, never empty (falls back to
/// the full set).
fn subset(all: &[NodeId], mask: usize) -> Vec<NodeId> {
    let picked: Vec<NodeId> = all
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, v)| v)
        .collect();
    if picked.is_empty() {
        all.to_vec()
    } else {
        picked
    }
}

/// The distribution's step-level predicate, written independently of the
/// enumeration code: size bound and pairwise spreading via BFS distance.
fn allowed(d: Distribution, g: &Graph, enabled: &[NodeId], act: &Activation) -> bool {
    match d {
        Distribution::Synchronous => act.nodes() == enabled,
        Distribution::KCentral { k, radius } => {
            let within_k = k.is_none_or(|k| act.len() as u64 <= u64::from(k));
            let spread = act.nodes().iter().enumerate().all(|(i, &a)| {
                act.nodes()
                    .iter()
                    .skip(i + 1)
                    .all(|&b| bfs_distance(g, a, b) > usize::try_from(radius).unwrap())
            });
            within_k && spread && !act.is_empty()
        }
    }
}

fn bfs_distance(g: &Graph, a: NodeId, b: NodeId) -> usize {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::from([a]);
    dist[a.index()] = 0;
    while let Some(v) = queue.pop_front() {
        if v == b {
            return dist[v.index()];
        }
        for &w in g.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    usize::MAX
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `activations()` is exactly the brute-force filter of all non-empty
    /// enabled subsets by the distribution's independently written
    /// predicate, and `activation_count()` agrees with its length.
    #[test]
    fn enumeration_matches_the_predicate(
        spec in any_spec(),
        g in any_graph(),
        mask in 1usize..64,
    ) {
        let enabled = subset(&enabled_in(&g), mask);
        let acts = spec.activations(&g, &enabled).unwrap();
        // Exactly the allowed subsets, each exactly once.
        let mut seen = std::collections::HashSet::new();
        for a in &acts {
            prop_assert!(allowed(spec.distribution, &g, &enabled, a), "{a:?} not allowed");
            prop_assert!(seen.insert(a.nodes().to_vec()), "{a:?} enumerated twice");
        }
        let total = 1usize << enabled.len();
        for m in 1..total {
            let cand = Activation::new(
                enabled.iter().copied().enumerate()
                    .filter(|(i, _)| m >> i & 1 == 1)
                    .map(|(_, v)| v)
                    .collect(),
            );
            prop_assert_eq!(
                seen.contains(cand.nodes()),
                allowed(spec.distribution, &g, &enabled, &cand),
                "membership mismatch for {:?}", cand
            );
        }
        prop_assert_eq!(spec.activation_count(&g, &enabled), acts.len() as u128);
    }

    /// Every sampled activation is one of the enumerated ones, and on
    /// small enabled sets seeded sampling reaches every enumerated
    /// activation: the supports coincide.
    #[test]
    fn sample_support_equals_activation_support(
        spec in any_spec(),
        g in any_graph(),
        mask in 1usize..8,
        seed in 0u64..1 << 48,
    ) {
        let enabled = subset(&enabled_in(&g)[..3], mask % 8);
        let acts: std::collections::HashSet<Vec<NodeId>> = spec
            .activations(&g, &enabled)
            .unwrap()
            .into_iter()
            .map(|a| a.nodes().to_vec())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hit = std::collections::HashSet::new();
        for _ in 0..600 {
            let a = spec.sample(&g, &enabled, &mut rng);
            prop_assert!(
                acts.contains(a.nodes()),
                "sampled {:?} outside the enumerated support", a
            );
            hit.insert(a.nodes().to_vec());
        }
        // ≤ 7 activations, each with probability ≥ 2^-3·(1/64 rejection
        // floor): 600 draws miss one with negligible (and, seeded,
        // reproducible) probability.
        prop_assert_eq!(hit, acts, "sampling missed part of the support");
    }

    /// The refinement order is reflexive and transitive on random points
    /// (antisymmetry fails by design: distinct encodings can be
    /// behaviourally equal, e.g. `k = Some(1)` at different radii).
    #[test]
    fn refines_is_a_preorder(
        a in any_spec(),
        b in any_spec(),
        c in any_spec(),
    ) {
        prop_assert!(a.refines(a), "reflexive at {a:?}");
        if a.refines(b) && b.refines(c) {
            prop_assert!(a.refines(c), "transitivity: {a:?} ⊑ {b:?} ⊑ {c:?}");
        }
    }

    /// Semantic soundness of the distribution component: if `a` refines
    /// `b`, every activation `a` allows is an activation `b` allows — on
    /// every graph and enabled set (execution inclusion, one step at a
    /// time).
    #[test]
    fn refinement_implies_activation_inclusion(
        a in any_spec(),
        b in any_spec(),
        g in any_graph(),
        mask in 1usize..64,
    ) {
        prop_assume!(a.refines(b));
        let enabled = subset(&enabled_in(&g), mask);
        let allowed_by_b: std::collections::HashSet<Vec<NodeId>> = b
            .activations(&g, &enabled)
            .unwrap()
            .into_iter()
            .map(|x| x.nodes().to_vec())
            .collect();
        for act in a.activations(&g, &enabled).unwrap() {
            prop_assert!(
                allowed_by_b.contains(act.nodes()),
                "{:?} allowed by {:?} but not by the coarser {:?}", act, a, b
            );
        }
    }

    /// Fairness and boundedness refinement agree with the implied-verdict
    /// set: a point's meaningful verdicts are exactly the fairness
    /// assumptions at least as strong as its own.
    #[test]
    fn implied_verdicts_track_fairness_refinement(spec in any_spec()) {
        let implied = spec.implied_verdicts();
        for f in Fairness::ALL {
            prop_assert_eq!(
                implied.contains(f),
                f.refines(spec.fairness),
                "{:?} @ {:?}", spec, f
            );
        }
    }
}

// ---------------------------------------------------------------------
// The four legacy points (deterministic, not property-based)
// ---------------------------------------------------------------------

/// `Daemon → DaemonSpec → Daemon` is the identity, names are preserved,
/// and the legacy points are pairwise distinct lattice points.
#[test]
fn legacy_points_round_trip() {
    for d in Daemon::ALL {
        let spec = DaemonSpec::from(d);
        assert_eq!(spec.legacy(), Some(d), "{d} round trip");
        assert_eq!(spec.name(), d.name(), "{d} name");
        assert_eq!(spec, d, "{d} PartialEq<Daemon>");
        assert_eq!(d.spec(), spec, "{d} Daemon::spec agrees with From");
    }
    for (i, a) in DaemonSpec::LEGACY.iter().enumerate() {
        for b in &DaemonSpec::LEGACY[i + 1..] {
            assert_ne!(a, b, "legacy points are distinct");
        }
    }
}

/// On the legacy points, the lattice enumeration reproduces the enum
/// enumeration exactly — same activations in the same order — and seeded
/// sampling consumes the random stream identically.
#[test]
fn legacy_points_enumerate_and_sample_identically() {
    for g in [builders::ring(5), builders::path(4), builders::star(5)] {
        let all: Vec<NodeId> = g.nodes().collect();
        for d in Daemon::ALL {
            let spec = DaemonSpec::from(d);
            for mask in 1usize..1 << all.len().min(5) {
                let enabled = subset(&all, mask);
                assert_eq!(
                    spec.activations(&g, &enabled).unwrap(),
                    d.activations(&g, &enabled).unwrap(),
                    "{d} activations on {enabled:?}"
                );
                assert_eq!(
                    spec.activation_count(&g, &enabled),
                    d.activation_count(&g, &enabled),
                    "{d} count on {enabled:?}"
                );
                for seed in 0..8u64 {
                    let a = spec.sample(&g, &enabled, &mut StdRng::seed_from_u64(seed));
                    let b = d.sample(&g, &enabled, &mut StdRng::seed_from_u64(seed));
                    assert_eq!(a, b, "{d} sample @ seed {seed} on {enabled:?}");
                }
            }
        }
    }
}

/// The named constructors match the refinement structure the paper uses:
/// central ⊑ locally-central ⊑ distributed, synchronous ⊑ distributed,
/// and the synchronous/central pair is incomparable.
#[test]
fn legacy_lattice_shape() {
    let c = DaemonSpec::central();
    let lc = DaemonSpec::locally_central();
    let d = DaemonSpec::distributed();
    let s = DaemonSpec::synchronous();
    assert!(c.refines(lc) && lc.refines(d) && c.refines(d));
    assert!(s.refines(d));
    assert!(!s.refines(c) && !c.refines(s));
    assert!(!d.refines(c) && !d.refines(lc) && !d.refines(s));
}
