//! Workspace symbol resolution: the per-crate item table.
//!
//! [`resolve`] walks every loaded file's token stream once and extracts
//! an [`Item`] per `fn` — its name, the `impl`/`trait` self type it is
//! defined under (if any), its module path (derived from the file path
//! plus inline `mod` nesting), its visibility, whether it sits inside a
//! `#[cfg(test)]` module, and the token range of its body. The table is
//! the substrate for the interprocedural passes: the call graph
//! ([`crate::callgraph`]) connects items by name, the panic pass walks
//! reachability over it, and the capture pass uses the item spans to
//! find the function enclosing a fork-join call site.
//!
//! **Over-approximation model.** This is a lexer-level resolver, not a
//! type checker: items are keyed by bare name, generics are skipped
//! structurally, and no trait dispatch is modelled. Every consumer is
//! designed so imprecision only *widens* the analysed set (more
//! reachable functions, more candidate callees) — it can produce an
//! annotation request that a full type checker would not, never an
//! unsound silence. Test modules (`#[cfg(test)] mod …`) are resolved
//! but marked [`Item::in_test`]; the audit passes exempt them, since
//! test code may abort freely.

use std::ops::Range;

use crate::lexer::{Token, TokenKind};
use crate::SourceFile;

/// One resolved `fn` item.
#[derive(Debug)]
pub struct Item {
    /// Bare function name.
    pub name: String,
    /// The `impl`/`trait` self type the item is defined under, if any
    /// (last path segment: `impl EdgeStore for CompressedEdges` →
    /// `CompressedEdges`; `trait QRows` → `QRows`).
    pub self_type: Option<String>,
    /// Module path derived from the file path plus inline `mod`
    /// nesting: `crates/core/src/engine/spill.rs` → `core::engine::spill`.
    pub module_path: String,
    /// File stem (`spill` for `engine/spill.rs`) — the allowlist key
    /// prefix, kept stable across the PR 9 grammar.
    pub file_stem: String,
    /// Index of the defining file in the slice passed to [`resolve`].
    pub file_idx: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body (exclusive of the braces).
    pub body: Range<usize>,
    /// Declared with a `pub` (incl. `pub(crate)`) visibility.
    pub is_pub: bool,
    /// Defined inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// The resolved item table for a set of files.
#[derive(Debug, Default)]
pub struct Resolved {
    /// All items, in (file, token) order.
    pub items: Vec<Item>,
    /// Per file: token index ranges covered by `#[cfg(test)] mod`
    /// bodies, sorted and disjoint.
    pub test_tokens: Vec<Vec<Range<usize>>>,
}

impl Resolved {
    /// Human-readable display name for chains and diagnostics:
    /// `Type::name` under an impl/trait, `file_stem::name` otherwise.
    pub fn display(&self, idx: usize) -> String {
        let it = &self.items[idx];
        match &it.self_type {
            Some(t) => format!("{t}::{}", it.name),
            None => format!("{}::{}", it.file_stem, it.name),
        }
    }

    /// The allowlist key of an item (`file_stem::name`, the PR 9
    /// grammar).
    pub fn allow_key(&self, idx: usize) -> String {
        let it = &self.items[idx];
        format!("{}::{}", it.file_stem, it.name)
    }

    /// Whether token index `tok` of file `file_idx` lies inside a
    /// `#[cfg(test)]` module body.
    pub fn in_test_tokens(&self, file_idx: usize, tok: usize) -> bool {
        self.test_tokens
            .get(file_idx)
            .is_some_and(|rs| rs.iter().any(|r| r.contains(&tok)))
    }
}

/// Derives the dotted module path and file stem from a workspace-
/// relative path: `crates/core/src/engine/spill.rs` →
/// (`core::engine::spill`, `spill`); the facade's `src/study/mod.rs` →
/// (`facade::study`, `mod`). Fixture files keep their bare stem.
fn module_path_of(rel_path: &str) -> (String, String) {
    let stem = rel_path
        .rsplit('/')
        .next()
        .unwrap_or(rel_path)
        .trim_end_matches(".rs")
        .to_string();
    let parts: Vec<&str> = rel_path.trim_end_matches(".rs").split('/').collect();
    let mut comps: Vec<String> = Vec::new();
    match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] => {
            comps.push((*krate).to_string());
            comps.extend(rest.iter().map(|s| s.to_string()));
        }
        ["src", rest @ ..] => {
            comps.push("facade".to_string());
            comps.extend(rest.iter().map(|s| s.to_string()));
        }
        _ => comps.push(stem.clone()),
    }
    // `mod.rs` / `lib.rs` / `main.rs` name their parent, not themselves.
    if comps.len() > 1
        && matches!(
            comps.last().map(String::as_str),
            Some("mod" | "lib" | "main")
        )
    {
        comps.pop();
    }
    (comps.join("::"), stem)
}

/// Extracts the self type from an `impl` header token slice (the tokens
/// strictly between `impl` and the body `{`): the last path segment at
/// angle-bracket depth 0, restarting after a `for` (so the trait name
/// of `impl Trait for Type` never wins), stopping at `where`.
fn impl_self_type(header: &[Token]) -> Option<String> {
    let mut angle: i64 = 0;
    let mut cur: Option<String> = None;
    for t in header {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle = (angle - 1).max(0),
            (TokenKind::Ident, "for") if angle == 0 => cur = None,
            (TokenKind::Ident, "where") if angle == 0 => break,
            (TokenKind::Ident, "dyn" | "mut" | "const" | "unsafe") => {}
            (TokenKind::Ident, name) if angle == 0 => cur = Some(name.to_string()),
            _ => {}
        }
    }
    cur
}

/// Whether the tokens before index `i` (the `fn` keyword) declare the
/// item `pub`: walks back over `const`/`unsafe`/`async`/`extern`, ABI
/// strings and one `( … )` restriction group.
fn is_pub_before(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match (toks[j].kind, toks[j].text.as_str()) {
            (TokenKind::Ident, "const" | "unsafe" | "async" | "extern") => {}
            (TokenKind::Str, _) => {}
            (TokenKind::Punct, ")") => {
                // Skip back over a `(crate)`-style restriction group.
                let mut d = 1;
                while j > 0 && d > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        ")" => d += 1,
                        "(" => d -= 1,
                        _ => {}
                    }
                }
            }
            (TokenKind::Ident, "pub") => return true,
            _ => return false,
        }
    }
    false
}

/// Whether the attribute group ending just before token `i` (i.e. the
/// tokens `# [ … ]` whose `]` is at `i - 1`) contains `cfg ( test`.
/// Walks back over any number of stacked attributes.
fn cfg_test_before(toks: &[Token], mut i: usize) -> bool {
    loop {
        if i == 0 || !(toks[i - 1].kind == TokenKind::Punct && toks[i - 1].text == "]") {
            return false;
        }
        // Find the matching `[`.
        let mut j = i - 1;
        let mut d = 1;
        while j > 0 && d > 0 {
            j -= 1;
            match toks[j].text.as_str() {
                "]" => d += 1,
                "[" => d -= 1,
                _ => {}
            }
        }
        if j == 0 || !(toks[j - 1].kind == TokenKind::Punct && toks[j - 1].text == "#") {
            return false;
        }
        let attr = &toks[j..i - 1];
        let is_cfg_test = attr.windows(3).any(|w| {
            w[0].kind == TokenKind::Ident
                && w[0].text == "cfg"
                && w[1].text == "("
                && w[2].kind == TokenKind::Ident
                && w[2].text == "test"
        });
        if is_cfg_test {
            return true;
        }
        i = j - 1; // Try the attribute above this one.
    }
}

/// Resolves the item table over `files`.
pub fn resolve(files: &[SourceFile]) -> Resolved {
    let mut out = Resolved {
        items: Vec::new(),
        test_tokens: vec![Vec::new(); files.len()],
    };
    for (file_idx, file) in files.iter().enumerate() {
        extract_file(file_idx, file, &mut out);
    }
    out
}

fn extract_file(file_idx: usize, file: &SourceFile, out: &mut Resolved) {
    let toks = &file.lexed.tokens;
    let (file_module, stem) = module_path_of(&file.rel_path);
    let mut depth: i64 = 0;
    // Enclosing-scope stacks, keyed by the depth *inside* their body.
    let mut impl_stack: Vec<(i64, Option<String>)> = Vec::new();
    let mut mod_stack: Vec<(i64, String)> = Vec::new();
    // (depth inside body, start token) of open `#[cfg(test)] mod` bodies.
    let mut test_stack: Vec<(i64, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Punct && t.text == "{" {
            depth += 1;
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Punct && t.text == "}" {
            depth -= 1;
            while impl_stack.last().is_some_and(|&(d, _)| d > depth) {
                impl_stack.pop();
            }
            while mod_stack.last().is_some_and(|&(d, _)| d > depth) {
                mod_stack.pop();
            }
            while test_stack.last().is_some_and(|&(d, _)| d > depth) {
                let (_, start) = test_stack.pop().expect("just checked non-empty");
                out.test_tokens[file_idx].push(start..i);
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && (t.text == "impl" || t.text == "trait") {
            // Header runs to the body `{` or a bodyless `;` (trait
            // bounds in `impl Trait for …` headers carry no braces in
            // this workspace).
            let is_trait = t.text == "trait";
            let mut j = i + 1;
            while j < toks.len()
                && !(toks[j].kind == TokenKind::Punct
                    && (toks[j].text == "{" || toks[j].text == ";"))
            {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                let self_type = if is_trait {
                    toks.get(i + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                } else {
                    impl_self_type(&toks[i + 1..j])
                };
                impl_stack.push((depth + 1, self_type));
                depth += 1;
            }
            i = j + 1;
            continue;
        }
        if t.kind == TokenKind::Ident && t.text == "mod" {
            let name = toks
                .get(i + 1)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.clone());
            let body_open = toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "{");
            if let (Some(name), true) = (name, body_open) {
                if cfg_test_before(toks, i) {
                    test_stack.push((depth + 1, i + 3));
                }
                mod_stack.push((depth + 1, name));
                depth += 1;
                i += 3;
                continue;
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && t.text == "fn" {
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokenKind::Ident {
                // `fn(..)` pointer type, not an item.
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            // Signature runs to the body `{` or a bodyless `;`.
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                if toks[j].kind == TokenKind::Punct {
                    if toks[j].text == ";" {
                        break;
                    }
                    if toks[j].text == "{" {
                        let mut d = 1i64;
                        let start = j + 1;
                        let mut k = start;
                        while k < toks.len() && d > 0 {
                            if toks[k].kind == TokenKind::Punct {
                                if toks[k].text == "{" {
                                    d += 1;
                                } else if toks[k].text == "}" {
                                    d -= 1;
                                }
                            }
                            k += 1;
                        }
                        body = Some(start..k.saturating_sub(1));
                        break;
                    }
                }
                j += 1;
            }
            if let Some(body) = body {
                let self_type = impl_stack
                    .last()
                    .filter(|&&(d, _)| d == depth)
                    .and_then(|(_, t)| t.clone());
                let mut module_path = file_module.clone();
                for (_, m) in &mod_stack {
                    module_path.push_str("::");
                    module_path.push_str(m);
                }
                out.items.push(Item {
                    name,
                    self_type,
                    module_path,
                    file_stem: stem.clone(),
                    file_idx,
                    line: t.line,
                    body,
                    is_pub: is_pub_before(toks, i),
                    in_test: !test_stack.is_empty(),
                });
                // Continue scanning *inside* the body (nested fns, and
                // depth bookkeeping must still see its braces): resume
                // right after the body's opening brace.
                i = j + 1;
                depth += 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    // Unclosed test ranges (malformed input) run to end of stream.
    while let Some((_, start)) = test_stack.pop() {
        out.test_tokens[file_idx].push(start..toks.len());
    }
    out.test_tokens[file_idx].sort_by_key(|r| r.start);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Resolved {
        resolve(&[SourceFile::from_text(
            "crates/core/src/engine/spill.rs",
            src,
        )])
    }

    #[test]
    fn module_paths_derive_from_file_paths() {
        assert_eq!(
            module_path_of("crates/core/src/engine/spill.rs"),
            ("core::engine::spill".to_string(), "spill".to_string())
        );
        assert_eq!(
            module_path_of("src/study/mod.rs"),
            ("facade::study".to_string(), "mod".to_string())
        );
        assert_eq!(
            module_path_of("panic_bad.rs"),
            ("panic_bad".to_string(), "panic_bad".to_string())
        );
    }

    #[test]
    fn impl_and_trait_self_types_resolve() {
        let r = items(
            "impl SpillSink { fn write(&mut self) {} }\n\
             impl EdgeStore for CompressedEdges { fn rows(&self) {} }\n\
             trait QRows: Sized { fn row(&self) {} }\n\
             pub fn free() {}\n",
        );
        let by_name = |n: &str| r.items.iter().find(|i| i.name == n).unwrap();
        assert_eq!(by_name("write").self_type.as_deref(), Some("SpillSink"));
        assert_eq!(
            by_name("rows").self_type.as_deref(),
            Some("CompressedEdges")
        );
        assert_eq!(by_name("row").self_type.as_deref(), Some("QRows"));
        assert_eq!(by_name("free").self_type, None);
        assert!(by_name("free").is_pub);
        assert!(!by_name("write").is_pub);
        assert_eq!(by_name("free").module_path, "core::engine::spill");
    }

    #[test]
    fn generic_impl_headers_pick_the_self_type() {
        let r = items("impl<'a, T: Clone> Cursor<'a, T> { fn next(&mut self) {} }\n");
        assert_eq!(r.items[0].self_type.as_deref(), Some("Cursor"));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let r = items(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n",
        );
        let by_name = |n: &str| r.items.iter().find(|i| i.name == n).unwrap();
        assert!(!by_name("real").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("case").in_test);
        assert_eq!(r.test_tokens[0].len(), 1);
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let r = items("mod vbyte { pub fn read() {} }\n");
        assert_eq!(r.items[0].module_path, "core::engine::spill::vbyte");
        assert!(r.items[0].is_pub);
    }

    #[test]
    fn nested_fns_and_bodies_are_scanned() {
        let r = items("fn outer() { fn inner() {} }\n");
        let names: Vec<&str> = r.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn display_and_allow_key_formats() {
        let r = items("impl SpillSink { fn write(&mut self) {} }\nfn free() {}\n");
        assert_eq!(r.display(0), "SpillSink::write");
        assert_eq!(r.allow_key(0), "spill::write");
        assert_eq!(r.display(1), "spill::free");
    }
}
