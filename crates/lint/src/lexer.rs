//! A hand-rolled, comment- and string-aware Rust tokenizer.
//!
//! The source passes need exactly four things a regex cannot deliver
//! reliably: (1) casts, calls and index expressions recognised as *token
//! sequences*, never inside comments or string literals; (2) string and
//! numeric literal *values* for the framing-constant pass; (3) comment
//! text, by line, for the `// lint: cast-ok(..)` and `// SAFETY:`
//! annotation grammars; (4) line numbers for every token. This lexer
//! produces all four from raw source text with no dependencies — it is a
//! lexer, not a parser: the passes layer lightweight token-pattern
//! matching on top (see `casts`, `panics`, `unsafety`, `constants`).
//!
//! Handled literal forms: `"…"` with escapes, `r"…"`/`r#"…"#` raw strings
//! (any hash depth), `b"…"`/`br#"…"#` byte strings, `'c'` char literals
//! (including `'\''` and `'\\'`), lifetimes (`'a`, distinguished from
//! chars), line comments, nested block comments, and numeric literals
//! with `_` separators, base prefixes and type suffixes.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The token text. For string-like literals this is the *content*
    /// (delimiters and raw-string hashes stripped, escapes left as
    /// written); for everything else the exact source slice.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// Token classification — only as fine-grained as the passes need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`as`, `fn`, `unsafe`, `impl`, names …).
    Ident,
    /// Numeric literal (int or float, any base, suffix attached).
    Num,
    /// String literal (`"…"`, `r"…"`, `r#"…"#`); text is the content.
    Str,
    /// Byte-string literal (`b"…"`, `br#"…"#`); text is the content.
    ByteStr,
    /// Char or byte literal (`'x'`, `b'x'`); text is the content.
    Char,
    /// Lifetime (`'a`); text includes the quote.
    Lifetime,
    /// A single punctuation character (`.`, `!`, `[`, `(`, `#`, …).
    Punct,
}

/// A comment's text, keyed by the 1-based line it starts on. Block
/// comments spanning several lines are recorded once per line they
/// cover, so per-line annotation lookups need no span arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line this (piece of a) comment sits on.
    pub line: u32,
    /// The comment text without its `//` / `/*` markers.
    pub text: String,
}

/// The lexer's full output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comment pieces, in source order (non-decreasing lines).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comment text on `line`, concatenated (usually zero or one
    /// piece; block comments may contribute more).
    pub fn comment_on_line(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.line == line {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&c.text);
            }
        }
        out
    }

    /// Whether any comment piece in `lo..=hi` (inclusive line range)
    /// contains `needle`.
    pub fn comment_in_range_contains(&self, lo: u32, hi: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= hi && c.text.contains(needle))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end of file (the workspace compiles, so real
/// inputs are well-formed; fixtures are kept well-formed too).
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && bytes[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: bytes[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut piece = String::new();
            let mut piece_line = line;
            while j < n && depth > 0 {
                if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                    depth += 1;
                    piece.push_str("/*");
                    j += 2;
                } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        piece.push_str("*/");
                    }
                    j += 2;
                } else if bytes[j] == '\n' {
                    out.comments.push(Comment {
                        line: piece_line,
                        text: std::mem::take(&mut piece),
                    });
                    line += 1;
                    piece_line = line;
                    j += 1;
                } else {
                    piece.push(bytes[j]);
                    j += 1;
                }
            }
            out.comments.push(Comment {
                line: piece_line,
                text: piece,
            });
            i = j;
            continue;
        }
        // Raw / byte / byte-raw string heads: r" r#" b" br" br#" b' .
        if c == 'r' || c == 'b' {
            let (is_byte, rest) = if c == 'b' { (true, i + 1) } else { (false, i) };
            let mut j = rest;
            let raw = j < n && bytes[j] == 'r' && (is_byte || j == i);
            if raw {
                j += 1;
            }
            let mut hashes = 0usize;
            while raw && j < n && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let is_str = j < n && bytes[j] == '"' && (raw || is_byte);
            let is_char = is_byte && !raw && j < n && bytes[j] == '\'';
            if is_str {
                // Scan to the closing quote (+ matching hashes for raw).
                let content_start = j + 1;
                let mut k = content_start;
                let start_line = line;
                loop {
                    if k >= n {
                        break;
                    }
                    if bytes[k] == '\n' {
                        line += 1;
                        k += 1;
                        continue;
                    }
                    if !raw && bytes[k] == '\\' {
                        k += 2;
                        continue;
                    }
                    if bytes[k] == '"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && bytes[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            break;
                        }
                    }
                    k += 1;
                }
                let text: String = bytes[content_start..k.min(n)].iter().collect();
                push_tok!(
                    if is_byte {
                        TokenKind::ByteStr
                    } else {
                        TokenKind::Str
                    },
                    text,
                    start_line
                );
                i = (k + 1 + hashes).min(n);
                continue;
            }
            if is_char {
                let (text, next) = scan_char_body(&bytes, j + 1);
                push_tok!(TokenKind::Char, text, line);
                i = next;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            let mut k = i + 1;
            let mut text = String::new();
            while k < n {
                if bytes[k] == '\\' && k + 1 < n {
                    text.push(bytes[k]);
                    text.push(bytes[k + 1]);
                    k += 2;
                    continue;
                }
                if bytes[k] == '"' {
                    break;
                }
                if bytes[k] == '\n' {
                    line += 1;
                }
                text.push(bytes[k]);
                k += 1;
            }
            push_tok!(TokenKind::Str, text, start_line);
            i = k + 1;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // A lifetime is 'ident not followed by a closing quote.
            if i + 1 < n && is_ident_start(bytes[i + 1]) {
                let mut k = i + 2;
                while k < n && is_ident_continue(bytes[k]) {
                    k += 1;
                }
                if k < n && bytes[k] == '\'' && k == i + 2 {
                    // 'x' — a one-char char literal.
                    push_tok!(TokenKind::Char, bytes[i + 1].to_string(), line);
                    i = k + 1;
                    continue;
                }
                if k < n && bytes[k] == '\'' {
                    // Multi-char between quotes can only be a char literal
                    // in malformed code; treat as lifetime-then-junk. Real
                    // sources never hit this.
                }
                let text: String = bytes[i..k].iter().collect();
                push_tok!(TokenKind::Lifetime, text, line);
                i = k;
                continue;
            }
            let (text, next) = scan_char_body(&bytes, i + 1);
            push_tok!(TokenKind::Char, text, line);
            i = next;
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut k = i + 1;
            if c == '0' && k < n && (bytes[k] == 'x' || bytes[k] == 'o' || bytes[k] == 'b') {
                k += 1;
                while k < n && (bytes[k].is_ascii_alphanumeric() || bytes[k] == '_') {
                    k += 1;
                }
            } else {
                while k < n && (bytes[k].is_ascii_alphanumeric() || bytes[k] == '_') {
                    k += 1;
                }
                // Decimal point: only if followed by a digit (so `1.max(2)`
                // and `0..4` stay method calls / ranges).
                if k < n && bytes[k] == '.' && k + 1 < n && bytes[k + 1].is_ascii_digit() {
                    k += 1;
                    while k < n && (bytes[k].is_ascii_alphanumeric() || bytes[k] == '_') {
                        k += 1;
                    }
                }
                // Exponent sign: 1e-9.
                if k < n
                    && (bytes[k] == '+' || bytes[k] == '-')
                    && (bytes[k - 1] == 'e' || bytes[k - 1] == 'E')
                {
                    k += 1;
                    while k < n && (bytes[k].is_ascii_alphanumeric() || bytes[k] == '_') {
                        k += 1;
                    }
                }
            }
            let text: String = bytes[start..k].iter().collect();
            push_tok!(TokenKind::Num, text, line);
            i = k;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            let mut k = i + 1;
            while k < n && is_ident_continue(bytes[k]) {
                k += 1;
            }
            let text: String = bytes[start..k].iter().collect();
            push_tok!(TokenKind::Ident, text, line);
            i = k;
            continue;
        }
        // Everything else: single punctuation character.
        push_tok!(TokenKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

/// Scans a char-literal body starting right after the opening quote;
/// returns (content, index past the closing quote).
fn scan_char_body(bytes: &[char], start: usize) -> (String, usize) {
    let n = bytes.len();
    let mut k = start;
    let mut text = String::new();
    while k < n {
        if bytes[k] == '\\' && k + 1 < n {
            text.push(bytes[k]);
            text.push(bytes[k + 1]);
            k += 2;
            continue;
        }
        if bytes[k] == '\'' {
            return (text, k + 1);
        }
        text.push(bytes[k]);
        k += 1;
    }
    (text, n)
}

/// Normalises a numeric-literal token to a comparable value string:
/// strips `_` separators and any type suffix, lower-cases, and renders
/// hex/octal/binary integers in decimal. Floats pass through stripped.
pub fn normalize_num(text: &str) -> String {
    let stripped: String = text.chars().filter(|&c| c != '_').collect();
    let lower = stripped.to_lowercase();
    // Peel a type suffix (u8..u128, i8..i128, usize, isize, f32, f64).
    let body = peel_suffix(&lower);
    if let Some(hex) = body.strip_prefix("0x") {
        if let Ok(v) = u128::from_str_radix(hex, 16) {
            return v.to_string();
        }
    }
    if let Some(oct) = body.strip_prefix("0o") {
        if let Ok(v) = u128::from_str_radix(oct, 8) {
            return v.to_string();
        }
    }
    if let Some(bin) = body.strip_prefix("0b") {
        if let Ok(v) = u128::from_str_radix(bin, 2) {
            return v.to_string();
        }
    }
    body.to_string()
}

fn peel_suffix(s: &str) -> &str {
    for suf in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ] {
        if let Some(body) = s.strip_suffix(suf) {
            // Don't peel the suffix off a bare hex digit run that happens
            // to end in e.g. "f32" — only peel when something remains and
            // hex bodies keep their prefix.
            if !body.is_empty() && body != "0x" && body != "0o" && body != "0b" {
                return body;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let lx = lex("let x = \"as u8 // not a comment\"; // real: as u8\n");
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("as u8")));
        // The `as` inside the string is not an Ident token.
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Ident && t.text == "as")
                .count(),
            0
        );
        assert!(lx.comment_on_line(1).contains("real: as u8"));
    }

    #[test]
    fn raw_and_byte_strings_lex() {
        let lx = lex(r##"let a = r#"raw "quoted" body"#; let b = b"WSR1";"##);
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "raw \"quoted\" body"));
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::ByteStr && t.text == "WSR1"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
    }

    #[test]
    fn escaped_quote_chars_lex() {
        let lx = lex(r"let q = '\''; let b = '\\';");
        let chars: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec![r"\'", r"\\"]);
    }

    #[test]
    fn numbers_normalize_across_bases() {
        assert_eq!(normalize_num("0x82F6_3B78"), "2197175160");
        assert_eq!(normalize_num("2197175160u32"), "2197175160");
        assert_eq!(normalize_num("0b1010"), "10");
        assert_eq!(normalize_num("1e-9"), "1e-9");
        assert_eq!(normalize_num("1_000_000"), "1000000");
    }

    #[test]
    fn block_comments_cover_their_lines() {
        let lx = lex("/* one\ntwo SAFETY: ok\nthree */ fn f() {}\n");
        assert!(lx.comment_on_line(2).contains("SAFETY: ok"));
        assert!(lx.comment_in_range_contains(1, 3, "SAFETY:"));
        assert!(lx.tokens.iter().any(|t| t.text == "fn" && t.line == 3));
    }

    #[test]
    fn line_numbers_track_tokens() {
        let lx = lex("a\nb\n  c d\n");
        let lines: Vec<u32> = lx.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 3]);
    }
}
