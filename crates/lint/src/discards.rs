//! Pass SL008: the error-hygiene micro-pass for durable paths.
//!
//! The resilience and spill layers return `io::Result` from every
//! durable operation precisely so that corruption is surfaced, not
//! swallowed. Two idioms defeat that design silently: `let _ = fallible();`
//! and `fallible().ok();` — both compile clean while discarding the
//! error. In a checkpoint/spill file this turns a failed write into a
//! truncated frame discovered only at resume time.
//!
//! This pass flags, in the audited durable files only:
//!
//! * `let _ = <expr>;` where the expression contains a call
//!   (`ident(…)`) — binding a call's result to the wildcard;
//! * `.ok()` immediately followed by `;` — discarding a `Result` by
//!   converting to an unused `Option`.
//!
//! Deliberate best-effort sites (cleanup on drop paths, advisory
//! unlinks) escape with `// lint: discard-ok(<reason>)` on the line or
//! the line above. Test modules are exempt.

use crate::lexer::TokenKind;
use crate::resolve::Resolved;
use crate::{Diagnostic, PassId, SourceFile};

/// The annotation marker looked up in comments.
pub const DISCARD_OK: &str = "lint: discard-ok(";

/// The durable-path files this pass audits.
pub const DISCARD_PATHS: &[&str] = &[
    "crates/core/src/engine/resilience.rs",
    "crates/core/src/engine/spill.rs",
];

/// Runs the discard audit over one file.
pub fn audit(file: &SourceFile, resolved: &Resolved, file_idx: usize) -> Vec<Diagnostic> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `let _ = <expr containing a call>;`
        if t.kind == TokenKind::Ident
            && t.text == "let"
            && toks.get(i + 1).is_some_and(|n| n.text == "_")
            && toks.get(i + 2).is_some_and(|n| n.text == "=")
            && toks.get(i + 3).is_none_or(|n| n.text != "=")
        {
            if resolved.in_test_tokens(file_idx, i) {
                i += 1;
                continue;
            }
            // Scan the initializer to the statement's `;` at depth 0,
            // looking for any call.
            let mut j = i + 3;
            let mut depth = 0i64;
            let mut has_call = false;
            while j < toks.len() {
                match (toks[j].kind, toks[j].text.as_str()) {
                    (TokenKind::Punct, "(" | "[" | "{") => depth += 1,
                    (TokenKind::Punct, ")" | "]" | "}") => depth -= 1,
                    (TokenKind::Punct, ";") if depth == 0 => break,
                    (TokenKind::Ident, _) if toks.get(j + 1).is_some_and(|n| n.text == "(") => {
                        has_call = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if has_call {
                push(file, t.line, "binds a call result to `_`", &mut out);
            }
            i = j;
            continue;
        }
        // `.ok();` — Result discarded via Option conversion.
        if t.kind == TokenKind::Ident
            && t.text == "ok"
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && toks.get(i + 2).is_some_and(|n| n.text == ")")
            && toks.get(i + 3).is_some_and(|n| n.text == ";")
            && !resolved.in_test_tokens(file_idx, i)
        {
            push(file, t.line, "discards a `Result` via `.ok()`", &mut out);
        }
        i += 1;
    }
    out
}

fn push(file: &SourceFile, line: u32, what: &str, out: &mut Vec<Diagnostic>) {
    match crate::annotation_for(&file.lexed, line, DISCARD_OK) {
        Some(Ok(_reason)) => {}
        Some(Err(())) => out.push(Diagnostic {
            pass: PassId::Discard,
            file: file.rel_path.clone(),
            line,
            message: format!(
                "malformed `lint: discard-ok(..)` annotation on a statement that {what} \
                 — the reason inside the parentheses must be non-empty"
            ),
        }),
        None => out.push(Diagnostic {
            pass: PassId::Discard,
            file: file.rel_path.clone(),
            line,
            message: format!(
                "durable-path statement {what} — handle or propagate the error \
                 (`?`, `map_err`), or annotate with `// lint: discard-ok(<reason>)` \
                 if the operation is genuinely best-effort"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve;

    fn run(src: &str) -> Vec<Diagnostic> {
        let files = vec![SourceFile::from_text("engine/resilience.rs", src)];
        let r = resolve::resolve(&files);
        audit(&files[0], &r, 0)
    }

    #[test]
    fn wildcard_bind_of_call_is_flagged() {
        let d = run("fn f() { let _ = std::fs::remove_file(p); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("binds a call result"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn wildcard_bind_of_non_call_passes() {
        let d = run("fn f(rows: u64) { let _ = rows; }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ok_discard_is_flagged() {
        let d = run("fn f(w: &mut W) { w.flush().ok(); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`.ok()`"), "{}", d[0].message);
    }

    #[test]
    fn ok_with_use_passes() {
        let d = run("fn f(w: &mut W) -> Option<()> { w.flush().ok() }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn annotated_discard_passes() {
        let d = run("fn f(p: &Path) {\n\
             // lint: discard-ok(cleanup on drop path is best-effort by design)\n\
             let _ = std::fs::remove_file(p);\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn malformed_annotation_is_flagged() {
        let d = run("fn f(p: &Path) {\n\
             // lint: discard-ok()\n\
             let _ = std::fs::remove_file(p);\n}\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("malformed"), "{}", d[0].message);
    }

    #[test]
    fn test_modules_are_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n\
             fn f(w: &mut W) { let _ = w.flush(); w.sync().ok(); }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn let_underscore_eq_eq_comparison_passes() {
        // `let _ = a == b();` is still a discard of a bool, but the
        // guard here is only against misparsing `let _ ==`; the inner
        // call still flags it.
        let d = run("fn f() { let _ = compute(); }\n");
        assert_eq!(d.len(), 1);
    }
}
