//! The spec well-formedness pass: instantiate every algorithm-zoo
//! member on a small canonical topology and run
//! [`stab_checker::structure::audit_spec`] over it.
//!
//! The instances are deliberately tiny — spec defects of the kind the
//! audit targets (overlapping guards, drifting probability rows, silent
//! stutters, neighbourhood leaks, impure guards) are structural, not
//! size-dependent, so a 4–7 node instance exercises every rule arm
//! while keeping the full lint run under a second.

use stab_algorithms::{
    CenterFinding, CenterLeader, DijkstraFourState, DijkstraRing, DijkstraThreeState,
    FairnessGadget, GreedyColoring, HermanRing, ParentLeader, TokenCirculation, TwoProcessToggle,
};
use stab_checker::structure::{audit_spec, SpecAudit};
use stab_graph::builders;

use crate::{Diagnostic, PassId};

/// Configuration-sample budget per zoo member: enough to cover every
/// instance below exhaustively except the two tree protocols, which get
/// an even-stride sample (deterministic, so CI runs agree).
pub const SPEC_SAMPLES: u64 = 4096;

/// Audits the whole zoo, returning one report per member.
pub fn audit_zoo() -> Vec<SpecAudit> {
    let mut reports = Vec::new();
    let mut push = |r: SpecAudit| reports.push(r);

    push(audit_spec(&FairnessGadget::new(), SPEC_SAMPLES));
    push(audit_spec(&TwoProcessToggle::new(), SPEC_SAMPLES));
    let ring5 = builders::ring(5);
    push(audit_spec(
        &HermanRing::on_ring(&ring5).expect("ring(5) is an odd ring"),
        SPEC_SAMPLES,
    ));
    let ring4 = builders::ring(4);
    push(audit_spec(
        &DijkstraRing::on_ring(&ring4).expect("ring(4) is a ring"),
        SPEC_SAMPLES,
    ));
    push(audit_spec(
        &DijkstraThreeState::on_ring(&ring5).expect("ring(5) is a ring"),
        SPEC_SAMPLES,
    ));
    let path4 = builders::path(4);
    push(audit_spec(
        &DijkstraFourState::on_path(&path4).expect("path(4) is a chain"),
        SPEC_SAMPLES,
    ));
    push(audit_spec(
        &TokenCirculation::on_ring(&ring5).expect("ring(5) is a ring"),
        SPEC_SAMPLES,
    ));
    push(audit_spec(
        &GreedyColoring::new(&path4).expect("path(4) is connected"),
        SPEC_SAMPLES,
    ));
    let tree = builders::figure2_tree();
    push(audit_spec(
        &CenterFinding::on_tree(&tree).expect("figure2_tree is a tree"),
        SPEC_SAMPLES,
    ));
    push(audit_spec(
        &CenterLeader::on_tree(&tree).expect("figure2_tree is a tree"),
        SPEC_SAMPLES,
    ));
    push(audit_spec(
        &ParentLeader::on_tree(&tree).expect("figure2_tree is a tree"),
        SPEC_SAMPLES,
    ));
    reports
}

/// Flattens zoo audit reports into lint diagnostics (one per finding,
/// filed under the algorithm's name rather than a source path).
pub fn diagnostics(reports: &[SpecAudit]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in reports {
        for f in &r.findings {
            out.push(Diagnostic {
                pass: PassId::Spec,
                file: format!("spec:{}", r.algorithm),
                line: 0,
                message: f.to_string(),
            });
        }
        if r.suppressed > 0 {
            out.push(Diagnostic {
                pass: PassId::Spec,
                file: format!("spec:{}", r.algorithm),
                line: 0,
                message: format!("{} further findings suppressed", r.suppressed),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_zoo_audits_clean() {
        for r in audit_zoo() {
            assert!(
                r.is_clean(),
                "{} has spec findings: {:?}",
                r.algorithm,
                r.findings
            );
            assert!(r.configs_sampled > 0, "{} sampled nothing", r.algorithm);
        }
    }

    #[test]
    fn zoo_covers_eleven_members() {
        assert_eq!(audit_zoo().len(), 11);
    }
}
