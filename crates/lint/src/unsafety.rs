//! Pass 3: the `unsafe` hygiene audit.
//!
//! Two rules, applied to every file in the workspace's `src` trees:
//!
//! 1. **Attached justification** — every `unsafe` keyword (block, fn,
//!    impl or trait) must have a comment containing `SAFETY:` on its own
//!    line or within the five lines above it. The window tolerates a
//!    multi-line justification above an `unsafe fn` signature with
//!    attributes in between.
//! 2. **Module policy header** — any file containing `unsafe` must open
//!    with a `#![deny(unsafe_op_in_unsafe_fn)]` (or stricter
//!    `#![forbid(unsafe_code)]`) inner attribute, so unsafe operations
//!    inside `unsafe fn` bodies still require explicit, individually
//!    justified `unsafe { … }` blocks.
//!
//! Files with no `unsafe` tokens are exempt from both rules — the audit
//! never asks clean modules to carry policy boilerplate.

use crate::lexer::TokenKind;
use crate::{Diagnostic, PassId, SourceFile};

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: u32 = 5;

/// Runs the unsafe audit over one file.
pub fn audit(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    let unsafe_lines: Vec<u32> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text == "unsafe")
        .map(|t| t.line)
        .collect();
    if unsafe_lines.is_empty() {
        return out;
    }

    // Rule 2: the module policy header.
    let has_policy = policy_header_present(&file.text);
    if !has_policy {
        out.push(Diagnostic {
            pass: PassId::Unsafe,
            file: file.rel_path.clone(),
            line: 1,
            message: "file contains `unsafe` but no `#![deny(unsafe_op_in_unsafe_fn)]` \
                      (or `#![forbid(unsafe_code)]`) module policy header"
                .into(),
        });
    }

    // Rule 1: every unsafe token needs a nearby SAFETY: comment.
    for &line in &unsafe_lines {
        let lo = line.saturating_sub(SAFETY_WINDOW);
        if !file.lexed.comment_in_range_contains(lo, line, "SAFETY:") {
            out.push(Diagnostic {
                pass: PassId::Unsafe,
                file: file.rel_path.clone(),
                line,
                message: "`unsafe` without an attached `// SAFETY:` comment \
                          (same line or the 5 lines above)"
                    .into(),
            });
        }
    }
    out
}

/// Whether the file declares the unsafe-op policy as an inner attribute.
fn policy_header_present(text: &str) -> bool {
    text.lines().any(|l| {
        let l = l.trim();
        l.starts_with("#![deny(unsafe_op_in_unsafe_fn)")
            || l.starts_with("#![forbid(unsafe_code)")
            || l.starts_with("#![deny(unsafe_code)")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        audit(&SourceFile::from_text("m.rs", src))
    }

    #[test]
    fn clean_files_need_no_policy() {
        assert!(run("fn f() {}\n").is_empty());
    }

    #[test]
    fn documented_unsafe_with_policy_passes() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n\
                   fn f() {\n\
                   // SAFETY: bounds checked above.\n\
                   unsafe { g() }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\nfn f() { unsafe { g() } }\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SAFETY:"));
    }

    #[test]
    fn missing_policy_header_is_flagged() {
        let src = "// SAFETY: fine.\nfn f() { unsafe { g() } }\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("unsafe_op_in_unsafe_fn"));
    }

    #[test]
    fn safety_window_reaches_over_attributes() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n\
                   // SAFETY: callers uphold the target-feature contract.\n\
                   #[target_feature(enable = \"sse4.2\")]\n\
                   #[inline]\n\
                   unsafe fn g() {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        assert!(run("// unsafe in a comment\nconst S: &str = \"unsafe\";\n").is_empty());
    }
}
