//! The `stab-lint` command-line entry point.
//!
//! ```text
//! stab-lint [--source] [--specs] [--root <dir>] [--format text|json]
//! ```
//!
//! With no pass flags, both pass families run. Exit status is the number
//! of pass families that produced findings (0 = clean), so CI can use it
//! as a hard gate while humans still get every diagnostic on stderr.
//! `--format json` additionally writes the combined findings as a JSON
//! document to **stdout** (human progress stays on stderr), for upload
//! as a CI artifact.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut run_source = false;
    let mut run_specs = false;
    let mut root: Option<PathBuf> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--source" => run_source = true,
            "--specs" => run_specs = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("stab-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => {
                    eprintln!("stab-lint: --format needs `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: stab-lint [--source] [--specs] [--root <dir>] [--format text|json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("stab-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !run_source && !run_specs {
        run_source = true;
        run_specs = true;
    }
    let root = root.unwrap_or_else(stab_lint::workspace_root);

    let mut failed_passes = 0u8;
    let mut all_diags: Vec<stab_lint::Diagnostic> = Vec::new();

    if run_source {
        match stab_lint::run_source(&root) {
            Ok(diags) if diags.is_empty() => {
                eprintln!("stab-lint: source passes clean ({})", root.display());
            }
            Ok(diags) => {
                for d in &diags {
                    eprintln!("{d}");
                }
                eprintln!("stab-lint: {} source finding(s)", diags.len());
                failed_passes += 1;
                all_diags.extend(diags);
            }
            Err(e) => {
                eprintln!(
                    "stab-lint: cannot read workspace at {}: {e}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    if run_specs {
        let reports = stab_lint::specs::audit_zoo();
        let diags = stab_lint::specs::diagnostics(&reports);
        for r in &reports {
            eprintln!(
                "stab-lint: spec {} — {}/{} configs, {} finding(s)",
                r.algorithm,
                r.configs_sampled,
                r.total_configs,
                r.findings.len()
            );
        }
        if diags.is_empty() {
            eprintln!("stab-lint: spec pass clean ({} algorithms)", reports.len());
        } else {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!("stab-lint: {} spec finding(s)", diags.len());
            failed_passes += 1;
            all_diags.extend(diags);
        }
    }

    if json {
        stab_lint::sort_diagnostics(&mut all_diags);
        print!("{}", stab_lint::render_json(&all_diags));
    }

    ExitCode::from(failed_passes)
}
