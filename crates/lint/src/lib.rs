//! `stab-lint`: the workspace's dependency-free static-analysis harness.
//!
//! Two pass families, both wired into CI as hard gates:
//!
//! * **Source passes** ([`run_source`]) over the workspace's own Rust
//!   source, built on a hand-rolled comment/string-aware tokenizer
//!   ([`lexer`]) — no `syn`, no crates-io:
//!   1. [`casts`] — lossy-cast audit: narrowing / sign-losing `as` casts
//!      in `crates/core`, `crates/markov`, `crates/checker` must carry a
//!      `// lint: cast-ok(<reason>)` annotation;
//!   2. [`panics`] — panic-freedom audit of the durable write paths:
//!      no `unwrap` / `expect` / `panic!` / slice-index in functions
//!      reachable from `FrameSink` / `SpillSink`, modulo the reasoned
//!      allowlist in `crates/lint/panic_allowlist.txt`;
//!   3. [`unsafety`] — every `unsafe` needs an attached `// SAFETY:`
//!      comment and a `#![deny(unsafe_op_in_unsafe_fn)]` module policy
//!      header;
//!   4. [`constants`] — the `WSR1` frame magic, the CRC32C polynomial
//!      and the `study_report/vN` schema string must each have exactly
//!      one defining site.
//! * **Spec pass** ([`specs`]) — pre-exploration well-formedness audit
//!   of every algorithm-zoo member via
//!   [`stab_checker::structure::audit_spec`]: guard determinism,
//!   probability-row sums, no silent stutters, read-closure and guard
//!   purity, all checked on sampled configurations without exploring.
//!
//! Run it as `cargo run -p stab-lint -- --source --specs`; both passes
//! exit non-zero on findings. The annotation and allowlist grammars are
//! documented in the README's "Static analysis" section.

pub mod casts;
pub mod constants;
pub mod lexer;
pub mod panics;
pub mod specs;
pub mod unsafety;

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding of a source pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that produced the finding.
    pub pass: PassId,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding (0 for file-level findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.pass.label(),
            self.message
        )
    }
}

/// The four source passes plus the spec pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassId {
    /// Lossy-cast audit.
    Cast,
    /// Panic-freedom audit of the durable write paths.
    Panic,
    /// `unsafe` hygiene audit.
    Unsafe,
    /// Framing-constant single-definition audit.
    Constant,
    /// Algorithm-spec well-formedness audit.
    Spec,
}

impl PassId {
    /// Stable lower-case label used in diagnostics and fixture tests.
    pub fn label(self) -> &'static str {
        match self {
            PassId::Cast => "cast",
            PassId::Panic => "panic",
            PassId::Unsafe => "unsafe",
            PassId::Constant => "constant",
            PassId::Spec => "spec",
        }
    }
}

/// A source file loaded for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used in diagnostics).
    pub rel_path: String,
    /// Raw contents.
    pub text: String,
    /// Lexed form.
    pub lexed: lexer::Lexed,
}

impl SourceFile {
    /// Loads and lexes one file. `root` anchors the relative path shown
    /// in diagnostics.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let lexed = lexer::lex(&text);
        Ok(SourceFile {
            rel_path,
            text,
            lexed,
        })
    }

    /// Builds a source file from in-memory text (fixture tests).
    pub fn from_text(rel_path: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel_path.to_string(),
            text: text.to_string(),
            lexed: lexer::lex(text),
        }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic diagnostics.
pub fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Runs all four source passes over the workspace rooted at `root` and
/// returns every finding (empty = clean).
///
/// Scopes follow ISSUE 9's contract:
/// * cast pass — `crates/core/src`, `crates/markov/src`,
///   `crates/checker/src`;
/// * panic pass — the durable write paths in
///   `crates/core/src/engine/{resilience,spill,edgestore}.rs`, with the
///   allowlist at `crates/lint/panic_allowlist.txt`;
/// * unsafe + constants passes — every crate's `src` tree plus the
///   facade's `src`, excluding the linter's own sources (which must
///   mention the audited literals to recognise them).
pub fn run_source(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();

    // ---- cast pass --------------------------------------------------
    let mut cast_files = Vec::new();
    for sub in ["crates/core/src", "crates/markov/src", "crates/checker/src"] {
        for p in rust_files_under(&root.join(sub)) {
            cast_files.push(SourceFile::load(root, &p)?);
        }
    }
    for f in &cast_files {
        diags.extend(casts::audit(f));
    }

    // ---- panic pass -------------------------------------------------
    let panic_paths = [
        "crates/core/src/engine/resilience.rs",
        "crates/core/src/engine/spill.rs",
        "crates/core/src/engine/edgestore.rs",
    ];
    let mut panic_files = Vec::new();
    for p in panic_paths {
        panic_files.push(SourceFile::load(root, &root.join(p))?);
    }
    let allowlist_path = root.join("crates/lint/panic_allowlist.txt");
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => panics::Allowlist::parse(&text, &mut diags),
        Err(_) => panics::Allowlist::default(),
    };
    diags.extend(panics::audit(&panic_files, &allowlist));

    // ---- unsafe + constants passes over every src tree --------------
    let mut all_src = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            // The linter's own sources are excluded: its family
            // definitions and fixtures must mention the audited
            // literals to recognise them.
            if c.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            for p in rust_files_under(&c.join("src")) {
                all_src.push(SourceFile::load(root, &p)?);
            }
        }
    }
    for p in rust_files_under(&root.join("src")) {
        all_src.push(SourceFile::load(root, &p)?);
    }
    for f in &all_src {
        diags.extend(unsafety::audit(f));
    }
    diags.extend(constants::audit(&all_src));

    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_holds_the_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn rust_files_are_sorted_and_rs_only() {
        let files = rust_files_under(&workspace_root().join("crates/lint/src"));
        assert!(files.iter().all(|p| p.extension().unwrap() == "rs"));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn diagnostics_render_with_pass_label() {
        let d = Diagnostic {
            pass: PassId::Cast,
            file: "x.rs".into(),
            line: 7,
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "x.rs:7: [cast] m");
    }
}
