//! `stab-lint`: the workspace's dependency-free static-analysis harness.
//!
//! Two pass families, both wired into CI as hard gates. The source
//! passes share a hand-rolled comment/string-aware tokenizer
//! ([`lexer`]) — no `syn`, no crates-io — and, since this version, a
//! workspace-wide **symbol layer**: [`resolve`] extracts a per-crate
//! item table (every `fn`, its impl/trait self type, module path,
//! visibility, `#[cfg(test)]` status and body span) and [`callgraph`]
//! connects the items with name-matched call edges.
//!
//! **Over-approximation model.** The symbol layer is lexer-level, not a
//! type checker: callees match by bare name across every crate, trait
//! dispatch and imports are not modelled. Imprecision is one-sided by
//! construction — a spurious edge or item can only *widen* what the
//! passes audit (one more reasoned annotation at worst), never silence
//! a real finding. That is the correct failure direction for a lint
//! gate, and every pass below is designed around it.
//!
//! Source passes, each with a stable rule code ([`PassId::code`]):
//!
//! * **SL001 [`casts`]** — lossy-cast audit over the whole workspace:
//!   narrowing / sign-losing `as` casts need `// lint: cast-ok(<reason>)`;
//! * **SL002 [`panics`]** — interprocedural panic reachability: no
//!   `unwrap` / `expect` / `panic!` / slice-index in durable-write-path
//!   functions transitively reachable from the public entry points
//!   (`Study::run`, the explore/resume surfaces, the solvers) — each
//!   finding reports its shortest call chain, modulo the reasoned
//!   allowlist in `crates/lint/panic_allowlist.txt`;
//! * **SL003 [`unsafety`]** — every `unsafe` needs an attached
//!   `// SAFETY:` comment and a `#![deny(unsafe_op_in_unsafe_fn)]`
//!   module policy header;
//! * **SL004 [`constants`]** — the `WSR1` frame magic, the CRC32C
//!   polynomial and the `study_report/vN` schema string must each have
//!   exactly one defining site;
//! * **SL005 [`specs`]** — pre-exploration well-formedness audit of
//!   every algorithm-zoo member via
//!   [`stab_checker::structure::audit_spec`];
//! * **SL006 [`arith`]** — offset/id overflow dataflow: unchecked
//!   `+`/`*`/`<<` on offset-lexicon or `engine::ids`-typed operands in
//!   the engine's offset-bearing modules needs
//!   `// lint: arith-ok(<reason>)`;
//! * **SL007 [`captures`]** — fork-join capture audit: closures passed
//!   into `engine::parallel::map_chunks` may not capture `&mut`
//!   bindings, `static mut`, or `Cell`/`RefCell`/`UnsafeCell` state
//!   crossing the join boundary;
//! * **SL008 [`discards`]** — error hygiene on the durable paths:
//!   `let _ = fallible();` and `.ok();` discards need
//!   `// lint: discard-ok(<reason>)`.
//!
//! Run it as `cargo run -p stab-lint -- --source --specs`; both
//! families exit non-zero on findings. Diagnostics are sorted by
//! (file, line, code) and render as `file:line: [SLnnn label] message`;
//! `--format json` emits the same findings as a JSON array for CI
//! artifacts. The annotation and allowlist grammars are documented in
//! the README's "Static analysis" section.

pub mod arith;
pub mod callgraph;
pub mod captures;
pub mod casts;
pub mod constants;
pub mod discards;
pub mod lexer;
pub mod panics;
pub mod resolve;
pub mod specs;
pub mod unsafety;

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding of a source pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that produced the finding.
    pub pass: PassId,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding (0 for file-level findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file,
            self.line,
            self.pass.code(),
            self.pass.label(),
            self.message
        )
    }
}

/// The source passes plus the spec pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PassId {
    /// Lossy-cast audit.
    Cast,
    /// Interprocedural panic reachability over the durable write paths.
    Panic,
    /// `unsafe` hygiene audit.
    Unsafe,
    /// Framing-constant single-definition audit.
    Constant,
    /// Algorithm-spec well-formedness audit.
    Spec,
    /// Offset/id overflow dataflow.
    Arith,
    /// Fork-join capture audit.
    Capture,
    /// Durable-path error-discard audit.
    Discard,
}

impl PassId {
    /// Stable lower-case label used in diagnostics and fixture tests.
    pub fn label(self) -> &'static str {
        match self {
            PassId::Cast => "cast",
            PassId::Panic => "panic",
            PassId::Unsafe => "unsafe",
            PassId::Constant => "constant",
            PassId::Spec => "spec",
            PassId::Arith => "arith",
            PassId::Capture => "capture",
            PassId::Discard => "discard",
        }
    }

    /// Stable rule code, assigned once and never reused: CI keys its
    /// zero-findings assertion on these.
    pub fn code(self) -> &'static str {
        match self {
            PassId::Cast => "SL001",
            PassId::Panic => "SL002",
            PassId::Unsafe => "SL003",
            PassId::Constant => "SL004",
            PassId::Spec => "SL005",
            PassId::Arith => "SL006",
            PassId::Capture => "SL007",
            PassId::Discard => "SL008",
        }
    }

    /// Every pass, in rule-code order (for JSON reports and CI).
    pub const ALL: &'static [PassId] = &[
        PassId::Cast,
        PassId::Panic,
        PassId::Unsafe,
        PassId::Constant,
        PassId::Spec,
        PassId::Arith,
        PassId::Capture,
        PassId::Discard,
    ];
}

/// A source file loaded for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used in diagnostics).
    pub rel_path: String,
    /// Raw contents.
    pub text: String,
    /// Lexed form.
    pub lexed: lexer::Lexed,
}

impl SourceFile {
    /// Loads and lexes one file. `root` anchors the relative path shown
    /// in diagnostics.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let lexed = lexer::lex(&text);
        Ok(SourceFile {
            rel_path,
            text,
            lexed,
        })
    }

    /// Builds a source file from in-memory text (fixture tests).
    pub fn from_text(rel_path: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel_path.to_string(),
            text: text.to_string(),
            lexed: lexer::lex(text),
        }
    }
}

/// Extracts a `<marker><reason>)` annotation from the comment on `line`
/// or, failing that, the line directly above (annotation-only lines).
/// `Some(Err(()))` means the marker is present but malformed — no
/// closing paren or an empty reason. Shared by every annotation-escaped
/// pass; markers are the `lint: xxx-ok(` constants of the pass modules.
pub fn annotation_for(lexed: &lexer::Lexed, line: u32, marker: &str) -> Option<Result<String, ()>> {
    let reason_in = |comment: &str| -> Option<Result<String, ()>> {
        let start = comment.find(marker)?;
        let rest = &comment[start + marker.len()..];
        match rest.find(')') {
            Some(end) => {
                let reason = rest[..end].trim();
                if reason.is_empty() {
                    Some(Err(()))
                } else {
                    Some(Ok(reason.to_string()))
                }
            }
            None => Some(Err(())),
        }
    };
    if let Some(r) = reason_in(&lexed.comment_on_line(line)) {
        return Some(r);
    }
    if line > 1 {
        return reason_in(&lexed.comment_on_line(line - 1));
    }
    None
}

/// Sorts diagnostics into the stable output order: (file, line, code,
/// message). Every consumer — text output, JSON artifacts, fixture
/// assertions — sees the same order on every platform.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pass.code(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.pass.code(),
            b.message.as_str(),
        ))
    });
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // lint: cast-ok(char scalar values are at most 0x10FFFF, lossless into u32)
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON document for CI artifacts:
/// `{"findings": [...], "counts": {"SL001": n, ...}, "total": n}`.
/// Counts carry every rule code, zeroes included, so the CI assertion
/// can key on each code without special-casing absence.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"code\": \"{}\", \"pass\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\"}}",
            d.pass.code(),
            d.pass.label(),
            escape_json(&d.file),
            d.line,
            escape_json(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counts\": {");
    for (i, p) in PassId::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let n = diags.iter().filter(|d| d.pass == *p).count();
        out.push_str(&format!("\"{}\": {n}", p.code()));
    }
    out.push_str(&format!("}},\n  \"total\": {}\n}}\n", diags.len()));
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic diagnostics.
pub fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Runs every source pass over the workspace rooted at `root` and
/// returns the findings in stable sorted order (empty = clean).
///
/// Scopes:
/// * **symbol layer** (resolve + call graph) — every crate's `src` tree
///   plus the facade's `src`, *excluding* `crates/lint/src` (the
///   linter's own helpers share names like `parse`/`audit` with the
///   analysed code and would only add bogus edges);
/// * SL001 cast — the whole workspace, linter included;
/// * SL002 panic — reachability over the whole graph, findings reported
///   in the durable write paths ([`panics::DURABLE_PATHS`]);
/// * SL003 unsafe + SL004 constants — everything except the linter
///   (whose sources must mention the audited literals to recognise
///   them);
/// * SL006 arith — the engine's offset-bearing modules
///   ([`arith::ARITH_PATHS`]);
/// * SL007 capture — every `map_chunks` call site workspace-wide;
/// * SL008 discard — the durable paths ([`discards::DISCARD_PATHS`]).
pub fn run_source(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();

    // ---- load: analysis set (all non-lint src) + lint's own src -----
    let mut analysis: Vec<SourceFile> = Vec::new();
    let mut lint_src: Vec<SourceFile> = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let is_lint = c.file_name().is_some_and(|n| n == "lint");
            for p in rust_files_under(&c.join("src")) {
                let f = SourceFile::load(root, &p)?;
                if is_lint {
                    lint_src.push(f);
                } else {
                    analysis.push(f);
                }
            }
        }
    }
    for p in rust_files_under(&root.join("src")) {
        analysis.push(SourceFile::load(root, &p)?);
    }

    // ---- symbol layer -----------------------------------------------
    let resolved = resolve::resolve(&analysis);
    let graph = callgraph::CallGraph::build(&analysis, &resolved);

    // ---- SL001 cast: whole workspace, linter included ---------------
    for f in analysis.iter().chain(lint_src.iter()) {
        diags.extend(casts::audit(f));
    }

    // ---- SL002 panic: workspace reachability, durable-path findings -
    let allowlist_path = root.join("crates/lint/panic_allowlist.txt");
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => panics::Allowlist::parse(&text, &mut diags),
        Err(_) => panics::Allowlist::default(),
    };
    let roots = panics::default_roots(&resolved);
    diags.extend(panics::audit(
        &analysis,
        &resolved,
        &graph,
        &roots,
        &|rel| panics::DURABLE_PATHS.contains(&rel),
        &allowlist,
    ));

    // ---- SL003 unsafe + SL004 constants -----------------------------
    for f in &analysis {
        diags.extend(unsafety::audit(f));
    }
    diags.extend(constants::audit(&analysis));

    // ---- SL006 arith ------------------------------------------------
    for (idx, f) in analysis.iter().enumerate() {
        if arith::ARITH_PATHS.contains(&f.rel_path.as_str()) {
            diags.extend(arith::audit(f, &resolved, idx));
        }
    }

    // ---- SL007 capture: every map_chunks site workspace-wide --------
    let statics = captures::static_mut_names(&analysis);
    for (idx, f) in analysis.iter().enumerate() {
        diags.extend(captures::audit(f, &resolved, idx, &statics));
    }

    // ---- SL008 discard ----------------------------------------------
    for (idx, f) in analysis.iter().enumerate() {
        if discards::DISCARD_PATHS.contains(&f.rel_path.as_str()) {
            diags.extend(discards::audit(f, &resolved, idx));
        }
    }

    sort_diagnostics(&mut diags);
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_holds_the_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn rust_files_are_sorted_and_rs_only() {
        let files = rust_files_under(&workspace_root().join("crates/lint/src"));
        assert!(files.iter().all(|p| p.extension().unwrap() == "rs"));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn diagnostics_render_with_code_and_label() {
        let d = Diagnostic {
            pass: PassId::Cast,
            file: "x.rs".into(),
            line: 7,
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "x.rs:7: [SL001 cast] m");
    }

    #[test]
    fn rule_codes_are_unique_and_stable() {
        let codes: Vec<&str> = PassId::ALL.iter().map(|p| p.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(codes.len(), dedup.len());
        assert_eq!(PassId::Cast.code(), "SL001");
        assert_eq!(PassId::Discard.code(), "SL008");
    }

    #[test]
    fn sort_is_by_file_line_code() {
        let mk = |pass, file: &str, line| Diagnostic {
            pass,
            file: file.into(),
            line,
            message: "m".into(),
        };
        let mut d = vec![
            mk(PassId::Arith, "b.rs", 2),
            mk(PassId::Cast, "b.rs", 2),
            mk(PassId::Panic, "a.rs", 9),
        ];
        sort_diagnostics(&mut d);
        assert_eq!(d[0].file, "a.rs");
        assert_eq!(d[1].pass, PassId::Cast); // SL001 before SL006
        assert_eq!(d[2].pass, PassId::Arith);
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let d = vec![Diagnostic {
            pass: PassId::Capture,
            file: "a.rs".into(),
            line: 3,
            message: "uses `x` and a \"quote\"".into(),
        }];
        let json = render_json(&d);
        assert!(json.contains("\"code\": \"SL007\""), "{json}");
        assert!(json.contains("\\\"quote\\\""), "{json}");
        assert!(json.contains("\"SL001\": 0"), "{json}");
        assert!(json.contains("\"SL007\": 1"), "{json}");
        assert!(json.contains("\"total\": 1"), "{json}");
        let empty = render_json(&[]);
        assert!(empty.contains("\"findings\": []"), "{empty}");
    }

    #[test]
    fn shared_annotation_helper_reads_line_and_line_above() {
        let lexed = lexer::lex("let a = 1; // lint: arith-ok(bounded)\nlet b = 2;\n");
        assert_eq!(
            annotation_for(&lexed, 1, "lint: arith-ok("),
            Some(Ok("bounded".to_string()))
        );
        assert_eq!(
            annotation_for(&lexed, 2, "lint: arith-ok("),
            Some(Ok("bounded".to_string()))
        );
        assert_eq!(annotation_for(&lexed, 2, "lint: cast-ok("), None);
        let bad = lexer::lex("let a = 1; // lint: arith-ok( )\n");
        assert_eq!(annotation_for(&bad, 1, "lint: arith-ok("), Some(Err(())));
    }
}
